//! The session runtime: one streaming engine for prediction, gating and
//! tracking.
//!
//! The paper's deployment scenario (Figure 1, Sections 4.3 and 5) is a
//! *single* online loop: the tracking system delivers a sample every
//! 33 ms, the signal is segmented once, and the same evolving PLR drives
//! motion prediction, respiration gating and beam tracking. A
//! [`SessionRuntime`] is that loop as a value — it owns one guarded
//! segmenter pass ([`GuardedSegmenter`]) per live session and fans the resulting
//! vertex and prediction events out to pluggable [`SessionConsumer`]s,
//! all searching a shared [`SharedStore`] handle through one
//! [`CachedMatcher`]. A prediction is computed **once** per tick and
//! every consumer sees the same outcome; the legacy alternative — one
//! full replay (segmentation + matching) per application — does the
//! matching work as many times as there are applications.
//!
//! On top of a single session, a [`CohortRuntime`] replays N sessions
//! against the same store on a small thread pool, streaming each
//! session's prediction ticks over its own outcome channel. All sessions
//! share one engine, so an index built for a query length benefits every
//! session, and the monotone store version observed by any session agrees
//! with every other.
//!
//! ## Ownership rules
//!
//! * The store is shared, never copied: every runtime holds the same
//!   `Arc<StreamStore>` through its engine, and
//!   [`SessionRuntime::shared_store`] hands the same handle out again.
//! * Replays never mutate the store — [`CohortRuntime::replay`] is
//!   read-only, so its results are a pure function of (store contents,
//!   specs) and serial/parallel schedules cannot diverge.
//! * Persistence is explicit and terminal:
//!   [`SessionRuntime::finish_into_store`] appends the live stream once,
//!   at end of session, bumping the store version for every other holder.

use crate::error::TsmError;
use crate::gating::{GatingAccumulator, GatingStats, GatingWindow};
use crate::index_cache::CachedMatcher;
use crate::matcher::{Matcher, QuerySubseq, SearchOptions};
use crate::metrics::{Counter, Hist, MetricsRegistry};
use crate::params::Params;
use crate::pipeline::PredictionOutcome;
use crate::predict::{predict_position, AlignMode};
use crate::query::generate_query;
use crate::tracking::TrackingStats;
use std::any::Any;
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tsm_db::{PatientId, SharedStore, StreamId, StreamStore};
use tsm_model::{
    GuardedSegmenter, IngestFlag, IngestGuardConfig, PlrTrajectory, Position, Sample,
    SegmenterConfig, Vertex,
};

/// Health of one live session, driven by the ingest guard's flags and
/// the [`DegradationPolicy`].
///
/// ```text
///           fault (gap, backwards time, duplicate burst,
///                  stuck run, rejected sample)
///  Healthy ────────────────────────────────────────▶ Degraded
///     ▲                                                  │
///     │ `recovery_predictions` served                    │ `recovery_vertices`
///     │ predictions                                      │ fresh vertices
///     └────────────────────────── Recovering ◀───────────┘
/// ```
///
/// While **Degraded**, prediction ticks abstain outright — the
/// post-discontinuity query is either stale (old epoch) or too short
/// (new epoch) to trust. While **Recovering**, predictions are computed
/// and reported, but safety consumers ([`GatingController`]) still fail
/// safe to beam-hold until the session is Healthy again. Any new fault
/// drops the session straight back to Degraded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionHealth {
    /// Clean stream; predictions served, gating live.
    Healthy,
    /// A fault was observed recently; predictions abstain.
    Degraded,
    /// Enough fresh data accumulated; predictions serve again but
    /// gating still holds the beam until recovery completes.
    Recovering,
}

/// Thresholds driving the [`SessionHealth`] state machine and the
/// ingest guard in front of the segmenter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationPolicy {
    /// Largest tolerated inter-sample gap (s) before a resync.
    pub max_gap_s: f64,
    /// Per-axis position tolerance (mm) for stuck-sensor detection.
    pub stuck_epsilon_mm: f64,
    /// Consecutive unchanged samples before a stuck run is flagged.
    pub stuck_limit: usize,
    /// Fresh post-fault vertices required to move Degraded → Recovering.
    pub recovery_vertices: usize,
    /// Served predictions required to move Recovering → Healthy.
    pub recovery_predictions: usize,
    /// Recoverable per-sample faults a cohort supervisor absorbs before
    /// failing the session with
    /// [`TsmError::FaultBudgetExhausted`](crate::error::CoreError::FaultBudgetExhausted).
    pub fault_budget: usize,
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        DegradationPolicy {
            max_gap_s: 1.0,
            stuck_epsilon_mm: 0.0,
            stuck_limit: 90,
            recovery_vertices: 6,
            recovery_predictions: 3,
            fault_budget: 64,
        }
    }
}

impl DegradationPolicy {
    /// The ingest-guard thresholds this policy implies.
    pub fn ingest_guard(&self) -> IngestGuardConfig {
        IngestGuardConfig {
            max_gap_s: self.max_gap_s,
            stuck_epsilon_mm: self.stuck_epsilon_mm,
            stuck_limit: self.stuck_limit,
        }
    }
}

/// Static configuration of one live session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// The patient this session belongs to (drives source-stream weights).
    pub patient: PatientId,
    /// The session number within the patient's record.
    pub session: u32,
    /// Segmenter configuration for the live signal.
    pub segmenter: SegmenterConfig,
    /// Prediction alignment mode.
    pub align: AlignMode,
    /// Search restrictions applied to every query.
    pub options: SearchOptions,
    /// Prediction horizon `Δt` in seconds (the latency to cover).
    pub horizon: f64,
    /// Fire a prediction tick every this many samples; `0` disables
    /// automatic ticks (predictions on demand via
    /// [`SessionRuntime::predict`] only).
    pub predict_every: usize,
    /// Fault-tolerance thresholds (ingest guard + health machine).
    pub policy: DegradationPolicy,
}

impl SessionConfig {
    /// A default configuration for a session of `patient`: default
    /// segmenter, 0.3 s horizon, no automatic prediction ticks.
    pub fn new(patient: PatientId, session: u32) -> Self {
        SessionConfig {
            patient,
            session,
            segmenter: SegmenterConfig::default(),
            align: AlignMode::default(),
            options: SearchOptions::default(),
            horizon: 0.3,
            predict_every: 0,
            policy: DegradationPolicy::default(),
        }
    }

    /// Overrides the segmenter configuration.
    pub fn with_segmenter(mut self, segmenter: SegmenterConfig) -> Self {
        self.segmenter = segmenter;
        self
    }

    /// Overrides the prediction alignment mode.
    pub fn with_align(mut self, align: AlignMode) -> Self {
        self.align = align;
        self
    }

    /// Restricts matching (e.g. to the patient's cluster, Section 5.3).
    pub fn with_options(mut self, options: SearchOptions) -> Self {
        self.options = options;
        self
    }

    /// Overrides the prediction horizon.
    pub fn with_horizon(mut self, horizon: f64) -> Self {
        self.horizon = horizon;
        self
    }

    /// Enables automatic prediction ticks every `every` samples (`0`
    /// disables them).
    pub fn with_cadence(mut self, every: usize) -> Self {
        self.predict_every = every;
        self
    }

    /// Overrides the fault-tolerance policy.
    pub fn with_policy(mut self, policy: DegradationPolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// One automatic prediction tick, delivered to every consumer of a
/// session. The outcome is computed once per tick; `None` means the
/// predictor abstained (warm-up, or fewer than `min_matches` similar
/// subsequences).
#[derive(Debug, Clone, PartialEq)]
pub struct PredictionTick {
    /// Zero-based index of the raw sample that triggered the tick.
    pub sample_ix: usize,
    /// Timestamp of that sample (s).
    pub time: f64,
    /// The horizon `Δt` the prediction covers (s).
    pub horizon: f64,
    /// The predicted-for instant: last closed vertex time + horizon.
    /// `None` while the live buffer holds no vertices yet.
    pub target_time: Option<f64>,
    /// The shared prediction outcome, if the predictor did not abstain.
    pub outcome: Option<PredictionOutcome>,
}

/// A consumer of one session's event stream. All methods default to
/// no-ops so a consumer implements only what it observes.
///
/// Consumers receive `&SessionRuntime` for read-only context (live
/// buffer, configuration, store) — they must not assume exclusive access
/// to anything but their own state.
pub trait SessionConsumer: Send {
    /// New vertices were appended to the live PLR buffer.
    fn on_vertices(&mut self, _session: &SessionRuntime, _new: &[Vertex]) {}

    /// An automatic prediction tick fired (see [`SessionConfig::with_cadence`]).
    fn on_tick(&mut self, _session: &SessionRuntime, _tick: &PredictionTick) {}

    /// The session ended (segmenter flushed; live buffer final).
    fn on_finish(&mut self, _session: &SessionRuntime) {}

    /// The concrete consumer, for downcasting results out of a finished
    /// runtime (see [`SessionRuntime::consumer`]).
    fn as_any(&self) -> &dyn Any;
}

impl dyn SessionConsumer {
    /// Downcasts to a concrete consumer type.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        self.as_any().downcast_ref()
    }
}

/// The streaming runtime for one live session: one segmenter pass, one
/// shared-store engine, many consumers.
pub struct SessionRuntime {
    engine: Arc<CachedMatcher>,
    segmenter: GuardedSegmenter,
    live: Vec<Vertex>,
    config: SessionConfig,
    consumers: Vec<Box<dyn SessionConsumer>>,
    samples_seen: usize,
    finished: bool,
    /// Smoother resets already flushed to the metrics registry.
    seg_resets_seen: u64,
    /// Guard resyncs already flushed to the metrics registry.
    seg_resyncs_seen: u64,
    /// Current health (see [`SessionHealth`]).
    health: SessionHealth,
    /// Index into `live` where the current epoch begins: queries are
    /// generated only from vertices after the last discontinuity, so a
    /// resync never leaks old-epoch (differently-clocked) vertices into
    /// a prediction. Zero on a clean stream.
    epoch_start: usize,
    /// Fresh vertices accumulated since the last fault (recovery gate).
    vertices_since_fault: usize,
    /// Predictions served while Recovering (recovery gate).
    served_in_recovery: usize,
}

impl std::fmt::Debug for SessionRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionRuntime")
            .field("patient", &self.config.patient)
            .field("session", &self.config.session)
            .field("live_vertices", &self.live.len())
            .field("samples_seen", &self.samples_seen)
            .field("consumers", &self.consumers.len())
            .field("finished", &self.finished)
            .finish()
    }
}

impl SessionRuntime {
    /// Creates a runtime with its own engine over `store`. The parameters
    /// are validated — an invalid configuration is an error, not a panic.
    pub fn new(
        store: impl Into<SharedStore>,
        params: Params,
        config: SessionConfig,
    ) -> Result<Self, TsmError> {
        params.validate().map_err(TsmError::InvalidParams)?;
        let engine = Arc::new(CachedMatcher::new(Matcher::new(store, params)));
        Self::with_engine(engine, config)
    }

    /// Creates a runtime over an existing shared engine — the
    /// multi-session configuration: every session searching through the
    /// same [`CachedMatcher`] reuses its per-length feature indexes
    /// instead of rebuilding them per session.
    pub fn with_engine(
        engine: Arc<CachedMatcher>,
        config: SessionConfig,
    ) -> Result<Self, TsmError> {
        engine
            .matcher()
            .params()
            .validate()
            .map_err(TsmError::InvalidParams)?;
        Ok(SessionRuntime {
            segmenter: GuardedSegmenter::new(
                config.segmenter.clone(),
                config.policy.ingest_guard(),
            ),
            live: Vec::new(),
            engine,
            config,
            consumers: Vec::new(),
            samples_seen: 0,
            finished: false,
            seg_resets_seen: 0,
            seg_resyncs_seen: 0,
            health: SessionHealth::Healthy,
            epoch_start: 0,
            vertices_since_fault: 0,
            served_in_recovery: 0,
        })
    }

    /// The metrics registry the session records into (the engine's —
    /// disabled unless the engine's matcher was built with one).
    pub fn metrics(&self) -> &MetricsRegistry {
        self.engine.metrics()
    }

    /// Attaches a consumer (builder form).
    pub fn with_consumer(mut self, consumer: Box<dyn SessionConsumer>) -> Self {
        self.consumers.push(consumer);
        self
    }

    /// Attaches a consumer.
    pub fn add_consumer(&mut self, consumer: Box<dyn SessionConsumer>) {
        self.consumers.push(consumer);
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Mutable access to the session configuration (alignment, options,
    /// cadence can be adjusted between samples).
    pub fn config_mut(&mut self) -> &mut SessionConfig {
        &mut self.config
    }

    /// The shared matching engine.
    pub fn engine(&self) -> &Arc<CachedMatcher> {
        &self.engine
    }

    /// The underlying store handle.
    pub fn store(&self) -> &StreamStore {
        self.engine.matcher().store()
    }

    /// The shared store handle (an `Arc` clone — never a data copy).
    pub fn shared_store(&self) -> SharedStore {
        self.engine.matcher().shared_store()
    }

    /// The matching parameters in use.
    pub fn params(&self) -> &Params {
        self.engine.matcher().params()
    }

    /// The live PLR buffer accumulated so far.
    pub fn live_vertices(&self) -> &[Vertex] {
        &self.live
    }

    /// Raw samples consumed.
    pub fn samples_seen(&self) -> usize {
        self.samples_seen
    }

    /// Current session health.
    pub fn health(&self) -> SessionHealth {
        self.health
    }

    /// Segmenter resyncs the ingest guard has triggered so far.
    pub fn resyncs(&self) -> u64 {
        // `seg_resyncs_seen` mirrors the segmenter's counter after every
        // push and — unlike the segmenter, which `finish` swaps out for
        // a fresh one — survives the end of the session.
        self.seg_resyncs_seen
    }

    /// The vertices of the current epoch (since the last stream
    /// discontinuity) — the only vertices queries are built from.
    pub fn epoch_vertices(&self) -> &[Vertex] {
        &self.live[self.epoch_start.min(self.live.len())..]
    }

    /// Drops the session to Degraded and restarts the recovery gates.
    fn degrade(&mut self, metrics: &MetricsRegistry) {
        if self.health != SessionHealth::Degraded {
            metrics.incr(Counter::HealthDegraded);
        }
        self.health = SessionHealth::Degraded;
        self.vertices_since_fault = 0;
        self.served_in_recovery = 0;
    }

    /// Feeds one raw sample: segments it, notifies consumers of any
    /// vertices that closed, and — when a prediction cadence is set —
    /// computes the shared prediction tick and fans it out. Returns the
    /// newly closed vertices.
    ///
    /// Non-finite samples (NaN / ±inf) are rejected *before* they can
    /// reach the segmenter, so a corrupt tick never damages the live PLR
    /// or the shared store. Stream faults the ingest guard observes
    /// (gaps, backwards time, duplicates, stuck runs) degrade the
    /// session's [`SessionHealth`] instead of erroring: ticks abstain
    /// until enough fresh data has accumulated, then predictions resume
    /// and finally gating re-arms. On a clean stream the guard and the
    /// health machine are inert and the output is bit-identical to the
    /// unguarded runtime.
    pub fn push(&mut self, s: Sample) -> Result<&[Vertex], TsmError> {
        let metrics = self.engine.metrics().clone();
        let ix = self.samples_seen;
        self.samples_seen += 1;
        let before = self.live.len();
        let pushed = match self.segmenter.push(s) {
            Ok(p) => p,
            Err(e) => {
                metrics.incr(Counter::SamplesRejected);
                self.degrade(&metrics);
                return Err(TsmError::InvalidInput(e.to_string()));
            }
        };
        let mut duplicate = false;
        for flag in &pushed.flags {
            match flag {
                IngestFlag::DuplicateDropped { .. } => {
                    duplicate = true;
                    metrics.incr(Counter::DuplicatesDropped);
                }
                IngestFlag::StuckRun { len } if *len == self.config.policy.stuck_limit => {
                    metrics.incr(Counter::StuckRuns);
                }
                _ => {}
            }
        }
        let resynced = pushed.resynced();
        if !pushed.flags.is_empty() {
            self.degrade(&metrics);
        }
        self.live.extend(pushed.vertices);
        if !duplicate {
            metrics.incr(Counter::SegmenterSamples);
        }
        let emitted = (self.live.len() - before) as u64;
        if emitted > 0 {
            metrics.add(Counter::VerticesEmitted, emitted);
            // A state transition is a pair of consecutive vertices whose
            // states differ; count the pairs the new vertices completed.
            let start = before.saturating_sub(1);
            let transitions = self.live[start..]
                .windows(2)
                .filter(|w| w[0].state != w[1].state)
                .count() as u64;
            metrics.add(Counter::StateTransitions, transitions);
        }
        let resets = self.segmenter.smoother_resets();
        if resets > self.seg_resets_seen {
            metrics.add(Counter::SmootherResets, resets - self.seg_resets_seen);
            self.seg_resets_seen = resets;
        }
        let resyncs = self.segmenter.resyncs();
        if resyncs > self.seg_resyncs_seen {
            metrics.add(Counter::SegmenterResyncs, resyncs - self.seg_resyncs_seen);
            self.seg_resyncs_seen = resyncs;
        }
        if resynced {
            // Vertices flushed by the resync belong to the old epoch;
            // everything after this point is the new one.
            self.epoch_start = self.live.len();
        }
        if self.health == SessionHealth::Degraded {
            // Only vertices of the *new* epoch count toward recovery.
            self.vertices_since_fault += self.live.len() - self.epoch_start.max(before);
            if self.vertices_since_fault >= self.config.policy.recovery_vertices {
                self.health = SessionHealth::Recovering;
                self.served_in_recovery = 0;
                metrics.incr(Counter::HealthRecovering);
            }
        }
        // Take the consumers out so they can borrow `self` read-only.
        let mut consumers = std::mem::take(&mut self.consumers);
        if self.live.len() > before {
            for c in consumers.iter_mut() {
                c.on_vertices(self, &self.live[before..]);
            }
        }
        let every = self.config.predict_every;
        if !consumers.is_empty() && every > 0 && ix.is_multiple_of(every) && ix >= every {
            metrics.incr(Counter::SessionTicks);
            let outcome = if self.health == SessionHealth::Degraded {
                // The post-fault query is stale or too short to trust:
                // abstain without searching.
                metrics.incr(Counter::AbstainedUnhealthy);
                None
            } else {
                let tick_start = metrics.start();
                let outcome = self.predict(self.config.horizon);
                metrics.observe_since(Hist::TickLatency, tick_start);
                outcome
            };
            metrics.incr(if outcome.is_some() {
                Counter::PredictionsServed
            } else {
                Counter::PredictionsAbstained
            });
            let tick = PredictionTick {
                sample_ix: ix,
                time: s.time,
                horizon: self.config.horizon,
                target_time: self.live.last().map(|v| v.time + self.config.horizon),
                outcome,
            };
            for c in consumers.iter_mut() {
                let dispatch_start = metrics.start();
                c.on_tick(self, &tick);
                metrics.observe_since(Hist::ConsumerDispatch, dispatch_start);
            }
            if self.health == SessionHealth::Recovering && tick.outcome.is_some() {
                self.served_in_recovery += 1;
                if self.served_in_recovery >= self.config.policy.recovery_predictions {
                    // Transition *after* dispatch: gating held the beam
                    // through the tick that completed recovery.
                    self.health = SessionHealth::Healthy;
                    metrics.incr(Counter::HealthRecovered);
                }
            }
        }
        self.consumers = consumers;
        Ok(&self.live[before..])
    }

    /// Builds the current dynamic query, if the current epoch of the
    /// live buffer is long enough.
    pub fn current_query(&self) -> Option<QuerySubseq> {
        let epoch = self.epoch_vertices();
        let outcome = generate_query(epoch, self.params())?;
        Some(
            QuerySubseq::new(outcome.vertices(epoch).to_vec())
                .with_origin(self.config.patient, self.config.session),
        )
    }

    /// Predicts the position `dt` seconds after the last closed vertex.
    ///
    /// Returns `None` until the current epoch holds at least `L_min`
    /// segments, or when fewer than `min_matches` similar subsequences
    /// are found (the paper abstains rather than guess). Queries never
    /// span a stream discontinuity: only vertices after the last resync
    /// are considered (on a clean stream that is the whole buffer).
    pub fn predict(&self, dt: f64) -> Option<PredictionOutcome> {
        let params = self.params();
        let epoch = self.epoch_vertices();
        let outcome = generate_query(epoch, params)?;
        let query = QuerySubseq::new(outcome.vertices(epoch).to_vec())
            .with_origin(self.config.patient, self.config.session);
        let matches = self.engine.find_matches(&query, &self.config.options);
        let position = predict_position(
            self.store(),
            &query,
            &matches,
            dt,
            params,
            self.config.align,
        )?;
        Some(PredictionOutcome {
            position,
            num_matches: matches.len(),
            query_len: outcome.len,
            query_stable: outcome.stable,
        })
    }

    /// Ends the session: flushes the segmenter tail into the live buffer
    /// and notifies consumers. Idempotent; does **not** touch the store.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let before = self.live.len();
        // The segmenter's flush consumes it; swap in an idle replacement.
        let segmenter = std::mem::replace(
            &mut self.segmenter,
            GuardedSegmenter::new(
                self.config.segmenter.clone(),
                self.config.policy.ingest_guard(),
            ),
        );
        self.live.extend(segmenter.finish());
        let emitted = (self.live.len() - before) as u64;
        if emitted > 0 {
            self.engine.metrics().add(Counter::VerticesEmitted, emitted);
        }
        let mut consumers = std::mem::take(&mut self.consumers);
        if self.live.len() > before {
            for c in consumers.iter_mut() {
                c.on_vertices(self, &self.live[before..]);
            }
        }
        for c in consumers.iter_mut() {
            c.on_finish(self);
        }
        self.consumers = consumers;
    }

    /// Ends the session and persists the live stream into the shared
    /// store so future sessions can match against it (this is the one
    /// store mutation a session performs; it bumps the store version seen
    /// by every other holder). Returns `None` when the live stream never
    /// produced a valid PLR.
    pub fn finish_into_store(mut self) -> Option<StreamId> {
        self.finish();
        let plr = PlrTrajectory::from_vertices(std::mem::take(&mut self.live)).ok()?;
        self.store()
            .try_add_stream(
                self.config.patient,
                self.config.session,
                plr,
                self.samples_seen,
            )
            .ok()
    }

    /// The attached consumers.
    pub fn consumers(&self) -> &[Box<dyn SessionConsumer>] {
        &self.consumers
    }

    /// The first attached consumer of concrete type `T`, for reading
    /// results back out (e.g. a [`GatingController`]'s statistics).
    pub fn consumer<T: Any>(&self) -> Option<&T> {
        self.consumers.iter().find_map(|c| c.downcast_ref::<T>())
    }

    /// Detaches and returns all consumers.
    pub fn into_consumers(self) -> Vec<Box<dyn SessionConsumer>> {
        self.consumers
    }
}

/// A consumer that records every prediction tick.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PredictionLog {
    /// Every tick, in arrival order (including abstentions).
    pub ticks: Vec<PredictionTick>,
}

impl PredictionLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// The non-abstaining outcomes, in tick order.
    pub fn outcomes(&self) -> Vec<PredictionOutcome> {
        self.ticks
            .iter()
            .filter_map(|t| t.outcome.clone())
            .collect()
    }

    /// Number of ticks with an actual prediction.
    pub fn predictions(&self) -> usize {
        self.ticks.iter().filter(|t| t.outcome.is_some()).count()
    }
}

impl SessionConsumer for PredictionLog {
    fn on_tick(&mut self, _session: &SessionRuntime, tick: &PredictionTick) {
        self.ticks.push(tick.clone());
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// A gating controller driven by the shared prediction ticks: the beam is
/// on iff the session is [`SessionHealth::Healthy`] *and* the predicted
/// position lies in the gating window. Abstention keeps the beam off,
/// and any degraded or still-recovering session fails safe to
/// beam-hold — a prediction computed across a sensor fault must never
/// turn the beam on. Each decision is scored
/// against the ground-truth trajectory at the predicted-for instant with
/// the same [`GatingAccumulator`] arithmetic as
/// [`crate::gating::simulate_gating`].
#[derive(Debug)]
pub struct GatingController {
    window: GatingWindow,
    axis: usize,
    truth: PlrTrajectory,
    acc: GatingAccumulator,
    decisions: Vec<bool>,
}

impl GatingController {
    /// Creates a controller gating on `window` along `axis`, scored
    /// against `truth`.
    pub fn new(window: GatingWindow, axis: usize, truth: PlrTrajectory) -> Self {
        GatingController {
            window,
            axis,
            truth,
            acc: GatingAccumulator::new(),
            decisions: Vec::new(),
        }
    }

    /// Every beam decision made, in tick order.
    pub fn decisions(&self) -> &[bool] {
        &self.decisions
    }

    /// The accumulated gating statistics.
    pub fn stats(&self) -> GatingStats {
        self.acc.stats()
    }
}

impl SessionConsumer for GatingController {
    fn on_tick(&mut self, session: &SessionRuntime, tick: &PredictionTick) {
        let Some(target) = tick.target_time else {
            return;
        };
        // Fail safe: only a Healthy session may turn the beam on.
        let beam = session.health() == SessionHealth::Healthy
            && tick
                .outcome
                .as_ref()
                .is_some_and(|o| self.window.contains(o.position[self.axis]));
        let truth_in = self
            .window
            .contains(self.truth.position_at(target)[self.axis]);
        self.acc.record(beam, truth_in);
        self.decisions.push(beam);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// A beam-tracking controller driven by the shared prediction ticks: a
/// prediction re-aims the beam, an abstention holds the previous aim (a
/// real MLC cannot vanish), and the instantaneous error against the
/// ground truth at the predicted-for instant is recorded. Statistics use
/// the same arithmetic as [`crate::tracking::simulate_tracking`]
/// ([`TrackingStats::from_errors`]).
#[derive(Debug)]
pub struct TrackingController {
    truth: PlrTrajectory,
    axis: usize,
    last_aim: Option<Position>,
    errors: Vec<f64>,
}

impl TrackingController {
    /// Creates a controller scored against `truth` along `axis`.
    pub fn new(truth: PlrTrajectory, axis: usize) -> Self {
        TrackingController {
            truth,
            axis,
            last_aim: None,
            errors: Vec::new(),
        }
    }

    /// The recorded instantaneous errors, in tick order.
    pub fn errors(&self) -> &[f64] {
        &self.errors
    }

    /// The accumulated tracking statistics.
    pub fn stats(&self) -> TrackingStats {
        TrackingStats::from_errors(self.errors.clone())
    }
}

impl SessionConsumer for TrackingController {
    fn on_tick(&mut self, _session: &SessionRuntime, tick: &PredictionTick) {
        if let Some(o) = &tick.outcome {
            self.last_aim = Some(o.position);
        }
        let Some(target) = tick.target_time else {
            return;
        };
        if let Some(aim) = self.last_aim {
            let e = (aim[self.axis] - self.truth.position_at(target)[self.axis]).abs();
            self.errors.push(e);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// One session's worth of replay input for a [`CohortRuntime`].
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// The patient the session belongs to.
    pub patient: PatientId,
    /// The session number.
    pub session: u32,
    /// The raw samples to stream through the session.
    pub samples: Vec<Sample>,
}

/// What one replayed session produced.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// The patient the session belonged to.
    pub patient: PatientId,
    /// The session number.
    pub session: u32,
    /// Every prediction tick the session fired, in order.
    pub ticks: Vec<PredictionTick>,
    /// Vertices the live buffer held at the end.
    pub vertices: usize,
    /// Raw samples consumed.
    pub samples: usize,
    /// Whether the session ran to completion (`false` only if its worker
    /// died mid-replay; the runtime then re-runs it serially).
    pub complete: bool,
    /// Why the session terminated early, if it did — a *structured*
    /// error, so callers can distinguish recoverable input faults
    /// ([`TsmError::is_recoverable`](crate::error::CoreError::is_recoverable))
    /// from fatal ones. A failed session is *not* re-run — replaying the
    /// same poisoned input would fail identically.
    pub error: Option<TsmError>,
    /// Final health of the session (Degraded for failed sessions).
    pub health: SessionHealth,
    /// Segmenter resyncs the session's ingest guard performed.
    pub resyncs: u64,
    /// Recoverable per-sample faults the supervisor absorbed.
    pub recovered_faults: usize,
}

impl SessionReport {
    /// Number of ticks with an actual prediction.
    pub fn predictions(&self) -> usize {
        self.ticks.iter().filter(|t| t.outcome.is_some()).count()
    }

    /// True when the session saw faults (absorbed samples or resyncs)
    /// yet still ran to completion.
    pub fn degraded_but_complete(&self) -> bool {
        self.complete && (self.recovered_faults > 0 || self.resyncs > 0)
    }
}

/// Aggregate outcome of a cohort replay.
#[derive(Debug, Clone)]
pub struct CohortReport {
    /// Per-session reports, in spec order.
    pub sessions: Vec<SessionReport>,
    /// Wall-clock time of the whole replay.
    pub wall: Duration,
}

impl CohortReport {
    /// Total prediction ticks fired across all sessions.
    pub fn total_ticks(&self) -> usize {
        self.sessions.iter().map(|s| s.ticks.len()).sum()
    }

    /// Total actual predictions across all sessions.
    pub fn total_predictions(&self) -> usize {
        self.sessions.iter().map(|s| s.predictions()).sum()
    }

    /// Aggregate prediction throughput (predictions per wall-clock
    /// second).
    pub fn predictions_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.total_predictions() as f64 / secs
        } else {
            0.0
        }
    }

    /// Sessions that terminated with an error (always fatal — the
    /// supervisor absorbs recoverable faults).
    pub fn fatal_sessions(&self) -> usize {
        self.sessions.iter().filter(|s| s.error.is_some()).count()
    }

    /// Sessions that hit faults yet completed.
    pub fn degraded_sessions(&self) -> usize {
        self.sessions
            .iter()
            .filter(|s| s.degraded_but_complete())
            .count()
    }

    /// Total recoverable faults absorbed across all sessions.
    pub fn total_recovered_faults(&self) -> usize {
        self.sessions.iter().map(|s| s.recovered_faults).sum()
    }
}

/// Events a replaying session streams over its per-session channel.
enum SessionEvent {
    Tick(PredictionTick),
    Done {
        vertices: usize,
        samples: usize,
        health: SessionHealth,
        resyncs: u64,
        recovered: usize,
    },
    Failed(TsmError),
}

/// Streams each prediction tick into a per-session channel as it happens.
struct ChannelConsumer {
    tx: SyncSender<SessionEvent>,
}

impl SessionConsumer for ChannelConsumer {
    fn on_tick(&mut self, _session: &SessionRuntime, tick: &PredictionTick) {
        // lint:allow(no-silent-result-drop): a send fails only when the
        // collector hung up, and then the whole session report is being
        // discarded with it — there is nowhere to surface the error.
        let _ = self.tx.send(SessionEvent::Tick(tick.clone()));
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Drives N patient sessions against one shared store: every session is a
/// [`SessionRuntime`] over the *same* engine, so the store is searched
/// through one set of per-length feature indexes, and each session
/// streams its outcomes over its own channel. Replays are read-only — the
/// store is never mutated, so serial and parallel schedules produce
/// identical reports.
pub struct CohortRuntime {
    engine: Arc<CachedMatcher>,
    segmenter: SegmenterConfig,
    align: AlignMode,
    options: SearchOptions,
    horizon: f64,
    predict_every: usize,
    threads: usize,
    policy: DegradationPolicy,
}

impl std::fmt::Debug for CohortRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CohortRuntime")
            .field("horizon", &self.horizon)
            .field("predict_every", &self.predict_every)
            .field("threads", &self.threads)
            .finish()
    }
}

impl CohortRuntime {
    /// Creates a cohort runtime with its own shared engine over `store`.
    /// Defaults: default segmenter, 0.3 s horizon, a prediction tick
    /// every 30 samples (~1 Hz at the paper's 30 Hz sampling), one
    /// thread.
    pub fn new(store: impl Into<SharedStore>, params: Params) -> Result<Self, TsmError> {
        params.validate().map_err(TsmError::InvalidParams)?;
        Ok(Self::with_engine(Arc::new(CachedMatcher::new(
            Matcher::new(store, params),
        ))))
    }

    /// Creates a cohort runtime over an existing shared engine.
    pub fn with_engine(engine: Arc<CachedMatcher>) -> Self {
        CohortRuntime {
            engine,
            segmenter: SegmenterConfig::default(),
            align: AlignMode::default(),
            options: SearchOptions::default(),
            horizon: 0.3,
            predict_every: 30,
            threads: 1,
            policy: DegradationPolicy::default(),
        }
    }

    /// Overrides the segmenter configuration.
    pub fn with_segmenter(mut self, segmenter: SegmenterConfig) -> Self {
        self.segmenter = segmenter;
        self
    }

    /// Overrides the prediction alignment mode.
    pub fn with_align(mut self, align: AlignMode) -> Self {
        self.align = align;
        self
    }

    /// Restricts matching for every session.
    pub fn with_options(mut self, options: SearchOptions) -> Self {
        self.options = options;
        self
    }

    /// Overrides the prediction horizon.
    pub fn with_horizon(mut self, horizon: f64) -> Self {
        self.horizon = horizon;
        self
    }

    /// Overrides the prediction cadence (`0` disables ticks).
    pub fn with_cadence(mut self, every: usize) -> Self {
        self.predict_every = every;
        self
    }

    /// Sets the worker-thread count for [`CohortRuntime::replay`].
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Overrides the degradation policy every session runs under.
    pub fn with_policy(mut self, policy: DegradationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The shared matching engine.
    pub fn engine(&self) -> &Arc<CachedMatcher> {
        &self.engine
    }

    /// The underlying store handle.
    pub fn store(&self) -> &StreamStore {
        self.engine.matcher().store()
    }

    /// Replays every spec to completion and returns the per-session
    /// reports in spec order. Sessions are distributed round-robin over
    /// the worker threads; each streams its ticks over its own channel
    /// and the calling thread drains them. A worker panic is contained:
    /// its incomplete sessions are re-run serially.
    pub fn replay(&self, specs: &[SessionSpec]) -> CohortReport {
        // lint:allow(no-instant-now-in-hot-path): cohort wall-clock for
        // the report, taken once per replay — not a per-window hot path.
        let start = Instant::now();
        let threads = self.threads.min(specs.len().max(1));
        let mut sessions: Vec<SessionReport> = if threads <= 1 {
            specs.iter().map(|spec| self.run_session(spec)).collect()
        } else {
            // Hand each sender straight to its batch as the channel is
            // created, keeping only the receivers — no claimed/unclaimed
            // bookkeeping to get wrong.
            let mut receivers: Vec<Receiver<SessionEvent>> = Vec::with_capacity(specs.len());
            let mut batches: Vec<Vec<(usize, SyncSender<SessionEvent>)>> =
                (0..threads).map(|_| Vec::new()).collect();
            for (i, spec) in specs.iter().enumerate() {
                let (tx, rx) = Self::session_channel(spec);
                receivers.push(rx);
                batches[i % threads].push((i, tx));
            }
            // lint:allow(no-silent-result-drop): the scope result is Err
            // only when a worker panicked; incomplete sessions are
            // detected and re-run serially right below.
            let _ = crossbeam::thread::scope(|scope| {
                for batch in batches {
                    scope.spawn(move |_| {
                        for (i, tx) in batch {
                            self.run_session_streaming(&specs[i], tx);
                        }
                    });
                }
                // Drain on the calling thread while workers stream. A
                // receiver closes when its sender is dropped — at session
                // end, or when a panicking worker unwinds.
            });
            receivers
                .into_iter()
                .zip(specs)
                .map(|(rx, spec)| Self::collect(spec, rx))
                .collect()
        };
        // Contain worker panics: re-run any incomplete session serially.
        // Sessions that *failed* (bad input) are left as-is — their error
        // is deterministic and already recorded.
        for (i, report) in sessions.iter_mut().enumerate() {
            if !report.complete && report.error.is_none() {
                *report = self.run_session(&specs[i]);
            }
        }
        let metrics = self.engine.metrics();
        metrics.add(Counter::CohortSessions, sessions.len() as u64);
        metrics.add(
            Counter::CohortSessionsFailed,
            sessions.iter().filter(|s| s.error.is_some()).count() as u64,
        );
        // Each session's channel can hold at most its ticks plus the
        // terminal event before the calling thread drains it.
        if let Some(hwm) = sessions.iter().map(|s| s.ticks.len() as u64 + 1).max() {
            metrics.record_max(Counter::CohortBacklogHwm, hwm);
        }
        CohortReport {
            sessions,
            wall: start.elapsed(),
        }
    }

    /// A bounded per-session channel that can never block its worker:
    /// each sample push emits at most one tick, and the session sends
    /// exactly one terminal event (`Done` or `Failed`), so the event
    /// count is bounded by `samples + 1` even though the calling thread
    /// only drains after the workers have joined.
    fn session_channel(spec: &SessionSpec) -> (SyncSender<SessionEvent>, Receiver<SessionEvent>) {
        std::sync::mpsc::sync_channel(spec.samples.len() + 1)
    }

    /// Runs one session to completion, collecting locally.
    fn run_session(&self, spec: &SessionSpec) -> SessionReport {
        let (tx, rx) = Self::session_channel(spec);
        self.run_session_streaming(spec, tx);
        Self::collect(spec, rx)
    }

    /// Runs one session, streaming events into `tx` (dropped at return,
    /// which closes the session's channel).
    fn run_session_streaming(&self, spec: &SessionSpec, tx: SyncSender<SessionEvent>) {
        let config = SessionConfig::new(spec.patient, spec.session)
            .with_segmenter(self.segmenter.clone())
            .with_align(self.align)
            .with_options(self.options.clone())
            .with_horizon(self.horizon)
            .with_cadence(self.predict_every)
            .with_policy(self.policy);
        // Parameters were validated when the engine was built.
        let Ok(mut runtime) = SessionRuntime::with_engine(self.engine.clone(), config) else {
            return;
        };
        runtime.add_consumer(Box::new(ChannelConsumer { tx: tx.clone() }));
        // Per-session supervisor: recoverable faults (bad samples) are
        // absorbed up to the policy's budget — the session degrades and
        // keeps streaming instead of dying. Fatal errors, and a blown
        // budget, still terminate the session with a structured error.
        let mut recovered = 0usize;
        for &s in &spec.samples {
            match runtime.push(s) {
                Ok(_) => {}
                Err(e) if e.is_recoverable() && recovered < self.policy.fault_budget => {
                    recovered += 1;
                    self.engine.metrics().incr(Counter::CohortFaultsAbsorbed);
                }
                Err(e) => {
                    let err = if e.is_recoverable() {
                        TsmError::FaultBudgetExhausted {
                            absorbed: recovered,
                        }
                    } else {
                        e
                    };
                    // lint:allow(no-silent-result-drop): send fails only
                    // when the collector hung up — nothing to report to.
                    let _ = tx.send(SessionEvent::Failed(err));
                    return;
                }
            }
        }
        runtime.finish();
        // lint:allow(no-silent-result-drop): send fails only when the
        // collector hung up — nothing to report to.
        let _ = tx.send(SessionEvent::Done {
            vertices: runtime.live_vertices().len(),
            samples: runtime.samples_seen(),
            health: runtime.health(),
            resyncs: runtime.resyncs(),
            recovered,
        });
    }

    /// Drains one session's channel into its report.
    fn collect(spec: &SessionSpec, rx: Receiver<SessionEvent>) -> SessionReport {
        let mut report = SessionReport {
            patient: spec.patient,
            session: spec.session,
            ticks: Vec::new(),
            vertices: 0,
            samples: 0,
            complete: false,
            error: None,
            health: SessionHealth::Healthy,
            resyncs: 0,
            recovered_faults: 0,
        };
        for event in rx {
            match event {
                SessionEvent::Tick(t) => report.ticks.push(t),
                SessionEvent::Done {
                    vertices,
                    samples,
                    health,
                    resyncs,
                    recovered,
                } => {
                    report.vertices = vertices;
                    report.samples = samples;
                    report.health = health;
                    report.resyncs = resyncs;
                    report.recovered_faults = recovered;
                    report.complete = true;
                }
                SessionEvent::Failed(err) => {
                    report.error = Some(err);
                    report.health = SessionHealth::Degraded;
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsm_db::PatientAttributes;
    use tsm_model::segment_signal;
    use tsm_signal::{BreathingParams, SignalGenerator};

    fn seeded_store(seed: u64) -> (StreamStore, PatientId) {
        let store = StreamStore::new();
        let patient = store.add_patient(PatientAttributes::new());
        let samples = SignalGenerator::new(BreathingParams::default(), seed).generate(120.0);
        let vertices = segment_signal(&samples, SegmenterConfig::clean());
        let plr = PlrTrajectory::from_vertices(vertices).unwrap();
        store.add_stream(patient, 0, plr, samples.len());
        (store, patient)
    }

    fn live_samples(seed: u64, duration: f64) -> Vec<Sample> {
        SignalGenerator::new(BreathingParams::default(), seed).generate(duration)
    }

    #[test]
    fn invalid_params_are_an_error_not_a_panic() {
        let (store, patient) = seeded_store(21);
        let params = Params {
            delta: 0.0,
            ..Params::default()
        };
        let err = SessionRuntime::new(
            store.clone(),
            params.clone(),
            SessionConfig::new(patient, 1),
        );
        assert!(matches!(err, Err(TsmError::InvalidParams(_))));
        assert!(matches!(
            CohortRuntime::new(store, params),
            Err(TsmError::InvalidParams(_))
        ));
    }

    #[test]
    fn ticks_fire_on_cadence_and_share_one_outcome() {
        let (store, patient) = seeded_store(22);
        let params = Params {
            min_matches: 1,
            ..Params::default()
        };
        let config = SessionConfig::new(patient, 1)
            .with_segmenter(SegmenterConfig::clean())
            .with_cadence(30);
        let mut runtime = SessionRuntime::new(store, params, config)
            .unwrap()
            .with_consumer(Box::new(PredictionLog::new()))
            .with_consumer(Box::new(PredictionLog::new()));
        let samples = live_samples(23, 60.0);
        for &s in &samples {
            runtime.push(s).unwrap();
        }
        let logs: Vec<&PredictionLog> = runtime
            .consumers()
            .iter()
            .filter_map(|c| c.downcast_ref::<PredictionLog>())
            .collect();
        assert_eq!(logs.len(), 2);
        // Cadence: one tick per 30 samples, starting at sample 30.
        let expected = (samples.len() - 1) / 30;
        assert_eq!(logs[0].ticks.len(), expected);
        assert!(logs[0].predictions() > 5);
        // Both consumers saw the *same* outcomes.
        assert_eq!(logs[0].ticks, logs[1].ticks);
    }

    #[test]
    fn runtime_predictions_match_manual_predict_calls() {
        let (store, patient) = seeded_store(24);
        let params = Params {
            min_matches: 1,
            ..Params::default()
        };
        let shared = store.into_shared();
        let config = SessionConfig::new(patient, 1)
            .with_segmenter(SegmenterConfig::clean())
            .with_cadence(30);
        let mut auto = SessionRuntime::new(shared.clone(), params.clone(), config.clone())
            .unwrap()
            .with_consumer(Box::new(PredictionLog::new()));
        let mut manual =
            SessionRuntime::new(shared, params, config.clone().with_cadence(0)).unwrap();
        let mut manual_outcomes = Vec::new();
        for (i, &s) in live_samples(25, 60.0).iter().enumerate() {
            auto.push(s).unwrap();
            manual.push(s).unwrap();
            if i % 30 == 0 && i >= 30 {
                if let Some(o) = manual.predict(config.horizon) {
                    manual_outcomes.push(o);
                }
            }
        }
        let log = auto.consumer::<PredictionLog>().unwrap();
        assert_eq!(log.outcomes(), manual_outcomes);
    }

    #[test]
    fn finish_into_store_bumps_version_for_all_handles() {
        let (store, patient) = seeded_store(26);
        let shared = store.into_shared();
        let params = Params {
            min_matches: 1,
            ..Params::default()
        };
        let a = SessionRuntime::new(
            shared.clone(),
            params.clone(),
            SessionConfig::new(patient, 1).with_segmenter(SegmenterConfig::clean()),
        )
        .unwrap();
        let mut b = SessionRuntime::new(
            shared.clone(),
            params,
            SessionConfig::new(patient, 2).with_segmenter(SegmenterConfig::clean()),
        )
        .unwrap();
        // Both runtimes observe the same version counter...
        let v0 = a.store().version();
        assert_eq!(b.store().version(), v0);
        // ...and one runtime persisting is visible to the other.
        for &s in &live_samples(27, 60.0) {
            b.push(s).unwrap();
        }
        let streams_before = a.store().num_streams();
        b.finish_into_store().expect("stream persisted");
        assert_eq!(a.store().num_streams(), streams_before + 1);
        assert!(a.store().version() > v0);
        assert_eq!(a.store().version(), shared.version());
    }

    #[test]
    fn cohort_replay_reports_per_session_and_never_mutates_the_store() {
        let (store, patient) = seeded_store(28);
        let shared = store.into_shared();
        let params = Params {
            min_matches: 1,
            ..Params::default()
        };
        let runtime = CohortRuntime::new(shared.clone(), params)
            .unwrap()
            .with_segmenter(SegmenterConfig::clean());
        let specs: Vec<SessionSpec> = (0..3)
            .map(|i| SessionSpec {
                patient,
                session: i + 1,
                samples: live_samples(29 + i as u64, 40.0),
            })
            .collect();
        let v0 = shared.version();
        let report = runtime.replay(&specs);
        assert_eq!(shared.version(), v0, "replay must be read-only");
        assert_eq!(report.sessions.len(), 3);
        for (r, spec) in report.sessions.iter().zip(&specs) {
            assert!(r.complete);
            assert_eq!(r.session, spec.session);
            assert_eq!(r.samples, spec.samples.len());
            assert!(r.vertices > 0);
            assert!(
                r.predictions() > 0,
                "session {} abstained always",
                r.session
            );
        }
        assert_eq!(
            report.total_predictions(),
            report
                .sessions
                .iter()
                .map(|s| s.predictions())
                .sum::<usize>()
        );
    }

    #[test]
    fn cohort_parallel_matches_serial() {
        let (store, patient) = seeded_store(30);
        let params = Params {
            min_matches: 1,
            ..Params::default()
        };
        let specs: Vec<SessionSpec> = (0..3)
            .map(|i| SessionSpec {
                patient,
                session: i + 1,
                samples: live_samples(31 + i as u64, 30.0),
            })
            .collect();
        let serial = CohortRuntime::new(store.clone(), params.clone())
            .unwrap()
            .with_segmenter(SegmenterConfig::clean())
            .replay(&specs);
        let parallel = CohortRuntime::new(store, params)
            .unwrap()
            .with_segmenter(SegmenterConfig::clean())
            .with_threads(3)
            .replay(&specs);
        assert_eq!(serial.sessions, parallel.sessions);
    }

    #[test]
    fn non_finite_tick_is_rejected_without_damaging_the_session() {
        let (store, patient) = seeded_store(32);
        let config = SessionConfig::new(patient, 1).with_segmenter(SegmenterConfig::clean());
        let mut runtime = SessionRuntime::new(store, Params::default(), config).unwrap();
        let samples = live_samples(33, 30.0);
        for &s in &samples[..samples.len() / 2] {
            runtime.push(s).unwrap();
        }
        let vertices_before = runtime.live_vertices().len();
        let seen_before = runtime.samples_seen();
        let err = runtime
            .push(Sample::new_1d(1e9, f64::NAN))
            .expect_err("NaN tick must be rejected");
        assert!(matches!(err, TsmError::InvalidInput(_)), "{err:?}");
        let err = runtime
            .push(Sample::new_1d(f64::INFINITY, 1.0))
            .expect_err("non-finite timestamp must be rejected");
        assert!(matches!(err, TsmError::InvalidInput(_)), "{err:?}");
        // The poisoned ticks left no trace in the live buffer and the
        // session keeps accepting good samples afterwards.
        assert_eq!(runtime.live_vertices().len(), vertices_before);
        assert_eq!(runtime.samples_seen(), seen_before + 2);
        for &s in &samples[samples.len() / 2..] {
            runtime.push(s).unwrap();
        }
        runtime.finish();
        assert!(runtime.live_vertices().len() >= vertices_before);
    }

    #[test]
    fn one_poisoned_session_is_absorbed_by_the_supervisor() {
        let (store, patient) = seeded_store(34);
        let params = Params {
            min_matches: 1,
            ..Params::default()
        };
        let mut specs: Vec<SessionSpec> = (0..3)
            .map(|i| SessionSpec {
                patient,
                session: i + 1,
                samples: live_samples(35 + i as u64, 30.0),
            })
            .collect();
        // Poison the middle session with a NaN partway through.
        let mid = specs[1].samples.len() / 2;
        specs[1].samples[mid] = Sample::new_1d(specs[1].samples[mid].time, f64::NAN);
        for threads in [1, 3] {
            let report = CohortRuntime::new(store.clone(), params.clone())
                .unwrap()
                .with_segmenter(SegmenterConfig::clean())
                .with_threads(threads)
                .replay(&specs);
            assert_eq!(report.sessions.len(), 3);
            // The bad sample is a *recoverable* fault: the supervisor
            // absorbs it and the session still runs to completion.
            let bad = &report.sessions[1];
            assert!(bad.complete, "threads={threads}");
            assert!(bad.error.is_none(), "threads={threads}: {:?}", bad.error);
            assert_eq!(bad.recovered_faults, 1, "threads={threads}");
            assert!(bad.degraded_but_complete());
            for r in [&report.sessions[0], &report.sessions[2]] {
                assert!(r.complete, "threads={threads}");
                assert!(r.error.is_none());
                assert_eq!(r.recovered_faults, 0);
                assert!(r.vertices > 0);
            }
            assert_eq!(report.fatal_sessions(), 0);
            assert_eq!(report.degraded_sessions(), 1);
            assert_eq!(report.total_recovered_faults(), 1);
        }
    }

    #[test]
    fn exhausted_fault_budget_fails_with_a_structured_error() {
        let (store, patient) = seeded_store(36);
        let params = Params {
            min_matches: 1,
            ..Params::default()
        };
        let mut samples = live_samples(37, 30.0);
        let mid = samples.len() / 2;
        samples[mid] = Sample::new_1d(samples[mid].time, f64::NAN);
        let specs = [SessionSpec {
            patient,
            session: 1,
            samples,
        }];
        let report = CohortRuntime::new(store, params)
            .unwrap()
            .with_segmenter(SegmenterConfig::clean())
            .with_policy(DegradationPolicy {
                fault_budget: 0,
                ..DegradationPolicy::default()
            })
            .replay(&specs);
        let bad = &report.sessions[0];
        assert!(!bad.complete);
        assert_eq!(
            bad.error,
            Some(TsmError::FaultBudgetExhausted { absorbed: 0 })
        );
        assert_eq!(bad.health, SessionHealth::Degraded);
        assert_eq!(report.fatal_sessions(), 1);
    }

    #[test]
    fn health_machine_degrades_abstains_and_recovers() {
        let (store, patient) = seeded_store(38);
        let params = Params {
            min_matches: 1,
            ..Params::default()
        };
        let config = SessionConfig::new(patient, 1)
            .with_segmenter(SegmenterConfig::clean())
            .with_cadence(30);
        let mut runtime = SessionRuntime::new(store, params, config)
            .unwrap()
            .with_consumer(Box::new(PredictionLog::new()));
        let samples = live_samples(39, 120.0);
        let mid = samples.len() / 2;
        for &s in &samples[..mid] {
            runtime.push(s).unwrap();
        }
        assert_eq!(runtime.health(), SessionHealth::Healthy);
        let healthy_predictions = runtime.consumer::<PredictionLog>().unwrap().predictions();
        assert!(healthy_predictions > 0, "warm-up produced no predictions");
        // A 5 s acquisition dropout: the guard resyncs the segmenter and
        // the session degrades.
        let gap = 5.0;
        let t_resume = samples[mid].time + gap;
        let mut ticks_while_degraded = 0usize;
        let mut saw_recovering = false;
        for (i, &s) in samples[mid..].iter().enumerate() {
            let shifted = Sample::new_1d(s.time + gap, s.position[0]);
            runtime.push(shifted).unwrap();
            match runtime.health() {
                SessionHealth::Degraded => {
                    if (mid + i).is_multiple_of(30) {
                        ticks_while_degraded += 1;
                    }
                }
                SessionHealth::Recovering => saw_recovering = true,
                SessionHealth::Healthy => {}
            }
        }
        assert_eq!(runtime.resyncs(), 1, "gap must resync exactly once");
        assert!(saw_recovering, "session never entered Recovering");
        assert_eq!(
            runtime.health(),
            SessionHealth::Healthy,
            "session did not recover from a transient gap"
        );
        assert!(ticks_while_degraded > 0, "gap produced no degraded ticks");
        // Degraded ticks abstained: outcome is None on each of them.
        let log = runtime.consumer::<PredictionLog>().unwrap();
        let degraded_ticks: Vec<_> = log
            .ticks
            .iter()
            .filter(|t| t.time >= t_resume && t.outcome.is_none())
            .collect();
        assert!(
            degraded_ticks.len() >= ticks_while_degraded,
            "expected >= {ticks_while_degraded} abstaining ticks, got {}",
            degraded_ticks.len()
        );
        // And predictions resumed after recovery.
        assert!(log.predictions() > healthy_predictions);
    }

    #[test]
    fn gating_fails_safe_while_unhealthy() {
        let (store, patient) = seeded_store(40);
        let params = Params {
            min_matches: 1,
            ..Params::default()
        };
        let config = SessionConfig::new(patient, 1)
            .with_segmenter(SegmenterConfig::clean())
            .with_cadence(30);
        let samples = live_samples(41, 120.0);
        let truth =
            PlrTrajectory::from_vertices(segment_signal(&samples, SegmenterConfig::clean()))
                .unwrap();
        // A window so wide every prediction falls inside it: any beam-off
        // tick below is the health gate, not the window.
        let window = GatingWindow {
            center: 0.0,
            width: 1e9,
        };
        let mut runtime = SessionRuntime::new(store, params, config)
            .unwrap()
            .with_consumer(Box::new(GatingController::new(window, 0, truth)));
        let beam_on = |rt: &SessionRuntime| {
            rt.consumer::<GatingController>()
                .unwrap()
                .decisions()
                .iter()
                .filter(|&&b| b)
                .count()
        };
        let ticks_seen =
            |rt: &SessionRuntime| rt.consumer::<GatingController>().unwrap().decisions().len();
        let mid = samples.len() / 2;
        for &s in &samples[..mid] {
            runtime.push(s).unwrap();
        }
        let on_mid = beam_on(&runtime);
        let ticks_mid = ticks_seen(&runtime);
        assert!(on_mid > 0, "no beam-on during warm-up");
        let gap = 5.0;
        let mut checked_degraded_tick = false;
        for &s in &samples[mid..] {
            let shifted = Sample::new_1d(s.time + gap, s.position[0]);
            runtime.push(shifted).unwrap();
            if runtime.health() != SessionHealth::Healthy && ticks_seen(&runtime) > ticks_mid {
                // Every tick since the fault must have held the beam.
                checked_degraded_tick = true;
                assert_eq!(
                    beam_on(&runtime),
                    on_mid,
                    "beam fired while session was {:?}",
                    runtime.health()
                );
            }
        }
        assert!(
            checked_degraded_tick,
            "fault window produced no ticks to check"
        );
        // After recovery the beam re-arms.
        assert!(beam_on(&runtime) > on_mid);
    }
}
