//! The session runtime: one streaming engine for prediction, gating and
//! tracking.
//!
//! The paper's deployment scenario (Figure 1, Sections 4.3 and 5) is a
//! *single* online loop: the tracking system delivers a sample every
//! 33 ms, the signal is segmented once, and the same evolving PLR drives
//! motion prediction, respiration gating and beam tracking. A
//! [`SessionRuntime`] is that loop as a value — it owns one
//! [`OnlineSegmenter`] pass per live session and fans the resulting
//! vertex and prediction events out to pluggable [`SessionConsumer`]s,
//! all searching a shared [`SharedStore`] handle through one
//! [`CachedMatcher`]. A prediction is computed **once** per tick and
//! every consumer sees the same outcome; the legacy alternative — one
//! full replay (segmentation + matching) per application — does the
//! matching work as many times as there are applications.
//!
//! On top of a single session, a [`CohortRuntime`] replays N sessions
//! against the same store on a small thread pool, streaming each
//! session's prediction ticks over its own outcome channel. All sessions
//! share one engine, so an index built for a query length benefits every
//! session, and the monotone store version observed by any session agrees
//! with every other.
//!
//! ## Ownership rules
//!
//! * The store is shared, never copied: every runtime holds the same
//!   `Arc<StreamStore>` through its engine, and
//!   [`SessionRuntime::shared_store`] hands the same handle out again.
//! * Replays never mutate the store — [`CohortRuntime::replay`] is
//!   read-only, so its results are a pure function of (store contents,
//!   specs) and serial/parallel schedules cannot diverge.
//! * Persistence is explicit and terminal:
//!   [`SessionRuntime::finish_into_store`] appends the live stream once,
//!   at end of session, bumping the store version for every other holder.

use crate::error::TsmError;
use crate::gating::{GatingAccumulator, GatingStats, GatingWindow};
use crate::index_cache::CachedMatcher;
use crate::matcher::{Matcher, QuerySubseq, SearchOptions};
use crate::metrics::{Counter, Hist, MetricsRegistry};
use crate::params::Params;
use crate::pipeline::PredictionOutcome;
use crate::predict::{predict_position, AlignMode};
use crate::query::generate_query;
use crate::tracking::TrackingStats;
use std::any::Any;
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tsm_db::{PatientId, SharedStore, StreamId, StreamStore};
use tsm_model::{OnlineSegmenter, PlrTrajectory, Position, Sample, SegmenterConfig, Vertex};

/// Static configuration of one live session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// The patient this session belongs to (drives source-stream weights).
    pub patient: PatientId,
    /// The session number within the patient's record.
    pub session: u32,
    /// Segmenter configuration for the live signal.
    pub segmenter: SegmenterConfig,
    /// Prediction alignment mode.
    pub align: AlignMode,
    /// Search restrictions applied to every query.
    pub options: SearchOptions,
    /// Prediction horizon `Δt` in seconds (the latency to cover).
    pub horizon: f64,
    /// Fire a prediction tick every this many samples; `0` disables
    /// automatic ticks (predictions on demand via
    /// [`SessionRuntime::predict`] only).
    pub predict_every: usize,
}

impl SessionConfig {
    /// A default configuration for a session of `patient`: default
    /// segmenter, 0.3 s horizon, no automatic prediction ticks.
    pub fn new(patient: PatientId, session: u32) -> Self {
        SessionConfig {
            patient,
            session,
            segmenter: SegmenterConfig::default(),
            align: AlignMode::default(),
            options: SearchOptions::default(),
            horizon: 0.3,
            predict_every: 0,
        }
    }

    /// Overrides the segmenter configuration.
    pub fn with_segmenter(mut self, segmenter: SegmenterConfig) -> Self {
        self.segmenter = segmenter;
        self
    }

    /// Overrides the prediction alignment mode.
    pub fn with_align(mut self, align: AlignMode) -> Self {
        self.align = align;
        self
    }

    /// Restricts matching (e.g. to the patient's cluster, Section 5.3).
    pub fn with_options(mut self, options: SearchOptions) -> Self {
        self.options = options;
        self
    }

    /// Overrides the prediction horizon.
    pub fn with_horizon(mut self, horizon: f64) -> Self {
        self.horizon = horizon;
        self
    }

    /// Enables automatic prediction ticks every `every` samples (`0`
    /// disables them).
    pub fn with_cadence(mut self, every: usize) -> Self {
        self.predict_every = every;
        self
    }
}

/// One automatic prediction tick, delivered to every consumer of a
/// session. The outcome is computed once per tick; `None` means the
/// predictor abstained (warm-up, or fewer than `min_matches` similar
/// subsequences).
#[derive(Debug, Clone, PartialEq)]
pub struct PredictionTick {
    /// Zero-based index of the raw sample that triggered the tick.
    pub sample_ix: usize,
    /// Timestamp of that sample (s).
    pub time: f64,
    /// The horizon `Δt` the prediction covers (s).
    pub horizon: f64,
    /// The predicted-for instant: last closed vertex time + horizon.
    /// `None` while the live buffer holds no vertices yet.
    pub target_time: Option<f64>,
    /// The shared prediction outcome, if the predictor did not abstain.
    pub outcome: Option<PredictionOutcome>,
}

/// A consumer of one session's event stream. All methods default to
/// no-ops so a consumer implements only what it observes.
///
/// Consumers receive `&SessionRuntime` for read-only context (live
/// buffer, configuration, store) — they must not assume exclusive access
/// to anything but their own state.
pub trait SessionConsumer: Send {
    /// New vertices were appended to the live PLR buffer.
    fn on_vertices(&mut self, _session: &SessionRuntime, _new: &[Vertex]) {}

    /// An automatic prediction tick fired (see [`SessionConfig::with_cadence`]).
    fn on_tick(&mut self, _session: &SessionRuntime, _tick: &PredictionTick) {}

    /// The session ended (segmenter flushed; live buffer final).
    fn on_finish(&mut self, _session: &SessionRuntime) {}

    /// The concrete consumer, for downcasting results out of a finished
    /// runtime (see [`SessionRuntime::consumer`]).
    fn as_any(&self) -> &dyn Any;
}

impl dyn SessionConsumer {
    /// Downcasts to a concrete consumer type.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        self.as_any().downcast_ref()
    }
}

/// The streaming runtime for one live session: one segmenter pass, one
/// shared-store engine, many consumers.
pub struct SessionRuntime {
    engine: Arc<CachedMatcher>,
    segmenter: OnlineSegmenter,
    live: Vec<Vertex>,
    config: SessionConfig,
    consumers: Vec<Box<dyn SessionConsumer>>,
    samples_seen: usize,
    finished: bool,
    /// Smoother resets already flushed to the metrics registry.
    seg_resets_seen: u64,
}

impl std::fmt::Debug for SessionRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionRuntime")
            .field("patient", &self.config.patient)
            .field("session", &self.config.session)
            .field("live_vertices", &self.live.len())
            .field("samples_seen", &self.samples_seen)
            .field("consumers", &self.consumers.len())
            .field("finished", &self.finished)
            .finish()
    }
}

impl SessionRuntime {
    /// Creates a runtime with its own engine over `store`. The parameters
    /// are validated — an invalid configuration is an error, not a panic.
    pub fn new(
        store: impl Into<SharedStore>,
        params: Params,
        config: SessionConfig,
    ) -> Result<Self, TsmError> {
        params.validate().map_err(TsmError::InvalidParams)?;
        let engine = Arc::new(CachedMatcher::new(Matcher::new(store, params)));
        Self::with_engine(engine, config)
    }

    /// Creates a runtime over an existing shared engine — the
    /// multi-session configuration: every session searching through the
    /// same [`CachedMatcher`] reuses its per-length feature indexes
    /// instead of rebuilding them per session.
    pub fn with_engine(
        engine: Arc<CachedMatcher>,
        config: SessionConfig,
    ) -> Result<Self, TsmError> {
        engine
            .matcher()
            .params()
            .validate()
            .map_err(TsmError::InvalidParams)?;
        Ok(SessionRuntime {
            segmenter: OnlineSegmenter::new(config.segmenter.clone()),
            live: Vec::new(),
            engine,
            config,
            consumers: Vec::new(),
            samples_seen: 0,
            finished: false,
            seg_resets_seen: 0,
        })
    }

    /// The metrics registry the session records into (the engine's —
    /// disabled unless the engine's matcher was built with one).
    pub fn metrics(&self) -> &MetricsRegistry {
        self.engine.metrics()
    }

    /// Attaches a consumer (builder form).
    pub fn with_consumer(mut self, consumer: Box<dyn SessionConsumer>) -> Self {
        self.consumers.push(consumer);
        self
    }

    /// Attaches a consumer.
    pub fn add_consumer(&mut self, consumer: Box<dyn SessionConsumer>) {
        self.consumers.push(consumer);
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Mutable access to the session configuration (alignment, options,
    /// cadence can be adjusted between samples).
    pub fn config_mut(&mut self) -> &mut SessionConfig {
        &mut self.config
    }

    /// The shared matching engine.
    pub fn engine(&self) -> &Arc<CachedMatcher> {
        &self.engine
    }

    /// The underlying store handle.
    pub fn store(&self) -> &StreamStore {
        self.engine.matcher().store()
    }

    /// The shared store handle (an `Arc` clone — never a data copy).
    pub fn shared_store(&self) -> SharedStore {
        self.engine.matcher().shared_store()
    }

    /// The matching parameters in use.
    pub fn params(&self) -> &Params {
        self.engine.matcher().params()
    }

    /// The live PLR buffer accumulated so far.
    pub fn live_vertices(&self) -> &[Vertex] {
        &self.live
    }

    /// Raw samples consumed.
    pub fn samples_seen(&self) -> usize {
        self.samples_seen
    }

    /// Feeds one raw sample: segments it, notifies consumers of any
    /// vertices that closed, and — when a prediction cadence is set —
    /// computes the shared prediction tick and fans it out. Returns the
    /// newly closed vertices.
    ///
    /// Non-finite samples (NaN / ±inf) are rejected *before* they can
    /// reach the segmenter, so a corrupt tick never damages the live PLR
    /// or the shared store.
    pub fn push(&mut self, s: Sample) -> Result<&[Vertex], TsmError> {
        let metrics = self.engine.metrics().clone();
        let ix = self.samples_seen;
        self.samples_seen += 1;
        let before = self.live.len();
        let new = self.segmenter.push(s).map_err(|e| {
            metrics.incr(Counter::SamplesRejected);
            TsmError::InvalidInput(e.to_string())
        })?;
        self.live.extend(new);
        metrics.incr(Counter::SegmenterSamples);
        let emitted = (self.live.len() - before) as u64;
        if emitted > 0 {
            metrics.add(Counter::VerticesEmitted, emitted);
            // A state transition is a pair of consecutive vertices whose
            // states differ; count the pairs the new vertices completed.
            let start = before.saturating_sub(1);
            let transitions = self.live[start..]
                .windows(2)
                .filter(|w| w[0].state != w[1].state)
                .count() as u64;
            metrics.add(Counter::StateTransitions, transitions);
        }
        let resets = self.segmenter.smoother_resets();
        if resets > self.seg_resets_seen {
            metrics.add(Counter::SmootherResets, resets - self.seg_resets_seen);
            self.seg_resets_seen = resets;
        }
        // Take the consumers out so they can borrow `self` read-only.
        let mut consumers = std::mem::take(&mut self.consumers);
        if self.live.len() > before {
            for c in consumers.iter_mut() {
                c.on_vertices(self, &self.live[before..]);
            }
        }
        let every = self.config.predict_every;
        if !consumers.is_empty() && every > 0 && ix.is_multiple_of(every) && ix >= every {
            metrics.incr(Counter::SessionTicks);
            let tick_start = metrics.start();
            let outcome = self.predict(self.config.horizon);
            metrics.observe_since(Hist::TickLatency, tick_start);
            metrics.incr(if outcome.is_some() {
                Counter::PredictionsServed
            } else {
                Counter::PredictionsAbstained
            });
            let tick = PredictionTick {
                sample_ix: ix,
                time: s.time,
                horizon: self.config.horizon,
                target_time: self.live.last().map(|v| v.time + self.config.horizon),
                outcome,
            };
            for c in consumers.iter_mut() {
                let dispatch_start = metrics.start();
                c.on_tick(self, &tick);
                metrics.observe_since(Hist::ConsumerDispatch, dispatch_start);
            }
        }
        self.consumers = consumers;
        Ok(&self.live[before..])
    }

    /// Builds the current dynamic query, if the live buffer is long
    /// enough.
    pub fn current_query(&self) -> Option<QuerySubseq> {
        let outcome = generate_query(&self.live, self.params())?;
        Some(
            QuerySubseq::new(outcome.vertices(&self.live).to_vec())
                .with_origin(self.config.patient, self.config.session),
        )
    }

    /// Predicts the position `dt` seconds after the last closed vertex.
    ///
    /// Returns `None` until the live buffer holds at least `L_min`
    /// segments, or when fewer than `min_matches` similar subsequences
    /// are found (the paper abstains rather than guess).
    pub fn predict(&self, dt: f64) -> Option<PredictionOutcome> {
        let params = self.params();
        let outcome = generate_query(&self.live, params)?;
        let query = QuerySubseq::new(outcome.vertices(&self.live).to_vec())
            .with_origin(self.config.patient, self.config.session);
        let matches = self.engine.find_matches(&query, &self.config.options);
        let position = predict_position(
            self.store(),
            &query,
            &matches,
            dt,
            params,
            self.config.align,
        )?;
        Some(PredictionOutcome {
            position,
            num_matches: matches.len(),
            query_len: outcome.len,
            query_stable: outcome.stable,
        })
    }

    /// Ends the session: flushes the segmenter tail into the live buffer
    /// and notifies consumers. Idempotent; does **not** touch the store.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let before = self.live.len();
        // The segmenter's flush consumes it; swap in an idle replacement.
        let segmenter = std::mem::replace(
            &mut self.segmenter,
            OnlineSegmenter::new(self.config.segmenter.clone()),
        );
        self.live.extend(segmenter.finish());
        let emitted = (self.live.len() - before) as u64;
        if emitted > 0 {
            self.engine.metrics().add(Counter::VerticesEmitted, emitted);
        }
        let mut consumers = std::mem::take(&mut self.consumers);
        if self.live.len() > before {
            for c in consumers.iter_mut() {
                c.on_vertices(self, &self.live[before..]);
            }
        }
        for c in consumers.iter_mut() {
            c.on_finish(self);
        }
        self.consumers = consumers;
    }

    /// Ends the session and persists the live stream into the shared
    /// store so future sessions can match against it (this is the one
    /// store mutation a session performs; it bumps the store version seen
    /// by every other holder). Returns `None` when the live stream never
    /// produced a valid PLR.
    pub fn finish_into_store(mut self) -> Option<StreamId> {
        self.finish();
        let plr = PlrTrajectory::from_vertices(std::mem::take(&mut self.live)).ok()?;
        self.store()
            .try_add_stream(
                self.config.patient,
                self.config.session,
                plr,
                self.samples_seen,
            )
            .ok()
    }

    /// The attached consumers.
    pub fn consumers(&self) -> &[Box<dyn SessionConsumer>] {
        &self.consumers
    }

    /// The first attached consumer of concrete type `T`, for reading
    /// results back out (e.g. a [`GatingController`]'s statistics).
    pub fn consumer<T: Any>(&self) -> Option<&T> {
        self.consumers.iter().find_map(|c| c.downcast_ref::<T>())
    }

    /// Detaches and returns all consumers.
    pub fn into_consumers(self) -> Vec<Box<dyn SessionConsumer>> {
        self.consumers
    }
}

/// A consumer that records every prediction tick.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PredictionLog {
    /// Every tick, in arrival order (including abstentions).
    pub ticks: Vec<PredictionTick>,
}

impl PredictionLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// The non-abstaining outcomes, in tick order.
    pub fn outcomes(&self) -> Vec<PredictionOutcome> {
        self.ticks
            .iter()
            .filter_map(|t| t.outcome.clone())
            .collect()
    }

    /// Number of ticks with an actual prediction.
    pub fn predictions(&self) -> usize {
        self.ticks.iter().filter(|t| t.outcome.is_some()).count()
    }
}

impl SessionConsumer for PredictionLog {
    fn on_tick(&mut self, _session: &SessionRuntime, tick: &PredictionTick) {
        self.ticks.push(tick.clone());
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// A gating controller driven by the shared prediction ticks: the beam is
/// on iff the predicted position lies in the gating window (abstention
/// keeps the beam off — the safe default), and each decision is scored
/// against the ground-truth trajectory at the predicted-for instant with
/// the same [`GatingAccumulator`] arithmetic as
/// [`crate::gating::simulate_gating`].
#[derive(Debug)]
pub struct GatingController {
    window: GatingWindow,
    axis: usize,
    truth: PlrTrajectory,
    acc: GatingAccumulator,
    decisions: Vec<bool>,
}

impl GatingController {
    /// Creates a controller gating on `window` along `axis`, scored
    /// against `truth`.
    pub fn new(window: GatingWindow, axis: usize, truth: PlrTrajectory) -> Self {
        GatingController {
            window,
            axis,
            truth,
            acc: GatingAccumulator::new(),
            decisions: Vec::new(),
        }
    }

    /// Every beam decision made, in tick order.
    pub fn decisions(&self) -> &[bool] {
        &self.decisions
    }

    /// The accumulated gating statistics.
    pub fn stats(&self) -> GatingStats {
        self.acc.stats()
    }
}

impl SessionConsumer for GatingController {
    fn on_tick(&mut self, _session: &SessionRuntime, tick: &PredictionTick) {
        let Some(target) = tick.target_time else {
            return;
        };
        let beam = tick
            .outcome
            .as_ref()
            .is_some_and(|o| self.window.contains(o.position[self.axis]));
        let truth_in = self
            .window
            .contains(self.truth.position_at(target)[self.axis]);
        self.acc.record(beam, truth_in);
        self.decisions.push(beam);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// A beam-tracking controller driven by the shared prediction ticks: a
/// prediction re-aims the beam, an abstention holds the previous aim (a
/// real MLC cannot vanish), and the instantaneous error against the
/// ground truth at the predicted-for instant is recorded. Statistics use
/// the same arithmetic as [`crate::tracking::simulate_tracking`]
/// ([`TrackingStats::from_errors`]).
#[derive(Debug)]
pub struct TrackingController {
    truth: PlrTrajectory,
    axis: usize,
    last_aim: Option<Position>,
    errors: Vec<f64>,
}

impl TrackingController {
    /// Creates a controller scored against `truth` along `axis`.
    pub fn new(truth: PlrTrajectory, axis: usize) -> Self {
        TrackingController {
            truth,
            axis,
            last_aim: None,
            errors: Vec::new(),
        }
    }

    /// The recorded instantaneous errors, in tick order.
    pub fn errors(&self) -> &[f64] {
        &self.errors
    }

    /// The accumulated tracking statistics.
    pub fn stats(&self) -> TrackingStats {
        TrackingStats::from_errors(self.errors.clone())
    }
}

impl SessionConsumer for TrackingController {
    fn on_tick(&mut self, _session: &SessionRuntime, tick: &PredictionTick) {
        if let Some(o) = &tick.outcome {
            self.last_aim = Some(o.position);
        }
        let Some(target) = tick.target_time else {
            return;
        };
        if let Some(aim) = self.last_aim {
            let e = (aim[self.axis] - self.truth.position_at(target)[self.axis]).abs();
            self.errors.push(e);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// One session's worth of replay input for a [`CohortRuntime`].
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// The patient the session belongs to.
    pub patient: PatientId,
    /// The session number.
    pub session: u32,
    /// The raw samples to stream through the session.
    pub samples: Vec<Sample>,
}

/// What one replayed session produced.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// The patient the session belonged to.
    pub patient: PatientId,
    /// The session number.
    pub session: u32,
    /// Every prediction tick the session fired, in order.
    pub ticks: Vec<PredictionTick>,
    /// Vertices the live buffer held at the end.
    pub vertices: usize,
    /// Raw samples consumed.
    pub samples: usize,
    /// Whether the session ran to completion (`false` only if its worker
    /// died mid-replay; the runtime then re-runs it serially).
    pub complete: bool,
    /// Why the session terminated early, if it did (e.g. a non-finite
    /// sample in its input). A failed session is *not* re-run — replaying
    /// the same poisoned input would fail identically.
    pub error: Option<String>,
}

impl SessionReport {
    /// Number of ticks with an actual prediction.
    pub fn predictions(&self) -> usize {
        self.ticks.iter().filter(|t| t.outcome.is_some()).count()
    }
}

/// Aggregate outcome of a cohort replay.
#[derive(Debug, Clone)]
pub struct CohortReport {
    /// Per-session reports, in spec order.
    pub sessions: Vec<SessionReport>,
    /// Wall-clock time of the whole replay.
    pub wall: Duration,
}

impl CohortReport {
    /// Total prediction ticks fired across all sessions.
    pub fn total_ticks(&self) -> usize {
        self.sessions.iter().map(|s| s.ticks.len()).sum()
    }

    /// Total actual predictions across all sessions.
    pub fn total_predictions(&self) -> usize {
        self.sessions.iter().map(|s| s.predictions()).sum()
    }

    /// Aggregate prediction throughput (predictions per wall-clock
    /// second).
    pub fn predictions_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.total_predictions() as f64 / secs
        } else {
            0.0
        }
    }
}

/// Events a replaying session streams over its per-session channel.
enum SessionEvent {
    Tick(PredictionTick),
    Done { vertices: usize, samples: usize },
    Failed(String),
}

/// Streams each prediction tick into a per-session channel as it happens.
struct ChannelConsumer {
    tx: SyncSender<SessionEvent>,
}

impl SessionConsumer for ChannelConsumer {
    fn on_tick(&mut self, _session: &SessionRuntime, tick: &PredictionTick) {
        let _ = self.tx.send(SessionEvent::Tick(tick.clone()));
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Drives N patient sessions against one shared store: every session is a
/// [`SessionRuntime`] over the *same* engine, so the store is searched
/// through one set of per-length feature indexes, and each session
/// streams its outcomes over its own channel. Replays are read-only — the
/// store is never mutated, so serial and parallel schedules produce
/// identical reports.
pub struct CohortRuntime {
    engine: Arc<CachedMatcher>,
    segmenter: SegmenterConfig,
    align: AlignMode,
    options: SearchOptions,
    horizon: f64,
    predict_every: usize,
    threads: usize,
}

impl std::fmt::Debug for CohortRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CohortRuntime")
            .field("horizon", &self.horizon)
            .field("predict_every", &self.predict_every)
            .field("threads", &self.threads)
            .finish()
    }
}

impl CohortRuntime {
    /// Creates a cohort runtime with its own shared engine over `store`.
    /// Defaults: default segmenter, 0.3 s horizon, a prediction tick
    /// every 30 samples (~1 Hz at the paper's 30 Hz sampling), one
    /// thread.
    pub fn new(store: impl Into<SharedStore>, params: Params) -> Result<Self, TsmError> {
        params.validate().map_err(TsmError::InvalidParams)?;
        Ok(Self::with_engine(Arc::new(CachedMatcher::new(
            Matcher::new(store, params),
        ))))
    }

    /// Creates a cohort runtime over an existing shared engine.
    pub fn with_engine(engine: Arc<CachedMatcher>) -> Self {
        CohortRuntime {
            engine,
            segmenter: SegmenterConfig::default(),
            align: AlignMode::default(),
            options: SearchOptions::default(),
            horizon: 0.3,
            predict_every: 30,
            threads: 1,
        }
    }

    /// Overrides the segmenter configuration.
    pub fn with_segmenter(mut self, segmenter: SegmenterConfig) -> Self {
        self.segmenter = segmenter;
        self
    }

    /// Overrides the prediction alignment mode.
    pub fn with_align(mut self, align: AlignMode) -> Self {
        self.align = align;
        self
    }

    /// Restricts matching for every session.
    pub fn with_options(mut self, options: SearchOptions) -> Self {
        self.options = options;
        self
    }

    /// Overrides the prediction horizon.
    pub fn with_horizon(mut self, horizon: f64) -> Self {
        self.horizon = horizon;
        self
    }

    /// Overrides the prediction cadence (`0` disables ticks).
    pub fn with_cadence(mut self, every: usize) -> Self {
        self.predict_every = every;
        self
    }

    /// Sets the worker-thread count for [`CohortRuntime::replay`].
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The shared matching engine.
    pub fn engine(&self) -> &Arc<CachedMatcher> {
        &self.engine
    }

    /// The underlying store handle.
    pub fn store(&self) -> &StreamStore {
        self.engine.matcher().store()
    }

    /// Replays every spec to completion and returns the per-session
    /// reports in spec order. Sessions are distributed round-robin over
    /// the worker threads; each streams its ticks over its own channel
    /// and the calling thread drains them. A worker panic is contained:
    /// its incomplete sessions are re-run serially.
    pub fn replay(&self, specs: &[SessionSpec]) -> CohortReport {
        // lint:allow(no-instant-now-in-hot-path): cohort wall-clock for
        // the report, taken once per replay — not a per-window hot path.
        let start = Instant::now();
        let threads = self.threads.min(specs.len().max(1));
        let mut sessions: Vec<SessionReport> = if threads <= 1 {
            specs.iter().map(|spec| self.run_session(spec)).collect()
        } else {
            // Hand each sender straight to its batch as the channel is
            // created, keeping only the receivers — no claimed/unclaimed
            // bookkeeping to get wrong.
            let mut receivers: Vec<Receiver<SessionEvent>> = Vec::with_capacity(specs.len());
            let mut batches: Vec<Vec<(usize, SyncSender<SessionEvent>)>> =
                (0..threads).map(|_| Vec::new()).collect();
            for (i, spec) in specs.iter().enumerate() {
                let (tx, rx) = Self::session_channel(spec);
                receivers.push(rx);
                batches[i % threads].push((i, tx));
            }
            let _ = crossbeam::thread::scope(|scope| {
                for batch in batches {
                    scope.spawn(move |_| {
                        for (i, tx) in batch {
                            self.run_session_streaming(&specs[i], tx);
                        }
                    });
                }
                // Drain on the calling thread while workers stream. A
                // receiver closes when its sender is dropped — at session
                // end, or when a panicking worker unwinds.
            });
            receivers
                .into_iter()
                .zip(specs)
                .map(|(rx, spec)| Self::collect(spec, rx))
                .collect()
        };
        // Contain worker panics: re-run any incomplete session serially.
        // Sessions that *failed* (bad input) are left as-is — their error
        // is deterministic and already recorded.
        for (i, report) in sessions.iter_mut().enumerate() {
            if !report.complete && report.error.is_none() {
                *report = self.run_session(&specs[i]);
            }
        }
        let metrics = self.engine.metrics();
        metrics.add(Counter::CohortSessions, sessions.len() as u64);
        metrics.add(
            Counter::CohortSessionsFailed,
            sessions.iter().filter(|s| s.error.is_some()).count() as u64,
        );
        // Each session's channel can hold at most its ticks plus the
        // terminal event before the calling thread drains it.
        if let Some(hwm) = sessions.iter().map(|s| s.ticks.len() as u64 + 1).max() {
            metrics.record_max(Counter::CohortBacklogHwm, hwm);
        }
        CohortReport {
            sessions,
            wall: start.elapsed(),
        }
    }

    /// A bounded per-session channel that can never block its worker:
    /// each sample push emits at most one tick, and the session sends
    /// exactly one terminal event (`Done` or `Failed`), so the event
    /// count is bounded by `samples + 1` even though the calling thread
    /// only drains after the workers have joined.
    fn session_channel(spec: &SessionSpec) -> (SyncSender<SessionEvent>, Receiver<SessionEvent>) {
        std::sync::mpsc::sync_channel(spec.samples.len() + 1)
    }

    /// Runs one session to completion, collecting locally.
    fn run_session(&self, spec: &SessionSpec) -> SessionReport {
        let (tx, rx) = Self::session_channel(spec);
        self.run_session_streaming(spec, tx);
        Self::collect(spec, rx)
    }

    /// Runs one session, streaming events into `tx` (dropped at return,
    /// which closes the session's channel).
    fn run_session_streaming(&self, spec: &SessionSpec, tx: SyncSender<SessionEvent>) {
        let config = SessionConfig::new(spec.patient, spec.session)
            .with_segmenter(self.segmenter.clone())
            .with_align(self.align)
            .with_options(self.options.clone())
            .with_horizon(self.horizon)
            .with_cadence(self.predict_every);
        // Parameters were validated when the engine was built.
        let Ok(mut runtime) = SessionRuntime::with_engine(self.engine.clone(), config) else {
            return;
        };
        runtime.add_consumer(Box::new(ChannelConsumer { tx: tx.clone() }));
        for &s in &spec.samples {
            if let Err(e) = runtime.push(s) {
                let _ = tx.send(SessionEvent::Failed(e.to_string()));
                return;
            }
        }
        runtime.finish();
        let _ = tx.send(SessionEvent::Done {
            vertices: runtime.live_vertices().len(),
            samples: runtime.samples_seen(),
        });
    }

    /// Drains one session's channel into its report.
    fn collect(spec: &SessionSpec, rx: Receiver<SessionEvent>) -> SessionReport {
        let mut report = SessionReport {
            patient: spec.patient,
            session: spec.session,
            ticks: Vec::new(),
            vertices: 0,
            samples: 0,
            complete: false,
            error: None,
        };
        for event in rx {
            match event {
                SessionEvent::Tick(t) => report.ticks.push(t),
                SessionEvent::Done { vertices, samples } => {
                    report.vertices = vertices;
                    report.samples = samples;
                    report.complete = true;
                }
                SessionEvent::Failed(msg) => report.error = Some(msg),
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsm_db::PatientAttributes;
    use tsm_model::segment_signal;
    use tsm_signal::{BreathingParams, SignalGenerator};

    fn seeded_store(seed: u64) -> (StreamStore, PatientId) {
        let store = StreamStore::new();
        let patient = store.add_patient(PatientAttributes::new());
        let samples = SignalGenerator::new(BreathingParams::default(), seed).generate(120.0);
        let vertices = segment_signal(&samples, SegmenterConfig::clean());
        let plr = PlrTrajectory::from_vertices(vertices).unwrap();
        store.add_stream(patient, 0, plr, samples.len());
        (store, patient)
    }

    fn live_samples(seed: u64, duration: f64) -> Vec<Sample> {
        SignalGenerator::new(BreathingParams::default(), seed).generate(duration)
    }

    #[test]
    fn invalid_params_are_an_error_not_a_panic() {
        let (store, patient) = seeded_store(21);
        let params = Params {
            delta: 0.0,
            ..Params::default()
        };
        let err = SessionRuntime::new(
            store.clone(),
            params.clone(),
            SessionConfig::new(patient, 1),
        );
        assert!(matches!(err, Err(TsmError::InvalidParams(_))));
        assert!(matches!(
            CohortRuntime::new(store, params),
            Err(TsmError::InvalidParams(_))
        ));
    }

    #[test]
    fn ticks_fire_on_cadence_and_share_one_outcome() {
        let (store, patient) = seeded_store(22);
        let params = Params {
            min_matches: 1,
            ..Params::default()
        };
        let config = SessionConfig::new(patient, 1)
            .with_segmenter(SegmenterConfig::clean())
            .with_cadence(30);
        let mut runtime = SessionRuntime::new(store, params, config)
            .unwrap()
            .with_consumer(Box::new(PredictionLog::new()))
            .with_consumer(Box::new(PredictionLog::new()));
        let samples = live_samples(23, 60.0);
        for &s in &samples {
            runtime.push(s).unwrap();
        }
        let logs: Vec<&PredictionLog> = runtime
            .consumers()
            .iter()
            .filter_map(|c| c.downcast_ref::<PredictionLog>())
            .collect();
        assert_eq!(logs.len(), 2);
        // Cadence: one tick per 30 samples, starting at sample 30.
        let expected = (samples.len() - 1) / 30;
        assert_eq!(logs[0].ticks.len(), expected);
        assert!(logs[0].predictions() > 5);
        // Both consumers saw the *same* outcomes.
        assert_eq!(logs[0].ticks, logs[1].ticks);
    }

    #[test]
    fn runtime_predictions_match_manual_predict_calls() {
        let (store, patient) = seeded_store(24);
        let params = Params {
            min_matches: 1,
            ..Params::default()
        };
        let shared = store.into_shared();
        let config = SessionConfig::new(patient, 1)
            .with_segmenter(SegmenterConfig::clean())
            .with_cadence(30);
        let mut auto = SessionRuntime::new(shared.clone(), params.clone(), config.clone())
            .unwrap()
            .with_consumer(Box::new(PredictionLog::new()));
        let mut manual =
            SessionRuntime::new(shared, params, config.clone().with_cadence(0)).unwrap();
        let mut manual_outcomes = Vec::new();
        for (i, &s) in live_samples(25, 60.0).iter().enumerate() {
            auto.push(s).unwrap();
            manual.push(s).unwrap();
            if i % 30 == 0 && i >= 30 {
                if let Some(o) = manual.predict(config.horizon) {
                    manual_outcomes.push(o);
                }
            }
        }
        let log = auto.consumer::<PredictionLog>().unwrap();
        assert_eq!(log.outcomes(), manual_outcomes);
    }

    #[test]
    fn finish_into_store_bumps_version_for_all_handles() {
        let (store, patient) = seeded_store(26);
        let shared = store.into_shared();
        let params = Params {
            min_matches: 1,
            ..Params::default()
        };
        let a = SessionRuntime::new(
            shared.clone(),
            params.clone(),
            SessionConfig::new(patient, 1).with_segmenter(SegmenterConfig::clean()),
        )
        .unwrap();
        let mut b = SessionRuntime::new(
            shared.clone(),
            params,
            SessionConfig::new(patient, 2).with_segmenter(SegmenterConfig::clean()),
        )
        .unwrap();
        // Both runtimes observe the same version counter...
        let v0 = a.store().version();
        assert_eq!(b.store().version(), v0);
        // ...and one runtime persisting is visible to the other.
        for &s in &live_samples(27, 60.0) {
            b.push(s).unwrap();
        }
        let streams_before = a.store().num_streams();
        b.finish_into_store().expect("stream persisted");
        assert_eq!(a.store().num_streams(), streams_before + 1);
        assert!(a.store().version() > v0);
        assert_eq!(a.store().version(), shared.version());
    }

    #[test]
    fn cohort_replay_reports_per_session_and_never_mutates_the_store() {
        let (store, patient) = seeded_store(28);
        let shared = store.into_shared();
        let params = Params {
            min_matches: 1,
            ..Params::default()
        };
        let runtime = CohortRuntime::new(shared.clone(), params)
            .unwrap()
            .with_segmenter(SegmenterConfig::clean());
        let specs: Vec<SessionSpec> = (0..3)
            .map(|i| SessionSpec {
                patient,
                session: i + 1,
                samples: live_samples(29 + i as u64, 40.0),
            })
            .collect();
        let v0 = shared.version();
        let report = runtime.replay(&specs);
        assert_eq!(shared.version(), v0, "replay must be read-only");
        assert_eq!(report.sessions.len(), 3);
        for (r, spec) in report.sessions.iter().zip(&specs) {
            assert!(r.complete);
            assert_eq!(r.session, spec.session);
            assert_eq!(r.samples, spec.samples.len());
            assert!(r.vertices > 0);
            assert!(
                r.predictions() > 0,
                "session {} abstained always",
                r.session
            );
        }
        assert_eq!(
            report.total_predictions(),
            report
                .sessions
                .iter()
                .map(|s| s.predictions())
                .sum::<usize>()
        );
    }

    #[test]
    fn cohort_parallel_matches_serial() {
        let (store, patient) = seeded_store(30);
        let params = Params {
            min_matches: 1,
            ..Params::default()
        };
        let specs: Vec<SessionSpec> = (0..3)
            .map(|i| SessionSpec {
                patient,
                session: i + 1,
                samples: live_samples(31 + i as u64, 30.0),
            })
            .collect();
        let serial = CohortRuntime::new(store.clone(), params.clone())
            .unwrap()
            .with_segmenter(SegmenterConfig::clean())
            .replay(&specs);
        let parallel = CohortRuntime::new(store, params)
            .unwrap()
            .with_segmenter(SegmenterConfig::clean())
            .with_threads(3)
            .replay(&specs);
        assert_eq!(serial.sessions, parallel.sessions);
    }

    #[test]
    fn non_finite_tick_is_rejected_without_damaging_the_session() {
        let (store, patient) = seeded_store(32);
        let config = SessionConfig::new(patient, 1).with_segmenter(SegmenterConfig::clean());
        let mut runtime = SessionRuntime::new(store, Params::default(), config).unwrap();
        let samples = live_samples(33, 30.0);
        for &s in &samples[..samples.len() / 2] {
            runtime.push(s).unwrap();
        }
        let vertices_before = runtime.live_vertices().len();
        let seen_before = runtime.samples_seen();
        let err = runtime
            .push(Sample::new_1d(1e9, f64::NAN))
            .expect_err("NaN tick must be rejected");
        assert!(matches!(err, TsmError::InvalidInput(_)), "{err:?}");
        let err = runtime
            .push(Sample::new_1d(f64::INFINITY, 1.0))
            .expect_err("non-finite timestamp must be rejected");
        assert!(matches!(err, TsmError::InvalidInput(_)), "{err:?}");
        // The poisoned ticks left no trace in the live buffer and the
        // session keeps accepting good samples afterwards.
        assert_eq!(runtime.live_vertices().len(), vertices_before);
        assert_eq!(runtime.samples_seen(), seen_before + 2);
        for &s in &samples[samples.len() / 2..] {
            runtime.push(s).unwrap();
        }
        runtime.finish();
        assert!(runtime.live_vertices().len() >= vertices_before);
    }

    #[test]
    fn one_poisoned_session_does_not_abort_cohort_replay() {
        let (store, patient) = seeded_store(34);
        let params = Params {
            min_matches: 1,
            ..Params::default()
        };
        let mut specs: Vec<SessionSpec> = (0..3)
            .map(|i| SessionSpec {
                patient,
                session: i + 1,
                samples: live_samples(35 + i as u64, 30.0),
            })
            .collect();
        // Poison the middle session with a NaN partway through.
        let mid = specs[1].samples.len() / 2;
        specs[1].samples[mid] = Sample::new_1d(specs[1].samples[mid].time, f64::NAN);
        for threads in [1, 3] {
            let report = CohortRuntime::new(store.clone(), params.clone())
                .unwrap()
                .with_segmenter(SegmenterConfig::clean())
                .with_threads(threads)
                .replay(&specs);
            assert_eq!(report.sessions.len(), 3);
            let bad = &report.sessions[1];
            assert!(!bad.complete, "threads={threads}");
            assert!(
                bad.error.as_deref().unwrap_or("").contains("non-finite"),
                "threads={threads}: {:?}",
                bad.error
            );
            for r in [&report.sessions[0], &report.sessions[2]] {
                assert!(r.complete, "threads={threads}");
                assert!(r.error.is_none());
                assert!(r.vertices > 0);
            }
        }
    }
}
