//! Respiration-gated beam delivery (the paper's Figure 1 application).
//!
//! "Respiration gating delivers radiation doses only when the tumor is in
//! a predetermined location. ... The tumor may move in or out of the
//! gating window, and treatment is delivered when the tumor is in the
//! gating window. ... If treatment is based on the last observed position
//! rather than the current position, this latency will reduce the
//! effectiveness and efficiency of treating a moving tumor."
//!
//! This module simulates gated delivery against a ground-truth trajectory
//! and scores a gating *policy* (a decision function that may only use
//! information available `latency` seconds in the past) on the two
//! clinical axes:
//!
//! * **precision** — of the beam-on time, how much was the tumor truly in
//!   the window (misses irradiate healthy tissue);
//! * **recall** — of the in-window time, how much was treated (missed
//!   opportunity prolongs treatment).

use serde::{Deserialize, Serialize};
use tsm_model::PlrTrajectory;

/// The spatial gating window along the classification axis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GatingWindow {
    /// Window center (mm). Clinically placed at the end-of-exhale
    /// position, the most reproducible phase.
    pub center: f64,
    /// Full window width (mm).
    pub width: f64,
}

impl GatingWindow {
    /// Whether `position` lies inside the window.
    #[inline]
    pub fn contains(&self, position: f64) -> bool {
        (position - self.center).abs() <= self.width * 0.5
    }

    /// A window centered on a trajectory's end-of-exhale level: the
    /// median of its EOE vertex positions. Falls back to the trajectory
    /// minimum when no EOE segments exist.
    pub fn at_exhale_end(plr: &PlrTrajectory, axis: usize, width: f64) -> Self {
        let mut eoe: Vec<f64> = plr.vertices()[..plr.num_vertices().saturating_sub(1)]
            .iter()
            .filter(|v| v.state == tsm_model::BreathState::EndOfExhale)
            .map(|v| v.position[axis])
            .collect();
        let center = if eoe.is_empty() {
            plr.vertices()
                .iter()
                .map(|v| v.position[axis])
                .fold(f64::INFINITY, f64::min)
        } else {
            eoe.sort_by(f64::total_cmp);
            eoe[eoe.len() / 2]
        };
        GatingWindow { center, width }
    }
}

/// Outcome of a simulated gated delivery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GatingStats {
    /// Fraction of total time with the beam on (duty cycle).
    pub duty_cycle: f64,
    /// Of beam-on time, the fraction with the tumor truly inside the
    /// window.
    pub precision: f64,
    /// Of true in-window time, the fraction with the beam on.
    pub recall: f64,
    /// Decision ticks evaluated.
    pub ticks: usize,
}

impl GatingStats {
    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        // lint:allow(no-float-eq): exact-zero guard against 0/0; both
        // ratios are non-negative, so the sum is zero iff both are.
        if self.precision + self.recall == 0.0 {
            0.0
        } else {
            2.0 * self.precision * self.recall / (self.precision + self.recall)
        }
    }
}

/// The streaming core of [`simulate_gating`]: integer precision/recall
/// counters fed one `(beam_on, truth_inside)` decision at a time.
///
/// Extracted so that online consumers (the session runtime's gating
/// controller) accumulate *exactly* the statistics the offline simulation
/// produces — same counters, same final arithmetic, bit-identical
/// [`GatingStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatingAccumulator {
    on_and_in: usize,
    on: usize,
    inside: usize,
    ticks: usize,
}

impl GatingAccumulator {
    /// A fresh accumulator with no decisions recorded.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one decision tick.
    pub fn record(&mut self, beam_on: bool, truth_inside: bool) {
        self.ticks += 1;
        if beam_on {
            self.on += 1;
            if truth_inside {
                self.on_and_in += 1;
            }
        }
        if truth_inside {
            self.inside += 1;
        }
    }

    /// Decision ticks recorded so far.
    pub fn ticks(&self) -> usize {
        self.ticks
    }

    /// The aggregate statistics of the decisions recorded so far.
    pub fn stats(&self) -> GatingStats {
        GatingStats {
            duty_cycle: self.on as f64 / self.ticks.max(1) as f64,
            precision: if self.on > 0 {
                self.on_and_in as f64 / self.on as f64
            } else {
                0.0
            },
            recall: if self.inside > 0 {
                self.on_and_in as f64 / self.inside as f64
            } else {
                0.0
            },
            ticks: self.ticks,
        }
    }
}

/// Simulates gated delivery over `[t0, t1]` at `tick` resolution.
///
/// At each tick `t` the policy is asked whether the beam should be on at
/// `t`; the decision is scored against the *true* position at `t`. The
/// policy must respect causality itself (base its answer only on
/// information available at `t - latency`); the helpers below construct
/// the three standard policies.
pub fn simulate_gating(
    truth: &PlrTrajectory,
    axis: usize,
    window: GatingWindow,
    t0: f64,
    t1: f64,
    tick: f64,
    mut beam_on: impl FnMut(f64) -> bool,
) -> GatingStats {
    assert!(tick > 0.0, "tick must be positive");
    let mut acc = GatingAccumulator::new();
    let mut t = t0;
    while t <= t1 {
        let truth_in = window.contains(truth.position_at(t)[axis]);
        let beam = beam_on(t);
        acc.record(beam, truth_in);
        t += tick;
    }
    acc.stats()
}

/// The ideal (zero-latency) policy: gate on the true current position.
pub fn oracle_policy<'a>(
    truth: &'a PlrTrajectory,
    axis: usize,
    window: GatingWindow,
) -> impl FnMut(f64) -> bool + 'a {
    move |t| window.contains(truth.position_at(t)[axis])
}

/// The uncompensated policy of Figure 1: gate on the position observed
/// `latency` seconds ago.
pub fn last_observed_policy<'a>(
    truth: &'a PlrTrajectory,
    axis: usize,
    window: GatingWindow,
    latency: f64,
) -> impl FnMut(f64) -> bool + 'a {
    move |t| window.contains(truth.position_at(t - latency)[axis])
}

/// A predictive policy: gate on a caller-supplied prediction of the
/// position at `t`, made from information available at `t - latency`.
pub fn predicted_policy(
    window: GatingWindow,
    axis: usize,
    mut predict: impl FnMut(f64) -> Option<tsm_model::Position>,
) -> impl FnMut(f64) -> bool {
    move |t| match predict(t) {
        Some(p) => window.contains(p[axis]),
        None => false, // abstaining keeps the beam off (safe default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsm_model::{BreathState::*, Vertex};

    /// A regular trajectory: 10 cycles, EOE dwell at 0 for 1 s per 4 s
    /// cycle.
    fn truth() -> PlrTrajectory {
        let mut v = Vec::new();
        let mut t = 0.0;
        for _ in 0..10 {
            v.push(Vertex::new_1d(t, 10.0, Exhale));
            v.push(Vertex::new_1d(t + 1.5, 0.0, EndOfExhale));
            v.push(Vertex::new_1d(t + 2.5, 0.0, Inhale));
            t += 4.0;
        }
        v.push(Vertex::new_1d(t, 10.0, Exhale));
        PlrTrajectory::from_vertices(v).unwrap()
    }

    #[test]
    fn window_placement_at_exhale_end() {
        let plr = truth();
        let w = GatingWindow::at_exhale_end(&plr, 0, 3.0);
        assert_eq!(w.center, 0.0);
        assert!(w.contains(1.4));
        assert!(!w.contains(1.6));
        assert!(w.contains(-1.4));
    }

    #[test]
    fn oracle_is_perfect() {
        let plr = truth();
        let w = GatingWindow::at_exhale_end(&plr, 0, 3.0);
        let stats = simulate_gating(&plr, 0, w, 2.0, 38.0, 0.02, oracle_policy(&plr, 0, w));
        assert!((stats.precision - 1.0).abs() < 1e-9);
        assert!((stats.recall - 1.0).abs() < 1e-9);
        assert!(stats.duty_cycle > 0.2 && stats.duty_cycle < 0.6);
    }

    #[test]
    fn latency_degrades_last_observed() {
        let plr = truth();
        let w = GatingWindow::at_exhale_end(&plr, 0, 3.0);
        let no_latency = simulate_gating(
            &plr,
            0,
            w,
            2.0,
            38.0,
            0.02,
            last_observed_policy(&plr, 0, w, 0.0),
        );
        let with_latency = simulate_gating(
            &plr,
            0,
            w,
            2.0,
            38.0,
            0.02,
            last_observed_policy(&plr, 0, w, 0.4),
        );
        assert!((no_latency.f1() - 1.0).abs() < 1e-9);
        assert!(
            with_latency.precision < 0.95,
            "latency should cause out-of-window irradiation: precision {}",
            with_latency.precision
        );
        assert!(with_latency.f1() < no_latency.f1());
    }

    #[test]
    fn perfect_prediction_restores_the_oracle() {
        let plr = truth();
        let w = GatingWindow::at_exhale_end(&plr, 0, 3.0);
        // A predictor that happens to be exactly right.
        let policy = predicted_policy(w, 0, |t| Some(plr.position_at(t)));
        let stats = simulate_gating(&plr, 0, w, 2.0, 38.0, 0.02, policy);
        assert!((stats.f1() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn abstaining_predictor_keeps_beam_off() {
        let plr = truth();
        let w = GatingWindow::at_exhale_end(&plr, 0, 3.0);
        let policy = predicted_policy(w, 0, |_| None);
        let stats = simulate_gating(&plr, 0, w, 2.0, 38.0, 0.02, policy);
        assert_eq!(stats.duty_cycle, 0.0);
        assert_eq!(stats.recall, 0.0);
    }

    #[test]
    fn f1_edge_cases() {
        let s = GatingStats {
            duty_cycle: 0.0,
            precision: 0.0,
            recall: 0.0,
            ticks: 10,
        };
        assert_eq!(s.f1(), 0.0);
    }
}
