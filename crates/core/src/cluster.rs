//! Distance-matrix clustering (paper Section 5.3).
//!
//! Stream and patient similarity "provide a convenient way to cluster
//! patients". Because only pairwise distances exist (no vector space), the
//! clusterers here are distance-matrix native: **k-medoids** (PAM-style
//! swap refinement) and **average-linkage agglomerative**. Evaluation
//! helpers — silhouette width and the adjusted Rand index against ground
//! truth — support the clustering experiments.

use serde::{Deserialize, Serialize};

/// A dense symmetric distance matrix with a zero diagonal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// An `n × n` zero matrix.
    pub fn new(n: usize) -> Self {
        DistanceMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Builds a matrix by evaluating `f(i, j)` for `i < j`.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sets `d(i, j)` (and `d(j, i)`).
    pub fn set(&mut self, i: usize, j: usize, d: f64) {
        assert!(
            d >= 0.0 && d.is_finite(),
            "distances must be finite and >= 0"
        );
        self.data[i * self.n + j] = d;
        self.data[j * self.n + i] = d;
    }

    /// The distance between points `i` and `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }
}

/// PAM-style k-medoids over a distance matrix.
///
/// ```
/// use tsm_core::cluster::{k_medoids, DistanceMatrix};
///
/// // Two blobs on a line: {0, 1, 2} near zero, {10, 11, 12} far away.
/// let xs: [f64; 6] = [0.0, 1.0, 2.0, 10.0, 11.0, 12.0];
/// let dm = DistanceMatrix::from_fn(6, |i, j| (xs[i] - xs[j]).abs());
/// let labels = k_medoids(&dm, 2, 50);
/// assert_eq!(labels[0], labels[1]);
/// assert_eq!(labels[3], labels[5]);
/// assert_ne!(labels[0], labels[3]);
/// ```
///
/// Deterministic: the
/// initialization is greedy (farthest-point) from the most central point,
/// and swaps are applied best-first until no swap improves the total cost.
/// Returns cluster labels in `0..k`.
pub fn k_medoids(dm: &DistanceMatrix, k: usize, max_iter: usize) -> Vec<usize> {
    let n = dm.len();
    if n == 0 || k == 0 {
        return Vec::new();
    }
    let k = k.min(n);

    // Initialization: most central point first, then farthest-first.
    let mut medoids: Vec<usize> = Vec::with_capacity(k);
    let Some(central) = (0..n).min_by(|&a, &b| {
        let ca: f64 = (0..n).map(|j| dm.get(a, j)).sum();
        let cb: f64 = (0..n).map(|j| dm.get(b, j)).sum();
        ca.total_cmp(&cb)
    }) else {
        return Vec::new(); // unreachable: n > 0 checked above
    };
    medoids.push(central);
    while medoids.len() < k {
        let next = (0..n).filter(|i| !medoids.contains(i)).max_by(|&a, &b| {
            let da = medoids
                .iter()
                .map(|&m| dm.get(a, m))
                .fold(f64::MAX, f64::min);
            let db = medoids
                .iter()
                .map(|&m| dm.get(b, m))
                .fold(f64::MAX, f64::min);
            da.total_cmp(&db)
        });
        match next {
            Some(next) => medoids.push(next),
            // unreachable: k <= n guarantees unchosen points remain.
            None => break,
        }
    }

    let cost = |medoids: &[usize]| -> f64 {
        (0..n)
            .map(|i| {
                medoids
                    .iter()
                    .map(|&m| dm.get(i, m))
                    .fold(f64::MAX, f64::min)
            })
            .sum()
    };

    let mut best_cost = cost(&medoids);
    for _ in 0..max_iter {
        let mut improved = false;
        let mut best_swap: Option<(usize, usize, f64)> = None;
        for mi in 0..medoids.len() {
            for candidate in 0..n {
                if medoids.contains(&candidate) {
                    continue;
                }
                let mut trial = medoids.clone();
                trial[mi] = candidate;
                let c = cost(&trial);
                if c + 1e-12 < best_swap.map(|s| s.2).unwrap_or(best_cost) {
                    best_swap = Some((mi, candidate, c));
                }
            }
        }
        if let Some((mi, candidate, c)) = best_swap {
            medoids[mi] = candidate;
            best_cost = c;
            improved = true;
        }
        if !improved {
            break;
        }
    }

    (0..n)
        .map(|i| {
            medoids
                .iter()
                .enumerate()
                .min_by(|(_, &a), (_, &b)| dm.get(i, a).total_cmp(&dm.get(i, b)))
                .map(|(ix, _)| ix)
                .unwrap_or(0) // unreachable: medoids is non-empty (k >= 1)
        })
        .collect()
}

/// Average-linkage agglomerative clustering cut at `k` clusters. Returns
/// labels in `0..k`.
pub fn agglomerative(dm: &DistanceMatrix, k: usize) -> Vec<usize> {
    let n = dm.len();
    if n == 0 || k == 0 {
        return Vec::new();
    }
    let k = k.min(n);
    // Active clusters as member lists.
    let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    while clusters.len() > k {
        // Find the pair with the smallest average inter-cluster distance.
        let mut best = (0usize, 1usize, f64::MAX);
        for a in 0..clusters.len() {
            for b in (a + 1)..clusters.len() {
                let mut sum = 0.0;
                for &i in &clusters[a] {
                    for &j in &clusters[b] {
                        sum += dm.get(i, j);
                    }
                }
                let avg = sum / (clusters[a].len() * clusters[b].len()) as f64;
                if avg < best.2 {
                    best = (a, b, avg);
                }
            }
        }
        let merged = clusters.remove(best.1);
        clusters[best.0].extend(merged);
    }
    let mut labels = vec![0usize; n];
    for (cix, members) in clusters.iter().enumerate() {
        for &m in members {
            labels[m] = cix;
        }
    }
    labels
}

/// Mean silhouette width of a labelling: +1 is perfectly separated, 0 is
/// boundary, negative is misassigned. Singleton clusters contribute 0.
pub fn silhouette(dm: &DistanceMatrix, labels: &[usize]) -> f64 {
    let n = dm.len();
    assert_eq!(labels.len(), n, "labels must cover every point");
    if n < 2 {
        return 0.0;
    }
    let k = labels.iter().max().map(|&m| m + 1).unwrap_or(0);
    let mut total = 0.0;
    for i in 0..n {
        let own = labels[i];
        let own_size = labels.iter().filter(|&&l| l == own).count();
        if own_size <= 1 {
            continue; // silhouette of a singleton is defined as 0
        }
        // a(i): mean distance within own cluster.
        let a: f64 = (0..n)
            .filter(|&j| j != i && labels[j] == own)
            .map(|j| dm.get(i, j))
            .sum::<f64>()
            / (own_size - 1) as f64;
        // b(i): smallest mean distance to another cluster.
        let mut b = f64::MAX;
        for c in 0..k {
            if c == own {
                continue;
            }
            let size = labels.iter().filter(|&&l| l == c).count();
            if size == 0 {
                continue;
            }
            let mean = (0..n)
                .filter(|&j| labels[j] == c)
                .map(|j| dm.get(i, j))
                .sum::<f64>()
                / size as f64;
            b = b.min(mean);
        }
        if b.is_finite() && a.max(b) > 0.0 {
            total += (b - a) / a.max(b);
        }
    }
    total / n as f64
}

/// Adjusted Rand index between two labellings: 1 for identical
/// partitions, ~0 for random agreement.
pub fn adjusted_rand_index(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "labellings must cover the same points");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let ka = a.iter().max().map(|&m| m + 1).unwrap_or(0);
    let kb = b.iter().max().map(|&m| m + 1).unwrap_or(0);
    let mut table = vec![vec![0usize; kb]; ka];
    for i in 0..n {
        table[a[i]][b[i]] += 1;
    }
    let comb2 = |x: usize| (x * x.saturating_sub(1)) as f64 / 2.0;
    let sum_ij: f64 = table.iter().flatten().map(|&x| comb2(x)).sum();
    let sum_a: f64 = (0..ka).map(|i| comb2(table[i].iter().sum::<usize>())).sum();
    let sum_b: f64 = (0..kb)
        .map(|j| comb2(table.iter().map(|row| row[j]).sum::<usize>()))
        .sum();
    let expected = sum_a * sum_b / comb2(n);
    let max_index = (sum_a + sum_b) / 2.0;
    if (max_index - expected).abs() < 1e-12 {
        return 1.0;
    }
    (sum_ij - expected) / (max_index - expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated blobs on a line: points 0..4 near 0, 5..9 near 10.
    fn two_blobs() -> (DistanceMatrix, Vec<usize>) {
        let coords: Vec<f64> = (0..5)
            .map(|i| i as f64 * 0.1)
            .chain((0..5).map(|i| 10.0 + i as f64 * 0.1))
            .collect();
        let dm = DistanceMatrix::from_fn(coords.len(), |i, j| (coords[i] - coords[j]).abs());
        let truth = vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1];
        (dm, truth)
    }

    #[test]
    fn k_medoids_recovers_blobs() {
        let (dm, truth) = two_blobs();
        let labels = k_medoids(&dm, 2, 50);
        assert_eq!(adjusted_rand_index(&labels, &truth), 1.0);
    }

    #[test]
    fn agglomerative_recovers_blobs() {
        let (dm, truth) = two_blobs();
        let labels = agglomerative(&dm, 2);
        assert_eq!(adjusted_rand_index(&labels, &truth), 1.0);
    }

    #[test]
    fn silhouette_prefers_the_true_partition() {
        let (dm, truth) = two_blobs();
        let good = silhouette(&dm, &truth);
        let bad = silhouette(&dm, &[0, 1, 0, 1, 0, 1, 0, 1, 0, 1]);
        assert!(good > 0.9, "good partition silhouette {good}");
        assert!(bad < good);
    }

    #[test]
    fn ari_properties() {
        let a = vec![0, 0, 1, 1, 2, 2];
        assert_eq!(adjusted_rand_index(&a, &a), 1.0);
        // Permuted labels are the same partition.
        let permuted = vec![2, 2, 0, 0, 1, 1];
        assert_eq!(adjusted_rand_index(&a, &permuted), 1.0);
        // All-one-cluster vs the truth has expected-level agreement.
        let trivial = vec![0, 0, 0, 0, 0, 0];
        let ari = adjusted_rand_index(&a, &trivial);
        assert!(ari.abs() < 1e-9, "ari {ari}");
    }

    #[test]
    fn k_medoids_is_deterministic() {
        let (dm, _) = two_blobs();
        assert_eq!(k_medoids(&dm, 2, 50), k_medoids(&dm, 2, 50));
    }

    #[test]
    fn k_greater_than_n_is_clamped() {
        let (dm, _) = two_blobs();
        let labels = k_medoids(&dm, 100, 10);
        assert_eq!(labels.len(), 10);
        let labels = agglomerative(&dm, 100);
        assert_eq!(labels.len(), 10);
    }

    #[test]
    fn degenerate_inputs() {
        let dm = DistanceMatrix::new(0);
        assert!(k_medoids(&dm, 2, 10).is_empty());
        assert!(agglomerative(&dm, 2).is_empty());
        let dm1 = DistanceMatrix::new(1);
        assert_eq!(k_medoids(&dm1, 1, 10), vec![0]);
        assert_eq!(silhouette(&dm1, &[0]), 0.0);
        assert_eq!(adjusted_rand_index(&[0], &[0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_bad_distances() {
        let mut dm = DistanceMatrix::new(2);
        dm.set(0, 1, f64::NAN);
    }

    #[test]
    fn four_blob_recovery_with_both_algorithms() {
        let coords: Vec<f64> = (0..20)
            .map(|i| (i / 5) as f64 * 8.0 + (i % 5) as f64 * 0.2)
            .collect();
        let truth: Vec<usize> = (0..20).map(|i| i / 5).collect();
        let dm = DistanceMatrix::from_fn(20, |i, j| (coords[i] - coords[j]).abs());
        assert_eq!(adjusted_rand_index(&k_medoids(&dm, 4, 100), &truth), 1.0);
        assert_eq!(adjusted_rand_index(&agglomerative(&dm, 4), &truth), 1.0);
    }
}
