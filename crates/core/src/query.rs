//! Dynamic query subsequence generation (paper Section 4.1).
//!
//! "A stability checking strip is a window of fixed size, moving from the
//! most recent portion back to historical data. ... If the subsequence is
//! stable, the strip halts. If not, the strip will move one vertex back
//! ... until a stable subsequence is found, or there are `L_max` vertices
//! for the query subsequence. The query subsequence is from the beginning
//! vertex of the last strip to the most recent vertex."
//!
//! Consequently: "breathing with high regularity will have shorter query
//! sequences, while breathing with low regularity tends to have longer
//! query subsequences."

use crate::params::Params;
use crate::stability::is_stable;
use tsm_model::Vertex;

/// Outcome of dynamic query generation over a live vertex buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Index (into the supplied vertex slice) of the query's first vertex.
    pub start: usize,
    /// Query length in segments.
    pub len: usize,
    /// Whether the halting strip was stable (false means the strip walked
    /// back to `L_max` without finding stability).
    pub stable: bool,
    /// Stability statistic of the final strip.
    pub strip_stability: f64,
}

impl QueryOutcome {
    /// The query's vertex slice within the buffer it was generated from.
    pub fn vertices<'a>(&self, buffer: &'a [Vertex]) -> &'a [Vertex] {
        &buffer[self.start..=self.start + self.len]
    }
}

/// Generates the query subsequence from the most recent motion in
/// `vertices` (the live PLR buffer, oldest first).
///
/// The strip size is `L_min` segments (so a stable recent pattern yields
/// the minimum-length query, as in the paper's Figure 5 where
/// `L_min = 3` cycles); each backwards move grows the query by one
/// segment, up to `L_max` segments. Returns `None` when the buffer holds
/// fewer than `L_min` segments.
pub fn generate_query(vertices: &[Vertex], params: &Params) -> Option<QueryOutcome> {
    let strip = params.lmin_segments();
    let lmax = params.lmax_segments();
    let n_seg = vertices.len().checked_sub(1)?;
    if n_seg < strip || strip == 0 {
        return None;
    }
    let end = vertices.len() - 1; // index of the most recent vertex
    let max_len = lmax.min(n_seg);

    // The strip initially covers the most recent `strip` segments and
    // moves back one vertex at a time.
    let mut query_len = strip;
    loop {
        let strip_start = end - query_len; // strip = first `strip` segs of query
        let strip_vertices = &vertices[strip_start..=strip_start + strip];
        let sigma = crate::stability::stability(strip_vertices, params);
        let stable = sigma <= params.theta;
        if stable || query_len >= max_len {
            return Some(QueryOutcome {
                start: end - query_len,
                len: query_len,
                stable,
                strip_stability: sigma,
            });
        }
        query_len += 1;
    }
}

/// Fixed-length query generation — the baseline the paper compares
/// against in Figure 7a. Takes the most recent `len_segments` segments
/// regardless of stability. Returns `None` when the buffer is too short.
pub fn fixed_query(vertices: &[Vertex], len_segments: usize) -> Option<QueryOutcome> {
    let n_seg = vertices.len().checked_sub(1)?;
    if len_segments == 0 || n_seg < len_segments {
        return None;
    }
    Some(QueryOutcome {
        start: vertices.len() - 1 - len_segments,
        len: len_segments,
        stable: true,
        strip_stability: f64::NAN,
    })
}

/// Convenience re-export of [`crate::stability::is_stable`] over a query's
/// vertices.
pub fn query_is_stable(outcome: &QueryOutcome, buffer: &[Vertex], params: &Params) -> bool {
    is_stable(outcome.vertices(buffer), params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsm_model::BreathState::*;

    fn regular_cycles(n: usize, amplitude: f64) -> Vec<Vertex> {
        let mut v = Vec::new();
        let mut t = 0.0;
        for _ in 0..n {
            v.push(Vertex::new_1d(t, amplitude, Exhale));
            v.push(Vertex::new_1d(t + 1.5, 0.0, EndOfExhale));
            v.push(Vertex::new_1d(t + 2.5, 0.0, Inhale));
            t += 4.0;
        }
        v.push(Vertex::new_1d(t, amplitude, Exhale));
        v
    }

    /// Cycles whose amplitude swings wildly (unstable everywhere).
    fn erratic_cycles(n: usize) -> Vec<Vertex> {
        let mut v = Vec::new();
        let mut t = 0.0;
        for i in 0..n {
            let a = if i % 2 == 0 { 3.0 } else { 20.0 };
            let period = if i % 3 == 0 { 2.0 } else { 6.0 };
            v.push(Vertex::new_1d(t, a, Exhale));
            v.push(Vertex::new_1d(t + period * 0.4, 0.0, EndOfExhale));
            v.push(Vertex::new_1d(t + period * 0.6, 0.0, Inhale));
            t += period;
        }
        v.push(Vertex::new_1d(t, 3.0, Exhale));
        v
    }

    #[test]
    fn stable_breathing_yields_minimum_length() {
        let p = Params::default();
        let buffer = regular_cycles(12, 10.0);
        let q = generate_query(&buffer, &p).unwrap();
        assert_eq!(q.len, p.lmin_segments());
        assert!(q.stable);
        assert_eq!(q.start + q.len, buffer.len() - 1);
        assert_eq!(q.vertices(&buffer).len(), q.len + 1);
    }

    #[test]
    fn erratic_breathing_yields_maximum_length() {
        let p = Params {
            theta: 0.5, // strict, so the erratic strip never stabilizes
            ..Params::default()
        };
        let buffer = erratic_cycles(12);
        let q = generate_query(&buffer, &p).unwrap();
        assert_eq!(q.len, p.lmax_segments());
        assert!(!q.stable);
    }

    #[test]
    fn recently_stabilized_breathing_stops_at_the_transition() {
        let p = Params {
            theta: 1.0,
            ..Params::default()
        };
        // Erratic history followed by enough regular cycles for a stable
        // strip at minimum length.
        let mut buffer = erratic_cycles(6);
        let t0 = buffer.last().unwrap().time;
        let tail: Vec<Vertex> = regular_cycles(4, 10.0)
            .into_iter()
            .skip(1)
            .map(|v| Vertex::new_1d(v.time + t0, v.position[0], v.state))
            .collect();
        buffer.extend(tail);
        let q = generate_query(&buffer, &p).unwrap();
        assert!(q.stable);
        assert_eq!(q.len, p.lmin_segments(), "stable tail should halt strip");
    }

    #[test]
    fn query_always_ends_at_most_recent_vertex() {
        let p = Params::default();
        for buffer in [regular_cycles(10, 8.0), erratic_cycles(10)] {
            let q = generate_query(&buffer, &p).unwrap();
            assert_eq!(q.start + q.len, buffer.len() - 1);
            assert!(q.len >= p.lmin_segments());
            assert!(q.len <= p.lmax_segments());
        }
    }

    #[test]
    fn too_short_buffers_yield_none() {
        let p = Params::default();
        let buffer = regular_cycles(2, 10.0); // 6 segments < lmin 9
        assert_eq!(generate_query(&buffer, &p), None);
        assert_eq!(generate_query(&[], &p), None);
    }

    #[test]
    fn lmax_respects_buffer_size() {
        // Buffer shorter than lmax but longer than lmin: the query can use
        // at most what exists.
        let p = Params {
            theta: 0.0001,
            lmin_cycles: 2,
            lmax_cycles: 100,
            ..Params::default()
        };
        let buffer = erratic_cycles(5); // 15 segments
        let q = generate_query(&buffer, &p).unwrap();
        assert_eq!(q.len, 15);
        assert!(!q.stable);
    }

    #[test]
    fn fixed_query_takes_the_tail() {
        let buffer = regular_cycles(6, 10.0);
        let q = fixed_query(&buffer, 9).unwrap();
        assert_eq!(q.len, 9);
        assert_eq!(q.start + q.len, buffer.len() - 1);
        assert!(fixed_query(&buffer, 100).is_none());
        assert!(fixed_query(&buffer, 0).is_none());
    }

    #[test]
    fn smaller_theta_gives_longer_queries() {
        // Figure 7b: query length increases as the stability threshold
        // decreases.
        let buffer = {
            // Mildly wobbly breathing.
            let mut v = Vec::new();
            let mut t = 0.0;
            for i in 0..14 {
                let a = 10.0 + (i % 3) as f64 * 1.5;
                v.push(Vertex::new_1d(t, a, Exhale));
                v.push(Vertex::new_1d(t + 1.5, 0.0, EndOfExhale));
                v.push(Vertex::new_1d(t + 2.5, 0.0, Inhale));
                t += 4.0 + (i % 2) as f64 * 0.4;
            }
            v.push(Vertex::new_1d(t, 10.0, Exhale));
            v
        };
        let mut lengths = Vec::new();
        for theta in [10.0, 2.0, 0.5, 0.05] {
            let p = Params {
                theta,
                ..Params::default()
            };
            lengths.push(generate_query(&buffer, &p).unwrap().len);
        }
        assert!(
            lengths.windows(2).all(|w| w[0] <= w[1]),
            "lengths not monotone in 1/theta: {lengths:?}"
        );
        assert!(lengths.last() > lengths.first());
    }
}
