//! The subsequence search engine: retrieve all stored subsequences similar
//! to a query (paper Section 4.2).
//!
//! All four search variants — full scan, state-order-indexed,
//! feature-pruned and parallel — run on one columnar engine: the store's
//! [`tsm_db::SegmentFeatures`] snapshot supplies flat per-segment columns,
//! [`crate::similarity::WindowScorer`] scores candidate windows with early
//! abandoning against the current pruning bound, and a bounded top-k
//! collector keeps only results that can still make the cut. A naive
//! vertex-walking reference ([`Matcher::find_matches_naive`]) is kept for
//! the property tests, which assert the engine's results are *identical* —
//! same windows, bit-identical distances, same order.
//!
//! Results are totally ordered by `(distance, stream, start)`; because a
//! scan visits windows in ascending `(stream, start)` order, this matches
//! what the historical stable sort by distance produced, while giving the
//! indexed/pruned/parallel paths (which visit candidates in other orders)
//! a deterministic tie-break.

use crate::batch::{
    BatchQuery, BatchScorer, GroupResult, LaneOutcome, RescanOutcome, ScoringMode, LANES,
};
use crate::invariants;
use crate::metrics::{Counter, MetricsRegistry, SearchTally};
use crate::params::Params;
use crate::similarity::{
    online_distance, vertex_weight, QueryCols, ScoreOutcome, WindowCols, WindowScorer,
};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::sync::Arc;
use tsm_db::{
    FeatureIndex, PatientId, SharedStore, SourceRelation, StateOrderIndex, StreamFeatures,
    StreamId, StreamMeta, StreamStore, SubseqRef, SubseqView,
};
use tsm_model::{state_signature, BreathState, Vertex};

/// Safety factor on the lower-bound pruning bands: query-side summaries
/// are forward f64 sums while candidate summaries come from prefix-sum
/// subtractions, so the two can disagree by a few ULPs per term. Inflating
/// the admissible band by 1e-9 (relative) guarantees no true match is ever
/// pruned (n ≤ 60 terms keeps the real discrepancy orders of magnitude
/// smaller).
const BAND_MARGIN: f64 = 1.0 + 1e-9;

/// A query subsequence, detached from the store (online queries come from
/// the live stream, which may not have been persisted yet).
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySubseq {
    /// The query's vertices (`len + 1` of them for `len` segments).
    pub vertices: Vec<Vertex>,
    /// Provenance of the query, if known: `(patient, session)`. Drives the
    /// source weight of every candidate; `None` treats every candidate as
    /// coming from another patient.
    pub origin: Option<(PatientId, u32)>,
    /// The stream the query was cut from, if any — candidates overlapping
    /// the query's own window in that stream are excluded (a query always
    /// matches itself perfectly; that tells us nothing).
    pub origin_stream: Option<StreamId>,
}

impl QuerySubseq {
    /// Builds a query from a detached vertex buffer.
    pub fn new(vertices: Vec<Vertex>) -> Self {
        QuerySubseq {
            vertices,
            origin: None,
            origin_stream: None,
        }
    }

    /// Builds a query from a stored subsequence view (used by offline
    /// analysis and the experiments).
    pub fn from_view(view: &SubseqView) -> Self {
        let meta = view.stream().meta;
        QuerySubseq {
            vertices: view.vertices().to_vec(),
            origin: Some((meta.patient, meta.session)),
            origin_stream: Some(meta.id),
        }
    }

    /// Attaches provenance.
    pub fn with_origin(mut self, patient: PatientId, session: u32) -> Self {
        self.origin = Some((patient, session));
        self
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.vertices.len().saturating_sub(1)
    }

    /// Whether the query holds no segments.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The query's state order.
    pub fn states(&self) -> Vec<BreathState> {
        if self.vertices.len() < 2 {
            return Vec::new();
        }
        self.vertices[..self.vertices.len() - 1]
            .iter()
            .map(|v| v.state)
            .collect()
    }

    /// Packed state-order signature.
    pub fn signature(&self) -> Option<u128> {
        state_signature(self.states())
    }
}

/// One retrieved similar subsequence.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchResult {
    /// Reference to the matched subsequence.
    pub subseq: SubseqRef,
    /// Weighted distance to the query (Definition 2).
    pub distance: f64,
    /// Source weight of this candidate (also the prediction weight of
    /// Section 4.3).
    pub ws: f64,
    /// Provenance tier of this candidate.
    pub relation: SourceRelation,
}

/// The total result order: by distance, ties broken by `(stream, start)`.
/// Equal to the historical "stable sort by distance over scan order", and
/// shared by every search variant.
fn cmp_results(a: &MatchResult, b: &MatchResult) -> Ordering {
    a.distance
        .total_cmp(&b.distance)
        .then_with(|| a.subseq.stream.0.cmp(&b.subseq.stream.0))
        .then_with(|| a.subseq.start.cmp(&b.subseq.start))
}

/// Heap adapter: max-heap by [`cmp_results`], so the *worst* retained
/// result sits on top and is evicted first.
#[derive(Debug)]
struct Ranked(MatchResult);

impl PartialEq for Ranked {
    fn eq(&self, other: &Self) -> bool {
        cmp_results(&self.0, &other.0) == Ordering::Equal
    }
}
impl Eq for Ranked {}
impl PartialOrd for Ranked {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ranked {
    fn cmp(&self, other: &Self) -> Ordering {
        cmp_results(&self.0, &other.0)
    }
}

/// Accumulates results under the δ threshold and (optionally) a top-k cap.
///
/// With a cap, a bounded max-heap holds the best `k` seen so far and
/// [`Collector::bound`] exposes the current k-th best distance — feeding it
/// back into [`WindowScorer::score_window`] lets the scorer abandon any
/// window that provably cannot enter the heap. Ties at the bound are *not*
/// abandoned (the scorer's margin guarantees that), so a later candidate
/// with equal distance but better `(stream, start)` tie-break still gets
/// compared exactly.
#[derive(Debug)]
struct Collector {
    delta: f64,
    cap: Option<usize>,
    heap: BinaryHeap<Ranked>,
    all: Vec<MatchResult>,
}

impl Collector {
    fn new(delta: f64, cap: Option<usize>) -> Self {
        Collector {
            delta,
            cap,
            heap: BinaryHeap::new(),
            all: Vec::new(),
        }
    }

    /// The current pruning bound: no window with distance provably above
    /// it can affect the final result set.
    fn bound(&self) -> f64 {
        match self.cap {
            Some(k) if k > 0 && self.heap.len() >= k => self
                .heap
                .peek()
                .map(|w| w.0.distance.min(self.delta))
                .unwrap_or(self.delta),
            _ => self.delta,
        }
    }

    /// Pre-reserves room for `n` more unbounded results (top-k capped
    /// collections size their heap by `k` already). Survivor counts give
    /// the batched scan a per-stream upper bound, turning result-vector
    /// growth into a handful of amortized reservations.
    fn reserve(&mut self, n: usize) {
        if self.cap.is_none() {
            self.all.reserve(n);
        }
    }

    fn push(&mut self, m: MatchResult) {
        match self.cap {
            None => self.all.push(m),
            Some(0) => {}
            Some(k) => {
                if self.heap.len() < k {
                    self.heap.push(Ranked(m));
                } else if let Some(worst) = self.heap.peek() {
                    if cmp_results(&m, &worst.0) == Ordering::Less {
                        self.heap.pop();
                        self.heap.push(Ranked(m));
                    }
                }
            }
        }
        invariants::heap_bounded(self.heap.len(), self.cap);
    }

    fn into_vec(self) -> Vec<MatchResult> {
        let mut v = self.all;
        v.extend(self.heap.into_iter().map(|r| r.0));
        v
    }
}

/// Search restrictions.
#[derive(Debug, Clone, Default)]
pub struct SearchOptions {
    /// Only consider candidates from these patients (the clustering
    /// application of Section 5.3: "subsequence similarity matching will
    /// only retrieve subsequences from the same cluster").
    pub restrict_patients: Option<HashSet<PatientId>>,
    /// Keep only the `k` nearest matches (by distance). `None` keeps all
    /// matches within δ.
    pub top_k: Option<usize>,
    /// Override the distance threshold δ for this search.
    pub delta_override: Option<f64>,
    /// Which scoring tier to use. The default ([`ScoringMode::Auto`])
    /// resolves once per process; results are bit-identical either way —
    /// the batched f32 tier only *prunes*, and every survivor is
    /// re-scored by the exact f64 scorer.
    pub scoring: ScoringMode,
}

/// One search's worth of immutable context: the query's columns, the
/// effective δ, and the provenance/overlap data every candidate is
/// checked against. Shared by all four search variants (and across the
/// parallel workers — it is `Sync`).
struct Engine<'a> {
    params: &'a Params,
    query: &'a QuerySubseq,
    options: &'a SearchOptions,
    cols: QueryCols,
    n: usize,
    delta: f64,
    q_first: f64,
    q_last: f64,
    /// The batched f32 pruning tier, when this search uses it. `None`
    /// under [`ScoringMode::Scalar`], or when the query cannot be
    /// narrowed (spatial metric, non-finite f32 values).
    batch: Option<BatchQuery>,
}

impl<'a> Engine<'a> {
    fn new(
        matcher: &'a Matcher,
        query: &'a QuerySubseq,
        options: &'a SearchOptions,
    ) -> Option<Self> {
        let cols = QueryCols::build(&query.vertices, &matcher.params)?;
        let n = cols.len();
        let q_first = query.vertices.first()?.time;
        let q_last = query.vertices.last()?.time;
        let batch = if options.scoring.use_batched() {
            BatchQuery::build(&cols, &matcher.params)
        } else {
            None
        };
        Some(Engine {
            params: &matcher.params,
            query,
            options,
            cols,
            n,
            delta: options.delta_override.unwrap_or(matcher.params.delta),
            q_first,
            q_last,
            batch,
        })
    }

    fn collector(&self) -> Collector {
        Collector::new(self.delta, self.options.top_k)
    }

    fn allows(&self, patient: PatientId) -> bool {
        self.options
            .restrict_patients
            .as_ref()
            .is_none_or(|s| s.contains(&patient))
    }

    fn relation(&self, meta: &StreamMeta) -> SourceRelation {
        match self.query.origin {
            Some((patient, session)) => {
                if patient != meta.patient {
                    SourceRelation::OtherPatient
                } else if session != meta.session {
                    SourceRelation::SamePatient
                } else {
                    SourceRelation::SameSession
                }
            }
            None => SourceRelation::OtherPatient,
        }
    }

    /// Whether the window at `start` overlaps the query's own window in
    /// its origin stream.
    fn overlaps_query(&self, sf: &StreamFeatures, start: usize) -> bool {
        if self.query.origin_stream != Some(sf.meta.id) {
            return false;
        }
        let c_first = sf.times[start];
        let c_last = sf.times[start + self.n];
        c_last > self.q_first && c_first < self.q_last
    }

    /// Scores one candidate window and offers it to the collector. The
    /// tally is plain per-search scratch (flushed to the metrics registry
    /// once per search), so the hot loop never touches an atomic.
    #[allow(clippy::too_many_arguments)]
    fn score_window_at(
        &self,
        sf: &StreamFeatures,
        start: usize,
        relation: SourceRelation,
        ws: f64,
        scorer: &mut WindowScorer,
        coll: &mut Collector,
        tally: &mut SearchTally,
    ) {
        if self.overlaps_query(sf, start) {
            return;
        }
        let end = start + self.n;
        let cand = WindowCols {
            states: &sf.states[start..end],
            disp: &sf.disp[start..end],
            dvec: &sf.dvec[start..end],
            dur: &sf.dur[start..end],
        };
        match scorer.score_window_outcome(&self.cols, cand, self.params, ws, coll.bound()) {
            ScoreOutcome::StateMismatch => {
                tally.windows_state_mismatch += 1;
            }
            ScoreOutcome::Abandoned => {
                tally.windows_scored += 1;
                tally.windows_abandoned += 1;
            }
            ScoreOutcome::Scored(d) => {
                tally.windows_scored += 1;
                tally.windows_completed += 1;
                if d <= self.delta {
                    coll.push(MatchResult {
                        subseq: SubseqRef::new(sf.meta.id, start, self.n),
                        distance: d,
                        ws,
                        relation,
                    });
                }
            }
        }
    }

    /// Whether a stream's windows may go through the batched f32 tier:
    /// the tier must be on, the stream's mirror must be finite, and the
    /// query's own stream stays scalar (its overlap exclusion is handled
    /// inside [`Engine::score_window_at`], which the kernel bypasses).
    fn stream_batchable(&self, sf: &StreamFeatures) -> bool {
        self.batch.is_some() && sf.mirror32.finite && self.query.origin_stream != Some(sf.meta.id)
    }

    /// Scans every window of the given streams (the per-worker unit of the
    /// parallel path).
    fn scan_streams(
        &self,
        streams: &[Arc<StreamFeatures>],
        scorer: &mut WindowScorer,
        coll: &mut Collector,
        tally: &mut SearchTally,
    ) {
        let mut batcher = BatchScorer::new();
        let mut starts: Vec<usize> = Vec::new();
        let mut survivors: Vec<usize> = Vec::new();
        for sf in streams {
            if !self.allows(sf.meta.patient) {
                continue;
            }
            let nseg = sf.num_segments();
            if nseg < self.n {
                continue;
            }
            let relation = self.relation(&sf.meta);
            let ws = self.params.ws(relation);
            if self.stream_batchable(sf) {
                self.scan_stream_batched(
                    &mut batcher,
                    &mut starts,
                    &mut survivors,
                    sf,
                    relation,
                    ws,
                    coll,
                    tally,
                );
            } else {
                for start in 0..=(nseg - self.n) {
                    self.score_window_at(sf, start, relation, ws, scorer, coll, tally);
                }
            }
        }
    }

    /// Scans one stream through the batched kernel: the whole-stream
    /// state gate first rejects every misaligned window in one
    /// vectorized pass, the surviving starts go through the f32 lane
    /// kernel in groups of up to [`LANES`], and the f32 survivors are
    /// finally re-scored in exact f64 — also [`LANES`] at a time, via
    /// [`BatchScorer::rescore_exact`] — so no per-window call overhead
    /// remains anywhere on the path. `starts_buf` and `surv_buf` are
    /// caller scratch, reused across streams.
    ///
    /// The stream is never the query's own (see
    /// [`Engine::stream_batchable`]), so the overlap exclusion the
    /// scalar [`Engine::score_window_at`] performs is vacuous here.
    #[allow(clippy::too_many_arguments)]
    fn scan_stream_batched(
        &self,
        batcher: &mut BatchScorer,
        starts_buf: &mut Vec<usize>,
        surv_buf: &mut Vec<usize>,
        sf: &StreamFeatures,
        relation: SourceRelation,
        ws: f64,
        coll: &mut Collector,
        tally: &mut SearchTally,
    ) {
        // lint:allow(no-unwrap-in-lib): callers dispatch here only when
        // the resolved mode is Batched, which requires a built batch query
        let bq = self.batch.as_ref().expect("batched scan without a query");
        let total = sf.num_segments() - self.n + 1;
        let mask = batcher.match_mask(bq, sf);
        starts_buf.clear();
        starts_buf.extend((0..total).filter(|&j| mask[j] == 0));
        tally.windows_state_mismatch += (total - starts_buf.len()) as u64;
        if starts_buf.is_empty() {
            return;
        }
        // One shared limit and one kernel sweep per stream. The bound is
        // sampled once per stream rather than per group; a stale (looser)
        // bound only prunes less, and the exact rescans below make every
        // final accept/reject decision, so results are unaffected.
        tally.batch_groups_scored += starts_buf.len().div_ceil(LANES) as u64;
        let limit = bq.stream_limit(sf, ws, coll.bound());
        surv_buf.clear();
        let pruned = batcher.collect_survivors(bq, sf, starts_buf, limit, surv_buf);
        // One tally update per stream, not per pruned lane.
        tally.windows_scored += pruned;
        tally.windows_abandoned += pruned;
        tally.batch_lanes_abandoned += pruned;
        tally.f32_prune_rescans += surv_buf.len() as u64;
        coll.reserve(surv_buf.len());
        for chunk in surv_buf.chunks(LANES) {
            let outs = batcher.rescore_exact(&self.cols, self.params, sf, chunk, ws, coll.bound());
            for (l, &start) in chunk.iter().enumerate() {
                match outs[l] {
                    RescanOutcome::Inactive => {
                        debug_assert!(false, "inactive lane inside the survivor count");
                    }
                    RescanOutcome::Abandoned => {
                        tally.windows_scored += 1;
                        tally.windows_abandoned += 1;
                    }
                    RescanOutcome::Scored(d) => {
                        tally.windows_scored += 1;
                        tally.windows_completed += 1;
                        if d <= self.delta {
                            coll.push(MatchResult {
                                subseq: SubseqRef::new(sf.meta.id, start, self.n),
                                distance: d,
                                ws,
                                relation,
                            });
                        }
                    }
                }
            }
        }
    }

    /// Applies one group's lane outcomes: prunes are tallied, survivors
    /// are re-scored by the exact f64 scorer (which also pushes any
    /// result), keeping the scalar balance equation
    /// `windows_scored == windows_abandoned + windows_completed` intact.
    #[allow(clippy::too_many_arguments)]
    fn consume_group(
        &self,
        g: &GroupResult,
        sf: &StreamFeatures,
        starts: &[usize],
        relation: SourceRelation,
        ws: f64,
        scorer: &mut WindowScorer,
        coll: &mut Collector,
        tally: &mut SearchTally,
    ) {
        tally.batch_groups_scored += 1;
        let mut pruned = 0u64;
        for (l, &start) in starts.iter().enumerate() {
            match g.lanes[l] {
                LaneOutcome::Inactive => {
                    debug_assert!(false, "inactive lane inside the candidate count");
                }
                LaneOutcome::Pruned => pruned += 1,
                LaneOutcome::Survivor => {
                    tally.f32_prune_rescans += 1;
                    self.score_window_at(sf, start, relation, ws, scorer, coll, tally);
                }
            }
        }
        // One tally update per group, not per pruned lane.
        tally.windows_scored += pruned;
        tally.windows_abandoned += pruned;
        tally.batch_lanes_abandoned += pruned;
    }

    /// Scores the candidates the indexed path deferred for batching:
    /// same-stream runs become lane groups of up to [`LANES`], f32-pruned
    /// against the current bound, and survivors are re-scored exactly.
    /// `cands` must already be grouped by stream (the state-order index
    /// yields that order) and every candidate must match the query's
    /// state order (the index is keyed by state signature, so that holds
    /// by construction).
    fn score_deferred_batched(
        &self,
        cands: &[(&Arc<StreamFeatures>, usize)],
        scorer: &mut WindowScorer,
        coll: &mut Collector,
        tally: &mut SearchTally,
    ) {
        if cands.is_empty() {
            return;
        }
        // lint:allow(no-unwrap-in-lib): callers dispatch here only when
        // the resolved mode is Batched, which requires a built batch query
        let bq = self.batch.as_ref().expect("batched flush without a query");
        let mut batcher = BatchScorer::new();
        let mut starts = [0usize; LANES];
        let mut i = 0usize;
        while i < cands.len() {
            let sf = cands[i].0;
            let relation = self.relation(&sf.meta);
            let ws = self.params.ws(relation);
            let mut cnt = 0usize;
            while i < cands.len() && cnt < LANES && cands[i].0.meta.id == sf.meta.id {
                starts[cnt] = cands[i].1;
                cnt += 1;
                i += 1;
            }
            let g = batcher.score_starts(bq, sf, &starts[..cnt], ws, coll.bound());
            self.consume_group(&g, sf, &starts[..cnt], relation, ws, scorer, coll, tally);
        }
    }

    /// Scores band-qualified deferred candidates with the batched exact
    /// rescorer alone, skipping the f32 tier: amplitude/duration band
    /// survivors are already plausible matches, so the f32 pass mostly
    /// fails to prune and would only add its own cost on top of the
    /// exact scoring it cannot avoid. `cands` must be grouped by stream
    /// and state-gated, as in [`Engine::score_deferred_batched`].
    fn score_deferred_exact(
        &self,
        cands: &[(&Arc<StreamFeatures>, usize)],
        coll: &mut Collector,
        tally: &mut SearchTally,
    ) {
        if cands.is_empty() {
            return;
        }
        let mut batcher = BatchScorer::new();
        let mut starts = [0usize; LANES];
        let mut i = 0usize;
        while i < cands.len() {
            let sf = cands[i].0;
            let relation = self.relation(&sf.meta);
            let ws = self.params.ws(relation);
            let mut cnt = 0usize;
            while i < cands.len() && cnt < LANES && cands[i].0.meta.id == sf.meta.id {
                starts[cnt] = cands[i].1;
                cnt += 1;
                i += 1;
            }
            let outs = batcher.rescore_exact(
                &self.cols,
                self.params,
                sf,
                &starts[..cnt],
                ws,
                coll.bound(),
            );
            for (l, &start) in starts[..cnt].iter().enumerate() {
                match outs[l] {
                    RescanOutcome::Inactive => {
                        debug_assert!(false, "inactive lane inside the candidate count");
                    }
                    RescanOutcome::Abandoned => {
                        tally.windows_scored += 1;
                        tally.windows_abandoned += 1;
                    }
                    RescanOutcome::Scored(d) => {
                        tally.windows_scored += 1;
                        tally.windows_completed += 1;
                        if d <= self.delta {
                            coll.push(MatchResult {
                                subseq: SubseqRef::new(sf.meta.id, start, self.n),
                                distance: d,
                                ws,
                                relation,
                            });
                        }
                    }
                }
            }
        }
    }
}

/// The matcher: a store handle plus parameters.
///
/// ```
/// use tsm_core::{Matcher, Params, QuerySubseq};
/// use tsm_db::{PatientAttributes, StreamStore, SubseqRef};
/// use tsm_model::{BreathState::*, PlrTrajectory, Vertex};
///
/// // Two identical 4-cycle streams for one patient.
/// let store = StreamStore::new();
/// let patient = store.add_patient(PatientAttributes::new());
/// for session in 0..2 {
///     let mut v = Vec::new();
///     for c in 0..4 {
///         let t = c as f64 * 4.0;
///         v.push(Vertex::new_1d(t, 10.0, Exhale));
///         v.push(Vertex::new_1d(t + 1.5, 0.0, EndOfExhale));
///         v.push(Vertex::new_1d(t + 2.5, 0.0, Inhale));
///     }
///     v.push(Vertex::new_1d(16.0, 10.0, Exhale));
///     store.add_stream(patient, session, PlrTrajectory::from_vertices(v).unwrap(), 480);
/// }
///
/// // Query: the first cycle of stream 0.
/// let view = store.resolve(SubseqRef::new(tsm_db::StreamId(0), 0, 3)).unwrap();
/// let query = QuerySubseq::from_view(&view);
/// let matches = Matcher::new(store, Params::default()).find_matches(&query);
/// assert!(!matches.is_empty());
/// assert!(matches.iter().all(|m| m.distance <= Params::default().delta));
/// ```
#[derive(Debug, Clone)]
pub struct Matcher {
    store: SharedStore,
    params: Params,
    metrics: MetricsRegistry,
}

impl Matcher {
    /// Creates a matcher over a store. Accepts either a bare
    /// [`StreamStore`] (wrapped into a [`SharedStore`] once) or an
    /// existing shared handle — pass `shared.clone()` to let several
    /// matchers, caches and session runtimes search the same database
    /// without re-wrapping.
    pub fn new(store: impl Into<SharedStore>, params: Params) -> Self {
        Matcher {
            store: store.into(),
            params,
            metrics: MetricsRegistry::disabled(),
        }
    }

    /// Attaches a metrics registry: every search accounts its work there.
    /// The default is a disabled registry, which costs nothing.
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = metrics;
        self
    }

    /// The attached metrics registry (disabled unless
    /// [`Matcher::with_metrics`] was used).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// A fork of this matcher recording into its own registry: same store
    /// handle (an `Arc` clone — both forks observe the same version
    /// counter), same parameters, but independent metrics, so a shard
    /// worker stops bumping counter cachelines shared with its siblings.
    /// Fold the fork's work back with
    /// [`MetricsRegistry::absorb`](crate::metrics::MetricsRegistry::absorb).
    pub fn fork_with_metrics(&self, metrics: MetricsRegistry) -> Self {
        Matcher {
            store: self.store.clone(),
            params: self.params.clone(),
            metrics,
        }
    }

    /// The parameters in use.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The underlying store handle.
    pub fn store(&self) -> &StreamStore {
        &self.store
    }

    /// The shared store handle (an `Arc` clone — never a data copy), for
    /// threading the same database into another component.
    pub fn shared_store(&self) -> SharedStore {
        self.store.clone()
    }

    /// Finds all similar subsequences with default options.
    pub fn find_matches(&self, query: &QuerySubseq) -> Vec<MatchResult> {
        self.find_matches_with(query, &SearchOptions::default())
    }

    /// Finds all similar subsequences: every stored window with the
    /// query's state order and weighted distance ≤ δ, sorted by distance
    /// (ties by stream, then start). Runs on the columnar engine; results
    /// are identical to [`Matcher::find_matches_naive`].
    pub fn find_matches_with(
        &self,
        query: &QuerySubseq,
        options: &SearchOptions,
    ) -> Vec<MatchResult> {
        if options.top_k == Some(0) {
            return Vec::new();
        }
        let Some(engine) = Engine::new(self, query, options) else {
            return Vec::new();
        };
        let features = self.store.segment_features(self.params.axis);
        invariants::features_snapshot_coherent(&features);
        let mut scorer = WindowScorer::new();
        let mut coll = engine.collector();
        let mut tally = SearchTally::default();
        engine.scan_streams(features.streams(), &mut scorer, &mut coll, &mut tally);
        self.metrics.incr(Counter::Searches);
        self.metrics.record_search(&tally);
        let mut out = coll.into_vec();
        Self::finish(&mut out, options);
        out
    }

    /// Reference implementation: the naive vertex-walking scan over
    /// [`SubseqView`]s, with no columnar features, no early abandoning and
    /// no bounded collection. Every other variant is property-tested to
    /// return exactly its output. Kept simple on purpose — do not optimize.
    pub fn find_matches_naive(
        &self,
        query: &QuerySubseq,
        options: &SearchOptions,
    ) -> Vec<MatchResult> {
        let n = query.len();
        if n == 0 {
            return Vec::new();
        }
        let delta = options.delta_override.unwrap_or(self.params.delta);
        let mut out = Vec::new();
        for stream in self.store.streams() {
            if let Some(allowed) = &options.restrict_patients {
                if !allowed.contains(&stream.meta.patient) {
                    continue;
                }
            }
            let nseg = stream.plr.num_segments();
            if nseg < n {
                continue;
            }
            for start in 0..=(nseg - n) {
                let r = SubseqRef::new(stream.meta.id, start, n);
                let Some(view) = SubseqView::new(stream.clone(), r) else {
                    continue;
                };
                if let Some(m) = self.score_candidate(query, &view, delta) {
                    out.push(m);
                }
            }
        }
        Self::finish(&mut out, options);
        out
    }

    /// Index-accelerated variant: candidate enumeration via a prebuilt
    /// [`StateOrderIndex`] of the query's length; scoring via the columnar
    /// engine. Results are identical to [`Matcher::find_matches_with`].
    pub fn find_matches_indexed(
        &self,
        query: &QuerySubseq,
        index: &StateOrderIndex,
        options: &SearchOptions,
    ) -> Vec<MatchResult> {
        let n = query.len();
        if n == 0 || index.len() != n {
            return Vec::new();
        }
        if options.top_k == Some(0) {
            return Vec::new();
        }
        let Some(sig) = query.signature() else {
            return self.find_matches_with(query, options);
        };
        let Some(engine) = Engine::new(self, query, options) else {
            return Vec::new();
        };
        let features = self.store.segment_features(self.params.axis);
        invariants::features_snapshot_coherent(&features);
        let mut scorer = WindowScorer::new();
        let mut coll = engine.collector();
        let mut tally = SearchTally::default();
        // Batchable candidates are deferred into stream-grouped lane
        // groups (the index yields them grouped by stream in ascending
        // start order already); the rest are scored scalar in place.
        let mut deferred: Vec<(&Arc<StreamFeatures>, usize)> = Vec::new();
        for r in index.candidates(sig) {
            tally.bucket_candidates += 1;
            let Some(sf) = features.stream(r.stream) else {
                continue;
            };
            if !engine.allows(sf.meta.patient) {
                continue;
            }
            let start = r.start as usize;
            if start + n > sf.num_segments() {
                continue;
            }
            if engine.stream_batchable(sf) {
                deferred.push((sf, start));
                continue;
            }
            let relation = engine.relation(&sf.meta);
            let ws = self.params.ws(relation);
            engine.score_window_at(sf, start, relation, ws, &mut scorer, &mut coll, &mut tally);
        }
        engine.score_deferred_batched(&deferred, &mut scorer, &mut coll, &mut tally);
        self.metrics.incr(Counter::Searches);
        self.metrics.record_search(&tally);
        let mut out = coll.into_vec();
        Self::finish(&mut out, options);
        out
    }

    /// Parallel scan: splits the feature snapshot's streams over `threads`
    /// crossbeam workers, each with its own scorer and bounded top-k
    /// collector; the locally-collected results are merged with one final
    /// sort + truncation. Results are identical to
    /// [`Matcher::find_matches_with`] — a worker's local k-th best is
    /// always ≥ the global k-th best, so per-worker abandoning never drops
    /// a global top-k member. A panicked worker is contained: its chunk is
    /// rescanned serially instead of poisoning the whole search.
    pub fn find_matches_parallel(
        &self,
        query: &QuerySubseq,
        options: &SearchOptions,
        threads: usize,
    ) -> Vec<MatchResult> {
        if options.top_k == Some(0) {
            return Vec::new();
        }
        let Some(engine) = Engine::new(self, query, options) else {
            return Vec::new();
        };
        let features = self.store.segment_features(self.params.axis);
        invariants::features_snapshot_coherent(&features);
        let streams = features.streams();
        // Oversubscribing physical cores only adds spawn/join overhead —
        // the workers are pure CPU with no blocking — so cap the worker
        // count at the host's available parallelism. On a single-core host
        // this degenerates to the serial (batched) scan.
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(usize::MAX);
        let threads = threads.max(1).min(streams.len().max(1)).min(cores);
        if threads <= 1 {
            return self.find_matches_with(query, options);
        }
        let chunk = streams.len().div_ceil(threads);
        let chunks: Vec<&[Arc<StreamFeatures>]> = streams.chunks(chunk).collect();
        let engine = &engine;
        let metrics = &self.metrics;
        let mut out: Vec<MatchResult> = Vec::new();
        let merged = &mut out;
        let scoped = crossbeam::thread::scope(move |scope| {
            let mut handles = Vec::with_capacity(chunks.len());
            for c in &chunks {
                let c = *c;
                handles.push((
                    c,
                    scope.spawn(move |_| {
                        let mut scorer = WindowScorer::new();
                        let mut coll = engine.collector();
                        let mut tally = SearchTally::default();
                        engine.scan_streams(c, &mut scorer, &mut coll, &mut tally);
                        (coll.into_vec(), tally)
                    }),
                ));
            }
            let mut tally = SearchTally::default();
            for (c, h) in handles {
                match h.join() {
                    Ok((local, t)) => {
                        merged.extend(local);
                        tally.merge(&t);
                    }
                    Err(_) => {
                        // Contain the panic: redo this chunk serially.
                        // The dead worker's partial tally is lost with it,
                        // so only this rescan is accounted.
                        let mut scorer = WindowScorer::new();
                        let mut coll = engine.collector();
                        let mut t = SearchTally::default();
                        engine.scan_streams(c, &mut scorer, &mut coll, &mut t);
                        merged.extend(coll.into_vec());
                        tally.merge(&t);
                    }
                }
            }
            metrics.record_search(&tally);
        });
        if scoped.is_err() {
            // The scope itself failed (a detached panic escaped joining):
            // fall back to the serial engine for a correct result.
            out.clear();
            let mut scorer = WindowScorer::new();
            let mut coll = engine.collector();
            let mut tally = SearchTally::default();
            engine.scan_streams(streams, &mut scorer, &mut coll, &mut tally);
            self.metrics.record_search(&tally);
            out = coll.into_vec();
        }
        self.metrics.incr(Counter::Searches);
        Self::finish(&mut out, options);
        out
    }

    /// Feature-index search with lower-bound pruning: candidates outside
    /// the amplitude-summary *or* duration-summary band provably cannot be
    /// within δ and are skipped before their features are touched; band
    /// survivors are scored by the early-abandoning columnar engine.
    /// Results are identical to [`Matcher::find_matches_with`]
    /// (property-tested).
    ///
    /// The bounds: the per-segment-normalized distance satisfies
    /// `d ≥ wa · wi_base · |S_q − S_c| / (Σwi · ws)` and
    /// `d ≥ wf · wi_base · |T_q − T_c| / (Σwi · ws)`, so only candidates
    /// with `|S_q − S_c| ≤ δ · Σwi / (wa · wi_base)` **and**
    /// `|T_q − T_c| ≤ δ · Σwi / (wf · wi_base)` need exact scoring
    /// (`ws ≤ 1`; each survivor is then scored with its actual `ws`).
    pub fn find_matches_pruned(
        &self,
        query: &QuerySubseq,
        index: &FeatureIndex,
        options: &SearchOptions,
    ) -> Vec<MatchResult> {
        let n = query.len();
        if n == 0 || index.len() != n || index.axis() != self.params.axis {
            return Vec::new();
        }
        if options.top_k == Some(0) {
            return Vec::new();
        }
        let Some(sig) = query.signature() else {
            return self.find_matches_with(query, options);
        };
        let Some(engine) = Engine::new(self, query, options) else {
            return Vec::new();
        };
        let q_amp_sum: f64 = engine.cols.disp.iter().map(|d| d.abs()).sum();
        let q_duration = engine.q_last - engine.q_first;
        let wi_base = self.params.wi_base.max(f64::MIN_POSITIVE);
        let amp_band = if self.params.wa > 0.0 {
            engine.delta * engine.cols.wsum / (self.params.wa * wi_base) * BAND_MARGIN
        } else {
            f64::INFINITY
        };
        let dur_band = if self.params.wf > 0.0 {
            engine.delta * engine.cols.wsum / (self.params.wf * wi_base) * BAND_MARGIN
        } else {
            f64::INFINITY
        };
        let features = self.store.segment_features(self.params.axis);
        invariants::features_snapshot_coherent(&features);
        let mut scorer = WindowScorer::new();
        let mut coll = engine.collector();
        let mut tally = SearchTally::default();
        let (band, counts) =
            index.candidates_in_band_counted(sig, q_amp_sum, amp_band, q_duration, dur_band);
        tally.bucket_candidates += counts.bucket as u64;
        tally.amp_band_candidates += counts.amp_band as u64;
        // Band entries arrive sorted by amplitude summary, interleaving
        // streams; batchable candidates are deferred and regrouped into
        // dense per-stream lane runs below (results are order-independent
        // — only the bound's tightening path differs, and `finish` orders
        // the output).
        let mut deferred: Vec<(&Arc<StreamFeatures>, usize)> = Vec::new();
        for e in band {
            tally.dur_band_candidates += 1;
            let Some(sf) = features.stream(e.stream) else {
                continue;
            };
            if !engine.allows(sf.meta.patient) {
                continue;
            }
            let start = e.subseq.start as usize;
            if start + n > sf.num_segments() {
                continue;
            }
            invariants::band_candidate_admissible(
                e, sf, start, n, q_amp_sum, amp_band, q_duration, dur_band,
            );
            if engine.stream_batchable(sf) {
                deferred.push((sf, start));
                continue;
            }
            let relation = engine.relation(&sf.meta);
            let ws = self.params.ws(relation);
            engine.score_window_at(sf, start, relation, ws, &mut scorer, &mut coll, &mut tally);
        }
        // Counting sort keyed on the (small, dense) stream id: at band
        // selectivities of a few thousand candidates, a comparison sort
        // costs as much as the exact scoring it enables, while this
        // grouping pass is ~10x cheaper. Within-stream order stays the
        // band's amplitude order, which is fine — lanes are independent.
        if deferred.len() > 1 {
            let max_id = deferred
                .iter()
                .map(|(sf, _)| sf.meta.id.0 as usize)
                .max()
                .unwrap_or(0);
            let mut slots = vec![0u32; max_id + 2];
            for (sf, _) in &deferred {
                slots[sf.meta.id.0 as usize + 1] += 1;
            }
            for i in 1..slots.len() {
                slots[i] += slots[i - 1];
            }
            let mut grouped = vec![deferred[0]; deferred.len()];
            for &(sf, start) in &deferred {
                let id = sf.meta.id.0 as usize;
                grouped[slots[id] as usize] = (sf, start);
                slots[id] += 1;
            }
            deferred = grouped;
        }
        engine.score_deferred_exact(&deferred, &mut coll, &mut tally);
        self.metrics.incr(Counter::Searches);
        self.metrics.record_search(&tally);
        let mut out = coll.into_vec();
        Self::finish(&mut out, options);
        out
    }

    /// Scores one candidate for the naive reference path. Patient
    /// restriction is applied at the stream level by the caller.
    fn score_candidate(
        &self,
        query: &QuerySubseq,
        view: &SubseqView,
        delta: f64,
    ) -> Option<MatchResult> {
        let meta = view.stream().meta;
        // Exclude candidates overlapping the query's own window.
        if query.origin_stream == Some(meta.id) {
            let q_first = query.vertices.first()?.time;
            let q_last = query.vertices.last()?.time;
            let c_first = view.first_vertex().time;
            let c_last = view.last_vertex().time;
            if c_last > q_first && c_first < q_last {
                return None;
            }
        }
        let relation = match query.origin {
            Some((patient, session)) => {
                if patient != meta.patient {
                    SourceRelation::OtherPatient
                } else if session != meta.session {
                    SourceRelation::SamePatient
                } else {
                    SourceRelation::SameSession
                }
            }
            None => SourceRelation::OtherPatient,
        };
        let d = online_distance(&query.vertices, view.vertices(), &self.params, relation)?;
        if d > delta {
            return None;
        }
        Some(MatchResult {
            subseq: view.subseq_ref(),
            distance: d,
            ws: self.params.ws(relation),
            relation,
        })
    }

    /// The admissible amplitude band half-width for a query (exposed for
    /// diagnostics/benches): `δ · Σwi / (wa · wi_base)`.
    pub fn amp_band(&self, query_len: usize, delta: f64) -> f64 {
        let wi_sum: f64 = (0..query_len)
            .map(|i| vertex_weight(&self.params, i, query_len))
            .sum();
        let wa = self.params.wa.max(f64::MIN_POSITIVE);
        let wi_base = self.params.wi_base.max(f64::MIN_POSITIVE);
        delta * wi_sum / (wa * wi_base)
    }

    fn finish(out: &mut Vec<MatchResult>, options: &SearchOptions) {
        out.sort_by(cmp_results);
        if let Some(k) = options.top_k {
            out.truncate(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsm_db::PatientAttributes;
    use tsm_model::{PlrTrajectory, Vertex};
    use BreathState::*;

    /// A PLR stream of `n` cycles with the given amplitude.
    fn plr(n: usize, amplitude: f64) -> PlrTrajectory {
        let mut v = Vec::new();
        let mut t = 0.0;
        for _ in 0..n {
            v.push(Vertex::new_1d(t, amplitude, Exhale));
            v.push(Vertex::new_1d(t + 1.5, 0.0, EndOfExhale));
            v.push(Vertex::new_1d(t + 2.5, 0.0, Inhale));
            t += 4.0;
        }
        v.push(Vertex::new_1d(t, amplitude, Exhale));
        PlrTrajectory::from_vertices(v).unwrap()
    }

    /// Store: patient 0 (sessions 0, 1) breathing at 10 mm; patient 1 at
    /// 10.5 mm; patient 2 at 25 mm (far).
    fn setup() -> (StreamStore, Vec<StreamId>) {
        let store = StreamStore::new();
        let p0 = store.add_patient(PatientAttributes::new());
        let p1 = store.add_patient(PatientAttributes::new());
        let p2 = store.add_patient(PatientAttributes::new());
        let ids = vec![
            store.add_stream(p0, 0, plr(8, 10.0), 800),
            store.add_stream(p0, 1, plr(8, 10.2), 800),
            store.add_stream(p1, 0, plr(8, 10.5), 800),
            store.add_stream(p2, 0, plr(8, 25.0), 800),
        ];
        (store, ids)
    }

    fn query_from(store: &StreamStore, id: StreamId, start: usize, len: usize) -> QuerySubseq {
        let view = store.resolve(SubseqRef::new(id, start, len)).unwrap();
        QuerySubseq::from_view(&view)
    }

    #[test]
    fn retrieves_similar_and_respects_delta() {
        let (store, ids) = setup();
        let m = Matcher::new(store.clone(), Params::default());
        let q = query_from(&store, ids[0], 0, 9);
        let matches = m.find_matches(&q);
        assert!(!matches.is_empty());
        // Sorted by distance.
        for w in matches.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
        // All within delta.
        assert!(matches.iter().all(|r| r.distance <= m.params().delta));
        // The far patient's 25 mm breathing must not match a 10 mm query
        // within delta 8: per-segment amp deviation 15mm / ws 0.3 = 50.
        assert!(matches.iter().all(|r| r.subseq.stream != ids[3]));
    }

    #[test]
    fn engine_scan_equals_naive_reference() {
        let (store, ids) = setup();
        let m = Matcher::new(store.clone(), Params::default());
        for (start, len) in [(0usize, 9usize), (1, 6), (3, 3), (5, 12)] {
            let q = query_from(&store, ids[0], start, len);
            for opts in [
                SearchOptions::default(),
                SearchOptions {
                    top_k: Some(3),
                    ..Default::default()
                },
                SearchOptions {
                    delta_override: Some(0.4),
                    ..Default::default()
                },
            ] {
                let naive = m.find_matches_naive(&q, &opts);
                let engine = m.find_matches_with(&q, &opts);
                assert_eq!(naive, engine, "divergence at ({start}, {len})");
            }
        }
    }

    #[test]
    fn tie_breaks_are_deterministic_and_topk_is_a_prefix() {
        let (store, ids) = setup();
        let m = Matcher::new(store.clone(), Params::default());
        // Periodic streams make many candidates with *exactly* equal
        // distances; the (distance, stream, start) order must hold.
        let q = query_from(&store, ids[0], 0, 3);
        let all = m.find_matches(&q);
        for w in all.windows(2) {
            assert_ne!(cmp_results(&w[0], &w[1]), Ordering::Greater);
        }
        for k in [1usize, 2, 5, all.len(), all.len() + 7] {
            let opts = SearchOptions {
                top_k: Some(k),
                ..Default::default()
            };
            let topk = m.find_matches_with(&q, &opts);
            assert_eq!(topk.as_slice(), &all[..k.min(all.len())], "k = {k}");
            assert_eq!(topk, m.find_matches_parallel(&q, &opts, 3), "k = {k}");
        }
        let opts = SearchOptions {
            top_k: Some(0),
            ..Default::default()
        };
        assert!(m.find_matches_with(&q, &opts).is_empty());
        assert!(m.find_matches_parallel(&q, &opts, 2).is_empty());
    }

    #[test]
    fn self_overlap_excluded_but_own_history_allowed() {
        let (store, ids) = setup();
        let m = Matcher::new(store.clone(), Params::default());
        // Query = the *last* 9 segments of stream 0.
        let nseg = store.stream(ids[0]).unwrap().plr.num_segments();
        let q = query_from(&store, ids[0], nseg - 9, 9);
        let matches = m.find_matches(&q);
        // The identical window itself must be excluded...
        assert!(matches
            .iter()
            .all(|r| !(r.subseq.stream == ids[0] && r.subseq.start as usize == nseg - 9)));
        // ...but earlier windows of the same stream are prime candidates.
        assert!(matches.iter().any(|r| r.subseq.stream == ids[0]));
    }

    #[test]
    fn source_relations_assigned_correctly() {
        let (store, ids) = setup();
        let m = Matcher::new(store.clone(), Params::default());
        let q = query_from(&store, ids[0], 0, 9);
        let matches = m.find_matches(&q);
        for r in &matches {
            let expected = if r.subseq.stream == ids[0] {
                SourceRelation::SameSession
            } else if r.subseq.stream == ids[1] {
                SourceRelation::SamePatient
            } else {
                SourceRelation::OtherPatient
            };
            assert_eq!(r.relation, expected);
        }
        // Same-session matches rank first (identical shapes everywhere, so
        // the ws division decides).
        assert_eq!(matches[0].relation, SourceRelation::SameSession);
    }

    #[test]
    fn patient_restriction() {
        let (store, ids) = setup();
        let m = Matcher::new(store.clone(), Params::default());
        let q = query_from(&store, ids[0], 0, 9);
        let mut allowed = HashSet::new();
        allowed.insert(PatientId(1));
        let opts = SearchOptions {
            restrict_patients: Some(allowed),
            ..Default::default()
        };
        let matches = m.find_matches_with(&q, &opts);
        assert!(!matches.is_empty());
        assert!(matches.iter().all(|r| r.subseq.stream == ids[2]));
        // The restricted search agrees with the naive reference and the
        // indexed/pruned paths (stream-level filter everywhere).
        assert_eq!(matches, m.find_matches_naive(&q, &opts));
        let soi = StateOrderIndex::build(&store, 9);
        assert_eq!(matches, m.find_matches_indexed(&q, &soi, &opts));
        let fi = FeatureIndex::build(&store, 9, 0);
        assert_eq!(matches, m.find_matches_pruned(&q, &fi, &opts));
    }

    #[test]
    fn top_k_truncates() {
        let (store, ids) = setup();
        let m = Matcher::new(store.clone(), Params::default());
        let q = query_from(&store, ids[0], 0, 9);
        let opts = SearchOptions {
            top_k: Some(5),
            ..Default::default()
        };
        let matches = m.find_matches_with(&q, &opts);
        assert_eq!(matches.len(), 5);
    }

    #[test]
    fn delta_override_tightens_the_net() {
        let (store, ids) = setup();
        let m = Matcher::new(store.clone(), Params::default());
        let q = query_from(&store, ids[0], 0, 9);
        let all = m.find_matches(&q).len();
        let opts = SearchOptions {
            delta_override: Some(0.2),
            ..Default::default()
        };
        let tight = m.find_matches_with(&q, &opts).len();
        assert!(tight < all, "tight {tight} vs all {all}");
    }

    #[test]
    fn indexed_equals_scan() {
        let (store, ids) = setup();
        let m = Matcher::new(store.clone(), Params::default());
        let index = StateOrderIndex::build(&store, 9);
        for start in [0usize, 1, 2, 5] {
            let q = query_from(&store, ids[0], start, 9);
            let scan = m.find_matches(&q);
            let indexed = m.find_matches_indexed(&q, &index, &SearchOptions::default());
            assert_eq!(scan, indexed, "divergence at start {start}");
        }
    }

    #[test]
    fn parallel_search_equals_scan() {
        let (store, ids) = setup();
        let m = Matcher::new(store.clone(), Params::default());
        for threads in [1usize, 2, 4, 16] {
            for start in [0usize, 2, 5] {
                let q = query_from(&store, ids[0], start, 9);
                let scan = m.find_matches(&q);
                let par = m.find_matches_parallel(&q, &SearchOptions::default(), threads);
                assert_eq!(scan, par, "divergence at {threads} threads, start {start}");
            }
        }
        // top_k interacts with merge ordering; verify it too.
        let q = query_from(&store, ids[0], 0, 9);
        let opts = SearchOptions {
            top_k: Some(4),
            ..Default::default()
        };
        assert_eq!(
            m.find_matches_with(&q, &opts),
            m.find_matches_parallel(&q, &opts, 3)
        );
    }

    #[test]
    fn pruned_search_equals_scan() {
        let (store, ids) = setup();
        let m = Matcher::new(store.clone(), Params::default());
        let index = FeatureIndex::build(&store, 9, 0);
        for start in [0usize, 1, 3, 6] {
            let q = query_from(&store, ids[0], start, 9);
            let scan = m.find_matches(&q);
            let pruned = m.find_matches_pruned(&q, &index, &SearchOptions::default());
            assert_eq!(scan, pruned, "divergence at start {start}");
        }
        // Tight delta too.
        let q = query_from(&store, ids[0], 0, 9);
        let opts = SearchOptions {
            delta_override: Some(0.3),
            ..Default::default()
        };
        assert_eq!(
            m.find_matches_with(&q, &opts),
            m.find_matches_pruned(&q, &index, &opts)
        );
    }

    #[test]
    fn empty_query_matches_nothing() {
        let (store, _) = setup();
        let m = Matcher::new(store, Params::default());
        let q = QuerySubseq::new(vec![]);
        assert!(q.is_empty());
        assert!(m.find_matches(&q).is_empty());
    }

    #[test]
    fn anonymous_queries_treat_everyone_as_other() {
        let (store, ids) = setup();
        let m = Matcher::new(store.clone(), Params::default());
        let view = store.resolve(SubseqRef::new(ids[0], 0, 9)).unwrap();
        let q = QuerySubseq::new(view.vertices().to_vec());
        let matches = m.find_matches(&q);
        assert!(!matches.is_empty());
        assert!(matches
            .iter()
            .all(|r| r.relation == SourceRelation::OtherPatient));
    }
}
