//! The subsequence search engine: retrieve all stored subsequences similar
//! to a query (paper Section 4.2).

use crate::params::Params;
use crate::similarity::online_distance;
use std::collections::HashSet;
use std::sync::Arc;
use tsm_db::{
    PatientId, SourceRelation, StateOrderIndex, StreamId, StreamStore, SubseqRef, SubseqView,
};
use tsm_model::{state_signature, BreathState, Vertex};

/// A query subsequence, detached from the store (online queries come from
/// the live stream, which may not have been persisted yet).
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySubseq {
    /// The query's vertices (`len + 1` of them for `len` segments).
    pub vertices: Vec<Vertex>,
    /// Provenance of the query, if known: `(patient, session)`. Drives the
    /// source weight of every candidate; `None` treats every candidate as
    /// coming from another patient.
    pub origin: Option<(PatientId, u32)>,
    /// The stream the query was cut from, if any — candidates overlapping
    /// the query's own window in that stream are excluded (a query always
    /// matches itself perfectly; that tells us nothing).
    pub origin_stream: Option<StreamId>,
}

impl QuerySubseq {
    /// Builds a query from a detached vertex buffer.
    pub fn new(vertices: Vec<Vertex>) -> Self {
        QuerySubseq {
            vertices,
            origin: None,
            origin_stream: None,
        }
    }

    /// Builds a query from a stored subsequence view (used by offline
    /// analysis and the experiments).
    pub fn from_view(view: &SubseqView) -> Self {
        let meta = view.stream().meta;
        QuerySubseq {
            vertices: view.vertices().to_vec(),
            origin: Some((meta.patient, meta.session)),
            origin_stream: Some(meta.id),
        }
    }

    /// Attaches provenance.
    pub fn with_origin(mut self, patient: PatientId, session: u32) -> Self {
        self.origin = Some((patient, session));
        self
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.vertices.len().saturating_sub(1)
    }

    /// Whether the query holds no segments.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The query's state order.
    pub fn states(&self) -> Vec<BreathState> {
        if self.vertices.len() < 2 {
            return Vec::new();
        }
        self.vertices[..self.vertices.len() - 1]
            .iter()
            .map(|v| v.state)
            .collect()
    }

    /// Packed state-order signature.
    pub fn signature(&self) -> Option<u128> {
        state_signature(self.states())
    }
}

/// One retrieved similar subsequence.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchResult {
    /// Reference to the matched subsequence.
    pub subseq: SubseqRef,
    /// Weighted distance to the query (Definition 2).
    pub distance: f64,
    /// Source weight of this candidate (also the prediction weight of
    /// Section 4.3).
    pub ws: f64,
    /// Provenance tier of this candidate.
    pub relation: SourceRelation,
}

/// Search restrictions.
#[derive(Debug, Clone, Default)]
pub struct SearchOptions {
    /// Only consider candidates from these patients (the clustering
    /// application of Section 5.3: "subsequence similarity matching will
    /// only retrieve subsequences from the same cluster").
    pub restrict_patients: Option<HashSet<PatientId>>,
    /// Keep only the `k` nearest matches (by distance). `None` keeps all
    /// matches within δ.
    pub top_k: Option<usize>,
    /// Override the distance threshold δ for this search.
    pub delta_override: Option<f64>,
}

/// The matcher: a store handle plus parameters.
///
/// ```
/// use tsm_core::{Matcher, Params, QuerySubseq};
/// use tsm_db::{PatientAttributes, StreamStore, SubseqRef};
/// use tsm_model::{BreathState::*, PlrTrajectory, Vertex};
///
/// // Two identical 4-cycle streams for one patient.
/// let store = StreamStore::new();
/// let patient = store.add_patient(PatientAttributes::new());
/// for session in 0..2 {
///     let mut v = Vec::new();
///     for c in 0..4 {
///         let t = c as f64 * 4.0;
///         v.push(Vertex::new_1d(t, 10.0, Exhale));
///         v.push(Vertex::new_1d(t + 1.5, 0.0, EndOfExhale));
///         v.push(Vertex::new_1d(t + 2.5, 0.0, Inhale));
///     }
///     v.push(Vertex::new_1d(16.0, 10.0, Exhale));
///     store.add_stream(patient, session, PlrTrajectory::from_vertices(v).unwrap(), 480);
/// }
///
/// // Query: the first cycle of stream 0.
/// let view = store.resolve(SubseqRef::new(tsm_db::StreamId(0), 0, 3)).unwrap();
/// let query = QuerySubseq::from_view(&view);
/// let matches = Matcher::new(store, Params::default()).find_matches(&query);
/// assert!(!matches.is_empty());
/// assert!(matches.iter().all(|m| m.distance <= Params::default().delta));
/// ```
#[derive(Debug, Clone)]
pub struct Matcher {
    store: StreamStore,
    params: Params,
}

impl Matcher {
    /// Creates a matcher over a store.
    pub fn new(store: StreamStore, params: Params) -> Self {
        Matcher { store, params }
    }

    /// The parameters in use.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The underlying store handle.
    pub fn store(&self) -> &StreamStore {
        &self.store
    }

    /// Finds all similar subsequences with default options.
    pub fn find_matches(&self, query: &QuerySubseq) -> Vec<MatchResult> {
        self.find_matches_with(query, &SearchOptions::default())
    }

    /// Finds all similar subsequences: every stored window with the
    /// query's state order and weighted distance ≤ δ, sorted by distance.
    pub fn find_matches_with(
        &self,
        query: &QuerySubseq,
        options: &SearchOptions,
    ) -> Vec<MatchResult> {
        let n = query.len();
        if n == 0 {
            return Vec::new();
        }
        let delta = options.delta_override.unwrap_or(self.params.delta);
        let mut out = Vec::new();
        for stream in self.store.streams() {
            self.scan_stream(query, &stream, n, delta, options, &mut out);
        }
        Self::finish(&mut out, options);
        out
    }

    /// Index-accelerated variant: candidate enumeration via a prebuilt
    /// [`StateOrderIndex`] of the query's length.
    pub fn find_matches_indexed(
        &self,
        query: &QuerySubseq,
        index: &StateOrderIndex,
        options: &SearchOptions,
    ) -> Vec<MatchResult> {
        let n = query.len();
        if n == 0 || index.len() != n {
            return Vec::new();
        }
        let Some(sig) = query.signature() else {
            return self.find_matches_with(query, options);
        };
        let delta = options.delta_override.unwrap_or(self.params.delta);
        let mut out = Vec::new();
        for r in index.candidates(sig) {
            let Some(view) = self.store.resolve(*r) else {
                continue;
            };
            if let Some(m) = self.score_candidate(query, &view, delta, options) {
                out.push(m);
            }
        }
        Self::finish(&mut out, options);
        out
    }

    /// Parallel scan: splits the store's streams over `threads` crossbeam
    /// workers. Results are identical to [`Matcher::find_matches_with`]
    /// (each worker scans a disjoint chunk; the merged result is sorted
    /// and truncated exactly as the serial path does). Worth it for
    /// multi-hundred-stream stores; for small stores the spawn overhead
    /// dominates — measure with the `matching` bench.
    pub fn find_matches_parallel(
        &self,
        query: &QuerySubseq,
        options: &SearchOptions,
        threads: usize,
    ) -> Vec<MatchResult> {
        let n = query.len();
        if n == 0 {
            return Vec::new();
        }
        let streams = self.store.streams();
        let threads = threads.max(1).min(streams.len().max(1));
        if threads <= 1 {
            return self.find_matches_with(query, options);
        }
        let delta = options.delta_override.unwrap_or(self.params.delta);
        let chunk = streams.len().div_ceil(threads);
        let mut out = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for chunk_streams in streams.chunks(chunk) {
                handles.push(scope.spawn(move |_| {
                    let mut local = Vec::new();
                    for stream in chunk_streams {
                        self.scan_stream(query, stream, n, delta, options, &mut local);
                    }
                    local
                }));
            }
            let mut merged = Vec::new();
            for h in handles {
                merged.extend(h.join().expect("matcher worker panicked"));
            }
            merged
        })
        .expect("scope failed");
        Self::finish(&mut out, options);
        out
    }

    /// Feature-index search with lower-bound pruning: candidates outside
    /// the amplitude-summary band provably cannot be within δ and are
    /// skipped before their vertices are touched. Results are identical
    /// to [`Matcher::find_matches_with`] (property-tested).
    ///
    /// The bound: the per-segment-normalized distance satisfies
    /// `d ≥ wa · wi_base · |S_q − S_c| / (Σwi · ws)`, so only candidates
    /// with `|S_q − S_c| ≤ δ · Σwi · ws_max / (wa · wi_base)` need exact
    /// scoring (`ws_max = 1`; each survivor is then re-checked with its
    /// actual `ws`).
    pub fn find_matches_pruned(
        &self,
        query: &QuerySubseq,
        index: &tsm_db::FeatureIndex,
        options: &SearchOptions,
    ) -> Vec<MatchResult> {
        let n = query.len();
        if n == 0 || index.len() != n || index.axis() != self.params.axis {
            return Vec::new();
        }
        let Some(sig) = query.signature() else {
            return self.find_matches_with(query, options);
        };
        let delta = options.delta_override.unwrap_or(self.params.delta);
        // Query-side summaries.
        let axis = self.params.axis;
        let q_amp_sum: f64 = query
            .vertices
            .windows(2)
            .map(|w| {
                tsm_model::Segment::between(&w[0], &w[1])
                    .displacement(axis)
                    .abs()
            })
            .sum();
        // Σwi for the query length.
        let wi_sum: f64 = (0..n)
            .map(|i| crate::similarity::vertex_weight(&self.params, i, n))
            .sum();
        let wa = self.params.wa.max(f64::MIN_POSITIVE);
        let wi_base = self.params.wi_base.max(f64::MIN_POSITIVE);
        let band = delta * wi_sum / (wa * wi_base); // ws_max = 1
        let mut out = Vec::new();
        for e in index.candidates_in_band(sig, q_amp_sum, band) {
            let Some(view) = self.store.resolve(e.subseq) else {
                continue;
            };
            if let Some(m) = self.score_candidate(query, &view, delta, options) {
                out.push(m);
            }
        }
        Self::finish(&mut out, options);
        out
    }

    fn scan_stream(
        &self,
        query: &QuerySubseq,
        stream: &Arc<tsm_db::MotionStream>,
        n: usize,
        delta: f64,
        options: &SearchOptions,
        out: &mut Vec<MatchResult>,
    ) {
        if let Some(allowed) = &options.restrict_patients {
            if !allowed.contains(&stream.meta.patient) {
                return;
            }
        }
        let nseg = stream.plr.num_segments();
        if nseg < n {
            return;
        }
        for start in 0..=(nseg - n) {
            let r = SubseqRef::new(stream.meta.id, start, n);
            let Some(view) = SubseqView::new(stream.clone(), r) else {
                continue;
            };
            if let Some(m) = self.score_candidate(query, &view, delta, options) {
                out.push(m);
            }
        }
    }

    fn score_candidate(
        &self,
        query: &QuerySubseq,
        view: &SubseqView,
        delta: f64,
        options: &SearchOptions,
    ) -> Option<MatchResult> {
        let meta = view.stream().meta;
        if let Some(allowed) = &options.restrict_patients {
            if !allowed.contains(&meta.patient) {
                return None;
            }
        }
        // Exclude candidates overlapping the query's own window.
        if query.origin_stream == Some(meta.id) {
            let q_first = query.vertices.first()?.time;
            let q_last = query.vertices.last()?.time;
            let c_first = view.first_vertex().time;
            let c_last = view.last_vertex().time;
            if c_last > q_first && c_first < q_last {
                return None;
            }
        }
        let relation = match query.origin {
            Some((patient, session)) => {
                if patient != meta.patient {
                    SourceRelation::OtherPatient
                } else if session != meta.session {
                    SourceRelation::SamePatient
                } else {
                    SourceRelation::SameSession
                }
            }
            None => SourceRelation::OtherPatient,
        };
        let d = online_distance(&query.vertices, view.vertices(), &self.params, relation)?;
        if d > delta {
            return None;
        }
        Some(MatchResult {
            subseq: view.subseq_ref(),
            distance: d,
            ws: self.params.ws(relation),
            relation,
        })
    }

    fn finish(out: &mut Vec<MatchResult>, options: &SearchOptions) {
        out.sort_by(|a, b| a.distance.total_cmp(&b.distance));
        if let Some(k) = options.top_k {
            out.truncate(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsm_db::PatientAttributes;
    use tsm_model::{PlrTrajectory, Vertex};
    use BreathState::*;

    /// A PLR stream of `n` cycles with the given amplitude.
    fn plr(n: usize, amplitude: f64) -> PlrTrajectory {
        let mut v = Vec::new();
        let mut t = 0.0;
        for _ in 0..n {
            v.push(Vertex::new_1d(t, amplitude, Exhale));
            v.push(Vertex::new_1d(t + 1.5, 0.0, EndOfExhale));
            v.push(Vertex::new_1d(t + 2.5, 0.0, Inhale));
            t += 4.0;
        }
        v.push(Vertex::new_1d(t, amplitude, Exhale));
        PlrTrajectory::from_vertices(v).unwrap()
    }

    /// Store: patient 0 (sessions 0, 1) breathing at 10 mm; patient 1 at
    /// 10.5 mm; patient 2 at 25 mm (far).
    fn setup() -> (StreamStore, Vec<StreamId>) {
        let store = StreamStore::new();
        let p0 = store.add_patient(PatientAttributes::new());
        let p1 = store.add_patient(PatientAttributes::new());
        let p2 = store.add_patient(PatientAttributes::new());
        let ids = vec![
            store.add_stream(p0, 0, plr(8, 10.0), 800),
            store.add_stream(p0, 1, plr(8, 10.2), 800),
            store.add_stream(p1, 0, plr(8, 10.5), 800),
            store.add_stream(p2, 0, plr(8, 25.0), 800),
        ];
        (store, ids)
    }

    fn query_from(store: &StreamStore, id: StreamId, start: usize, len: usize) -> QuerySubseq {
        let view = store.resolve(SubseqRef::new(id, start, len)).unwrap();
        QuerySubseq::from_view(&view)
    }

    #[test]
    fn retrieves_similar_and_respects_delta() {
        let (store, ids) = setup();
        let m = Matcher::new(store.clone(), Params::default());
        let q = query_from(&store, ids[0], 0, 9);
        let matches = m.find_matches(&q);
        assert!(!matches.is_empty());
        // Sorted by distance.
        for w in matches.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
        // All within delta.
        assert!(matches.iter().all(|r| r.distance <= m.params().delta));
        // The far patient's 25 mm breathing must not match a 10 mm query
        // within delta 8: per-segment amp deviation 15mm / ws 0.3 = 50.
        assert!(matches.iter().all(|r| r.subseq.stream != ids[3]));
    }

    #[test]
    fn self_overlap_excluded_but_own_history_allowed() {
        let (store, ids) = setup();
        let m = Matcher::new(store.clone(), Params::default());
        // Query = the *last* 9 segments of stream 0.
        let nseg = store.stream(ids[0]).unwrap().plr.num_segments();
        let q = query_from(&store, ids[0], nseg - 9, 9);
        let matches = m.find_matches(&q);
        // The identical window itself must be excluded...
        assert!(matches
            .iter()
            .all(|r| !(r.subseq.stream == ids[0] && r.subseq.start as usize == nseg - 9)));
        // ...but earlier windows of the same stream are prime candidates.
        assert!(matches.iter().any(|r| r.subseq.stream == ids[0]));
    }

    #[test]
    fn source_relations_assigned_correctly() {
        let (store, ids) = setup();
        let m = Matcher::new(store.clone(), Params::default());
        let q = query_from(&store, ids[0], 0, 9);
        let matches = m.find_matches(&q);
        for r in &matches {
            let expected = if r.subseq.stream == ids[0] {
                SourceRelation::SameSession
            } else if r.subseq.stream == ids[1] {
                SourceRelation::SamePatient
            } else {
                SourceRelation::OtherPatient
            };
            assert_eq!(r.relation, expected);
        }
        // Same-session matches rank first (identical shapes everywhere, so
        // the ws division decides).
        assert_eq!(matches[0].relation, SourceRelation::SameSession);
    }

    #[test]
    fn patient_restriction() {
        let (store, ids) = setup();
        let m = Matcher::new(store.clone(), Params::default());
        let q = query_from(&store, ids[0], 0, 9);
        let mut allowed = HashSet::new();
        allowed.insert(PatientId(1));
        let opts = SearchOptions {
            restrict_patients: Some(allowed),
            ..Default::default()
        };
        let matches = m.find_matches_with(&q, &opts);
        assert!(!matches.is_empty());
        assert!(matches.iter().all(|r| r.subseq.stream == ids[2]));
    }

    #[test]
    fn top_k_truncates() {
        let (store, ids) = setup();
        let m = Matcher::new(store.clone(), Params::default());
        let q = query_from(&store, ids[0], 0, 9);
        let opts = SearchOptions {
            top_k: Some(5),
            ..Default::default()
        };
        let matches = m.find_matches_with(&q, &opts);
        assert_eq!(matches.len(), 5);
    }

    #[test]
    fn delta_override_tightens_the_net() {
        let (store, ids) = setup();
        let m = Matcher::new(store.clone(), Params::default());
        let q = query_from(&store, ids[0], 0, 9);
        let all = m.find_matches(&q).len();
        let opts = SearchOptions {
            delta_override: Some(0.2),
            ..Default::default()
        };
        let tight = m.find_matches_with(&q, &opts).len();
        assert!(tight < all, "tight {tight} vs all {all}");
    }

    #[test]
    fn indexed_equals_scan() {
        let (store, ids) = setup();
        let m = Matcher::new(store.clone(), Params::default());
        let index = StateOrderIndex::build(&store, 9);
        for start in [0usize, 1, 2, 5] {
            let q = query_from(&store, ids[0], start, 9);
            let scan = m.find_matches(&q);
            let indexed = m.find_matches_indexed(&q, &index, &SearchOptions::default());
            assert_eq!(scan, indexed, "divergence at start {start}");
        }
    }

    #[test]
    fn parallel_search_equals_scan() {
        let (store, ids) = setup();
        let m = Matcher::new(store.clone(), Params::default());
        for threads in [1usize, 2, 4, 16] {
            for start in [0usize, 2, 5] {
                let q = query_from(&store, ids[0], start, 9);
                let scan = m.find_matches(&q);
                let par = m.find_matches_parallel(&q, &SearchOptions::default(), threads);
                assert_eq!(scan, par, "divergence at {threads} threads, start {start}");
            }
        }
        // top_k interacts with merge ordering; verify it too.
        let q = query_from(&store, ids[0], 0, 9);
        let opts = SearchOptions {
            top_k: Some(4),
            ..Default::default()
        };
        assert_eq!(
            m.find_matches_with(&q, &opts),
            m.find_matches_parallel(&q, &opts, 3)
        );
    }

    #[test]
    fn pruned_search_equals_scan() {
        let (store, ids) = setup();
        let m = Matcher::new(store.clone(), Params::default());
        let index = tsm_db::FeatureIndex::build(&store, 9, 0);
        for start in [0usize, 1, 3, 6] {
            let q = query_from(&store, ids[0], start, 9);
            let scan = m.find_matches(&q);
            let pruned = m.find_matches_pruned(&q, &index, &SearchOptions::default());
            assert_eq!(scan, pruned, "divergence at start {start}");
        }
        // Tight delta too.
        let q = query_from(&store, ids[0], 0, 9);
        let opts = SearchOptions {
            delta_override: Some(0.3),
            ..Default::default()
        };
        assert_eq!(
            m.find_matches_with(&q, &opts),
            m.find_matches_pruned(&q, &index, &opts)
        );
    }

    #[test]
    fn empty_query_matches_nothing() {
        let (store, _) = setup();
        let m = Matcher::new(store, Params::default());
        let q = QuerySubseq::new(vec![]);
        assert!(q.is_empty());
        assert!(m.find_matches(&q).is_empty());
    }

    #[test]
    fn anonymous_queries_treat_everyone_as_other() {
        let (store, ids) = setup();
        let m = Matcher::new(store.clone(), Params::default());
        let view = store.resolve(SubseqRef::new(ids[0], 0, 9)).unwrap();
        let q = QuerySubseq::new(view.vertices().to_vec());
        let matches = m.find_matches(&q);
        assert!(!matches.is_empty());
        assert!(matches
            .iter()
            .all(|r| r.relation == SourceRelation::OtherPatient));
    }
}
