//! The generalized four-step framework (paper Section 6).
//!
//! "Our method is generally suitable for any motion with structured time
//! series data, which can be described by a finite set of linear states":
//!
//! 1. **Motion modeling** — a finite state model with linear states;
//! 2. **Segmentation** — an online PLR algorithm labelling each segment;
//! 3. **Subsequence similarity** — a (possibly domain-tuned) measure;
//! 4. **Result analysis** — application statistics over the matches.
//!
//! The four steps are independent; porting the system to a new domain
//! means swapping configurations, not code. A [`DomainProfile`] bundles
//! the domain-specific choices: what the four abstract states *mean*, how
//! the segmenter should be tuned for the signal's scale and rate, and the
//! matching parameters. Profiles are provided for the domains the paper
//! sketches: respiratory motion, mechanical actuators / robot arms, tides,
//! and heartbeat.

use crate::params::Params;
use serde::{Deserialize, Serialize};
use tsm_model::{BreathState, SegmenterConfig};

/// A domain instantiation of the four-step framework.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainProfile {
    /// Human-readable domain name.
    pub name: String,
    /// Domain meaning of the four abstract states, indexed by
    /// [`BreathState::index`]: what "descending", "dwelling low",
    /// "ascending" and "irregular" are called in this domain.
    pub state_names: [String; 4],
    /// Segmenter tuning for the domain's signal scale and sample rate.
    pub segmenter: SegmenterConfig,
    /// Matching parameters for the domain.
    pub params: Params,
}

impl DomainProfile {
    /// The domain name of an abstract state.
    pub fn state_name(&self, state: BreathState) -> &str {
        &self.state_names[state.index()]
    }

    /// Respiratory tumor motion — the paper's primary domain.
    pub fn respiratory() -> Self {
        DomainProfile {
            name: "respiratory tumor motion".into(),
            state_names: [
                "exhale".into(),
                "end-of-exhale".into(),
                "inhale".into(),
                "irregular".into(),
            ],
            segmenter: SegmenterConfig::default(),
            params: Params::default(),
        }
    }

    /// A robot arm / mechanical actuator on an assembly line: retract,
    /// dwell at the stop, extend; faults are "irregular".
    pub fn actuator() -> Self {
        DomainProfile {
            name: "mechanical actuator".into(),
            state_names: [
                "retract".into(),
                "dwell".into(),
                "extend".into(),
                "fault".into(),
            ],
            segmenter: SegmenterConfig {
                // 50 mm strokes at 50 Hz: steeper slopes, bigger swings.
                window_len: 11,
                confirm_count: 3,
                flat_slope: 8.0,
                min_swing_amplitude: 10.0,
                max_eoe_duration: 3.0,
                max_phase_duration: 4.0,
                smoothing_width: 3,
                ..SegmenterConfig::default()
            },
            params: Params {
                // Machine cycles are metronomic: frequency deviations are
                // as diagnostic as amplitude deviations.
                wf: 1.0,
                wa: 1.0,
                delta: 4.0,
                ..Params::default()
            },
        }
    }

    /// Tidal water level (time unit: hours, ~6 samples/hour): falling
    /// tide, slack low water, rising tide; storm surges are "irregular".
    pub fn tide() -> Self {
        DomainProfile {
            name: "tidal water level".into(),
            state_names: [
                "ebb".into(),
                "slack low".into(),
                "flood".into(),
                "surge".into(),
            ],
            segmenter: SegmenterConfig {
                // Metres over hours instead of millimetres over seconds.
                window_len: 7,
                confirm_count: 2,
                flat_slope: 0.25,
                min_swing_amplitude: 0.8,
                min_segment_duration: 0.5,
                max_eoe_duration: 4.0,
                max_phase_duration: 9.0,
                envelope_tau: 30.0,
                smoothing_width: 3,
                ..SegmenterConfig::default()
            },
            params: Params {
                delta: 2.0,
                lmin_cycles: 2,
                lmax_cycles: 6,
                ..Params::default()
            },
        }
    }

    /// Cardiac displacement at 100 Hz: systolic decay, diastolic rest,
    /// systolic upstroke; arrhythmia is "irregular".
    pub fn heartbeat() -> Self {
        DomainProfile {
            name: "heartbeat displacement".into(),
            state_names: [
                "systolic decay".into(),
                "diastole".into(),
                "systolic upstroke".into(),
                "arrhythmia".into(),
            ],
            segmenter: SegmenterConfig {
                // ~0.85 s beats sampled at 100 Hz: sub-second phases. The
                // flat threshold sits above the dicrotic bump's slope
                // (~8 mm/s) so the bump merges into the diastolic rest
                // instead of breaking the upstroke/decay/rest cycle.
                window_len: 7,
                confirm_count: 2,
                flat_slope: 10.0,
                min_segment_duration: 0.03,
                min_swing_amplitude: 1.0,
                max_eoe_duration: 1.5,
                max_phase_duration: 1.0,
                envelope_tau: 3.0,
                smoothing_width: 3,
                ..SegmenterConfig::default()
            },
            params: Params {
                delta: 3.0,
                lmin_cycles: 4,
                lmax_cycles: 12,
                ..Params::default()
            },
        }
    }

    /// All built-in profiles.
    pub fn all() -> Vec<DomainProfile> {
        vec![
            Self::respiratory(),
            Self::actuator(),
            Self::tide(),
            Self::heartbeat(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_have_valid_params() {
        for p in DomainProfile::all() {
            p.params
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", p.name));
            assert!(!p.name.is_empty());
        }
    }

    #[test]
    fn state_names_map_by_index() {
        let a = DomainProfile::actuator();
        assert_eq!(a.state_name(BreathState::Exhale), "retract");
        assert_eq!(a.state_name(BreathState::EndOfExhale), "dwell");
        assert_eq!(a.state_name(BreathState::Inhale), "extend");
        assert_eq!(a.state_name(BreathState::Irregular), "fault");
    }

    #[test]
    fn profiles_differ_where_domains_differ() {
        let r = DomainProfile::respiratory();
        let t = DomainProfile::tide();
        // Tides move metres over hours; respiration millimetres over
        // seconds. Thresholds must differ accordingly.
        assert!(t.segmenter.flat_slope < r.segmenter.flat_slope);
        assert!(t.segmenter.max_eoe_duration < r.segmenter.max_eoe_duration * 10.0);
        let a = DomainProfile::actuator();
        assert!(a.params.wf > r.params.wf, "machines are metronomic");
    }

    #[test]
    fn heartbeat_segmenter_recovers_beat_structure() {
        use tsm_model::segment_signal;
        use tsm_signal::generalize::{heartbeat_signal, HeartbeatParams};
        let profile = DomainProfile::heartbeat();
        let samples = heartbeat_signal(HeartbeatParams::default(), 9, 30.0);
        let vertices = segment_signal(&samples, profile.segmenter.clone());
        let mut counts = [0usize; 4];
        for v in &vertices[..vertices.len().saturating_sub(1)] {
            counts[v.state.index()] += 1;
        }
        // ~35 beats in 30 s at 70 bpm: each regular state should appear
        // about that often, and arrhythmia labels must be rare.
        for (k, &c) in counts.iter().take(3).enumerate() {
            assert!(
                (25..=45).contains(&c),
                "state {k} appeared {c} times: {counts:?}"
            );
        }
        assert!(
            counts[3] * 5 <= counts[0],
            "too many arrhythmia segments: {counts:?}"
        );
    }

    #[test]
    fn actuator_faults_are_flagged() {
        use tsm_model::segment_signal;
        use tsm_signal::generalize::{actuator_signal, ActuatorParams};
        let profile = DomainProfile::actuator();
        let params = ActuatorParams {
            fault_rate: 0.08,
            ..Default::default()
        };
        let samples = actuator_signal(params, 11, 120.0);
        let vertices = segment_signal(&samples, profile.segmenter.clone());
        let faults = vertices
            .iter()
            .filter(|v| v.state == BreathState::Irregular)
            .count();
        assert!(faults >= 2, "no faults flagged despite 8%/cycle injection");
    }

    #[test]
    fn actuator_segmenter_parses_actuator_signals() {
        use tsm_model::segment_signal;
        use tsm_signal::generalize::{actuator_signal, ActuatorParams};
        let profile = DomainProfile::actuator();
        let samples = actuator_signal(ActuatorParams::default(), 3, 30.0);
        let vertices = segment_signal(&samples, profile.segmenter.clone());
        assert!(vertices.len() > 20, "only {} vertices", vertices.len());
        // The three regular states all appear.
        for want in [
            BreathState::Exhale,
            BreathState::EndOfExhale,
            BreathState::Inhale,
        ] {
            assert!(
                vertices.iter().any(|v| v.state == want),
                "missing {} ({})",
                profile.state_name(want),
                want
            );
        }
    }
}
