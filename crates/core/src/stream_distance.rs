//! Whole-stream similarity (paper Definition 3).
//!
//! The distance between streams `R` and `S` is built from offline
//! subsequence distances: every length-`n` subsequence of `R` queries `S`,
//! its `k` most-similar same-state-order subsequences are averaged, and
//! queries that cannot find at least `k` state-order matches are outliers
//! and dropped. The final distance symmetrizes the two directions:
//!
//! ```text
//! D(R, S) = ( D(R → S) + D(S → R) ) / 2
//! ```
//!
//! The offline subsequence distance keeps the source-stream weight `ws`
//! (Section 5: "the weights over amplitude and frequency are still
//! necessary, so is the weight for a source stream"), so same-patient
//! stream pairs read as closer than other-patient pairs with the same raw
//! shape deviation — this is deliberate and drives Figure 8b's ordering.

use crate::params::Params;
use crate::similarity::offline_distance;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;
use tsm_db::{MotionStream, SourceRelation};
use tsm_model::{state_signature, Vertex};

/// Knobs of the stream-distance computation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamDistanceConfig {
    /// Subsequence length in segments (`n` of Definition 3). Default: 9
    /// (three breathing cycles).
    pub len_segments: usize,
    /// Queries advance by this many segments; 1 enumerates every
    /// subsequence as in the paper, larger strides trade fidelity for
    /// speed on long corpora.
    pub stride: usize,
}

impl Default for StreamDistanceConfig {
    fn default() -> Self {
        StreamDistanceConfig {
            len_segments: 9,
            stride: 1,
        }
    }
}

/// Per-stream signature table: state-order signature → window starts.
fn signature_table(vertices: &[Vertex], len: usize) -> HashMap<u128, Vec<usize>> {
    let mut map: HashMap<u128, Vec<usize>> = HashMap::new();
    if vertices.len() < len + 1 {
        return map;
    }
    let n_seg = vertices.len() - 1;
    for start in 0..=(n_seg - len) {
        let sig = state_signature(vertices[start..start + len].iter().map(|v| v.state));
        if let Some(sig) = sig {
            map.entry(sig).or_default().push(start);
        }
    }
    map
}

/// One direction of Definition 3: mean over `R`'s (non-outlier) queries of
/// the mean of the `k` most-similar subsequences in `S`.
fn directed_distance(
    r: &MotionStream,
    s: &MotionStream,
    relation: SourceRelation,
    params: &Params,
    cfg: &StreamDistanceConfig,
) -> Option<f64> {
    let len = cfg.len_segments;
    let k = params.k_retrieve;
    let rv = r.plr.vertices();
    let sv = s.plr.vertices();
    if rv.len() < len + 1 || sv.len() < len + 1 {
        return None;
    }
    let same_stream = r.meta.id == s.meta.id;
    let table = signature_table(sv, len);
    let stride = cfg.stride.max(1);

    let mut total = 0.0;
    let mut n_queries = 0usize;
    let n_seg_r = rv.len() - 1;
    let mut start = 0usize;
    let mut dists: Vec<f64> = Vec::new();
    while start + len <= n_seg_r {
        let q = &rv[start..=start + len];
        let sig = state_signature(q[..len].iter().map(|v| v.state));
        let candidates = sig
            .and_then(|sig| table.get(&sig))
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        dists.clear();
        for &cs in candidates {
            if same_stream && cs == start {
                continue; // a window trivially matches itself
            }
            let c = &sv[cs..=cs + len];
            if let Some(d) = offline_distance(q, c, params, relation) {
                dists.push(d);
            }
        }
        // "If a query cannot find at least k subsequences with the same
        // state order, that query subsequence is an outlier and will be
        // removed."
        if dists.len() >= k {
            dists.sort_by(f64::total_cmp);
            total += dists[..k].iter().sum::<f64>() / k as f64;
            n_queries += 1;
        }
        start += stride;
    }
    (n_queries > 0).then(|| total / n_queries as f64)
}

/// The symmetric stream distance (Definition 3). `relation` is the
/// provenance of the pair (drives `ws`); obtain it from
/// [`tsm_db::StreamStore::relation`]. Returns `None` when either stream is
/// too short or every query is an outlier.
pub fn stream_distance(
    a: &Arc<MotionStream>,
    b: &Arc<MotionStream>,
    relation: SourceRelation,
    params: &Params,
    cfg: &StreamDistanceConfig,
) -> Option<f64> {
    let ab = directed_distance(a, b, relation, params, cfg)?;
    let ba = directed_distance(b, a, relation, params, cfg)?;
    Some((ab + ba) * 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsm_db::{PatientId, StreamId, StreamMeta};
    use tsm_model::{BreathState::*, PlrTrajectory};

    fn stream(id: u32, n: usize, amplitude: f64, period: f64) -> Arc<MotionStream> {
        let mut v = Vec::new();
        let mut t = 0.0;
        for i in 0..n {
            // Slight deterministic wobble so self-distance is not exactly 0.
            let a = amplitude * (1.0 + 0.02 * ((i % 3) as f64 - 1.0));
            v.push(Vertex::new_1d(t, a, Exhale));
            v.push(Vertex::new_1d(t + period * 0.4, 0.0, EndOfExhale));
            v.push(Vertex::new_1d(t + period * 0.6, 0.0, Inhale));
            t += period;
        }
        v.push(Vertex::new_1d(t, amplitude, Exhale));
        Arc::new(MotionStream {
            meta: StreamMeta {
                id: StreamId(id),
                patient: PatientId(0),
                session: 0,
            },
            plr: PlrTrajectory::from_vertices(v).unwrap(),
            raw_len: 0,
        })
    }

    fn cfg() -> StreamDistanceConfig {
        StreamDistanceConfig {
            len_segments: 6,
            stride: 1,
        }
    }

    fn params() -> Params {
        Params {
            k_retrieve: 5,
            ..Params::default()
        }
    }

    #[test]
    fn distance_is_symmetric() {
        let a = stream(0, 20, 10.0, 4.0);
        let b = stream(1, 20, 13.0, 4.5);
        let p = params();
        let dab = stream_distance(&a, &b, SourceRelation::OtherPatient, &p, &cfg()).unwrap();
        let dba = stream_distance(&b, &a, SourceRelation::OtherPatient, &p, &cfg()).unwrap();
        assert!((dab - dba).abs() < 1e-12);
    }

    #[test]
    fn self_distance_is_smallest() {
        let a = stream(0, 20, 10.0, 4.0);
        let b = stream(1, 20, 14.0, 4.8);
        let p = params();
        let daa = stream_distance(&a, &a, SourceRelation::SameSession, &p, &cfg()).unwrap();
        let dab = stream_distance(&a, &b, SourceRelation::OtherPatient, &p, &cfg()).unwrap();
        assert!(daa < dab, "self {daa} vs other {dab}");
    }

    #[test]
    fn closer_breathing_means_smaller_distance() {
        let a = stream(0, 20, 10.0, 4.0);
        let near = stream(1, 20, 11.0, 4.1);
        let far = stream(2, 20, 20.0, 6.0);
        let p = params();
        let rel = SourceRelation::OtherPatient;
        let dn = stream_distance(&a, &near, rel, &p, &cfg()).unwrap();
        let df = stream_distance(&a, &far, rel, &p, &cfg()).unwrap();
        assert!(dn < df, "near {dn} vs far {df}");
    }

    #[test]
    fn provenance_weighting_separates_tiers() {
        let a = stream(0, 20, 10.0, 4.0);
        let b = stream(1, 20, 11.0, 4.1);
        let p = params();
        let same = stream_distance(&a, &b, SourceRelation::SamePatient, &p, &cfg()).unwrap();
        let other = stream_distance(&a, &b, SourceRelation::OtherPatient, &p, &cfg()).unwrap();
        assert!(same < other);
        assert!((other / same - 0.9 / 0.3).abs() < 1e-9);
    }

    #[test]
    fn outlier_queries_are_dropped_or_distance_is_none() {
        // A long stream queried against a tiny one: fewer than k candidates
        // per state order means no valid queries at all.
        let a = stream(0, 20, 10.0, 4.0);
        let tiny = stream(1, 3, 10.0, 4.0); // 9 segments -> 4 windows of 6
        let p = params(); // k = 5 > 4
        assert_eq!(
            stream_distance(&a, &tiny, SourceRelation::OtherPatient, &p, &cfg()),
            None
        );
    }

    #[test]
    fn stride_approximates_full_enumeration() {
        let a = stream(0, 30, 10.0, 4.0);
        let b = stream(1, 30, 12.0, 4.3);
        let p = params();
        let rel = SourceRelation::OtherPatient;
        let full = stream_distance(&a, &b, rel, &p, &cfg()).unwrap();
        let strided = stream_distance(
            &a,
            &b,
            rel,
            &p,
            &StreamDistanceConfig {
                len_segments: 6,
                stride: 3,
            },
        )
        .unwrap();
        assert!(
            (full - strided).abs() < 0.25 * full + 0.05,
            "stride diverged: {full} vs {strided}"
        );
    }

    #[test]
    fn too_short_streams_yield_none() {
        let a = stream(0, 20, 10.0, 4.0);
        let b = stream(1, 1, 10.0, 4.0);
        let p = params();
        assert_eq!(
            stream_distance(&a, &b, SourceRelation::OtherPatient, &p, &cfg()),
            None
        );
    }
}
