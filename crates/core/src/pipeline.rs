//! The online prediction pipeline: raw samples in, predictions out.
//!
//! This is the deployment loop of the paper's Figure 1 scenario: the
//! tracking system delivers a sample every 33 ms; the signal is segmented
//! on the fly; when a prediction is requested (to cover system latency
//! `Δt`), the most recent motion becomes a dynamic query, the store is
//! searched, and the retrieved futures vote on the tumor's position at
//! `t + Δt`.
//!
//! [`OnlinePredictor`] is the single-consumer convenience wrapper around
//! [`crate::session::SessionRuntime`] — one session, predictions on
//! demand. Applications that also gate or track, or that drive several
//! concurrent sessions, should use the session runtime directly and
//! attach consumers; see [`crate::session`].

use crate::error::TsmError;
use crate::matcher::{QuerySubseq, SearchOptions};
use crate::params::Params;
use crate::predict::AlignMode;
use crate::session::{SessionConfig, SessionRuntime};
use tsm_db::{PatientId, SharedStore, StreamId};
use tsm_model::{Position, Sample, SegmenterConfig, Vertex};

/// Outcome of one prediction request (with diagnostics the experiments
/// record).
#[derive(Debug, Clone, PartialEq)]
pub struct PredictionOutcome {
    /// The predicted position at `t_last_vertex + dt`.
    pub position: Position,
    /// Number of matches that voted.
    pub num_matches: usize,
    /// Length of the dynamic query, in segments.
    pub query_len: usize,
    /// Whether the query's stability strip converged.
    pub query_stable: bool,
}

/// The online predictor: segmenter + live buffer + matcher, wrapped
/// around one consumer-less [`SessionRuntime`].
#[derive(Debug)]
pub struct OnlinePredictor {
    runtime: SessionRuntime,
}

impl OnlinePredictor {
    /// Creates a predictor for a session of `patient`, searching `store`
    /// (a shared handle — pass an existing `Arc<StreamStore>` to share
    /// the database, or a bare store to wrap one). Invalid parameters are
    /// an error, not a panic.
    pub fn new(
        store: impl Into<SharedStore>,
        params: Params,
        segmenter_config: SegmenterConfig,
        patient: PatientId,
        session: u32,
    ) -> Result<Self, TsmError> {
        let config = SessionConfig::new(patient, session).with_segmenter(segmenter_config);
        Ok(OnlinePredictor {
            runtime: SessionRuntime::new(store, params, config)?,
        })
    }

    /// Overrides the prediction alignment mode.
    pub fn with_align(mut self, align: AlignMode) -> Self {
        self.runtime.config_mut().align = align;
        self
    }

    /// Restricts matching (e.g. to the patient's cluster, Section 5.3).
    pub fn with_search_options(mut self, options: SearchOptions) -> Self {
        self.runtime.config_mut().options = options;
        self
    }

    /// The underlying session runtime.
    pub fn runtime(&self) -> &SessionRuntime {
        &self.runtime
    }

    /// Feeds one raw sample; returns any vertices that closed. Non-finite
    /// samples are rejected with [`TsmError::InvalidInput`].
    pub fn push(&mut self, s: Sample) -> Result<&[Vertex], TsmError> {
        self.runtime.push(s)
    }

    /// The live PLR buffer accumulated so far.
    pub fn live_vertices(&self) -> &[Vertex] {
        self.runtime.live_vertices()
    }

    /// Raw samples consumed.
    pub fn samples_seen(&self) -> usize {
        self.runtime.samples_seen()
    }

    /// Builds the current dynamic query, if the live buffer is long
    /// enough.
    pub fn current_query(&self) -> Option<QuerySubseq> {
        self.runtime.current_query()
    }

    /// Predicts the position `dt` seconds after the last closed vertex.
    ///
    /// Returns `None` until the live buffer holds at least `L_min`
    /// segments, or when fewer than `min_matches` similar subsequences are
    /// found (the paper abstains rather than guess).
    pub fn predict(&self, dt: f64) -> Option<PredictionOutcome> {
        self.runtime.predict(dt)
    }

    /// Ends the session: flushes the segmenter and persists the live
    /// stream into the store so future sessions can match against it.
    /// Returns `None` when the live stream never produced a valid PLR.
    pub fn finish_into_store(self) -> Option<StreamId> {
        self.runtime.finish_into_store()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsm_db::{PatientAttributes, StreamStore};
    use tsm_model::{segment_signal, PlrTrajectory};
    use tsm_signal::{BreathingParams, SignalGenerator};

    fn seeded_store(seed: u64) -> (StreamStore, PatientId) {
        let store = StreamStore::new();
        let patient = store.add_patient(PatientAttributes::new());
        // One prior session of the same patient.
        let samples = SignalGenerator::new(BreathingParams::default(), seed).generate(120.0);
        let vertices = segment_signal(&samples, SegmenterConfig::clean());
        let plr = PlrTrajectory::from_vertices(vertices).unwrap();
        store.add_stream(patient, 0, plr, samples.len());
        (store, patient)
    }

    #[test]
    fn predicts_after_warmup_and_beats_worst_case() {
        let (store, patient) = seeded_store(11);
        let params = Params {
            min_matches: 1,
            ..Params::default()
        };
        let mut predictor = OnlinePredictor::new(
            store,
            params,
            SegmenterConfig::clean(),
            patient,
            1, // a new session
        )
        .unwrap();
        // Live breathing, same patient parameters, different seed.
        let mut generator = SignalGenerator::new(BreathingParams::default(), 12);
        let samples = generator.generate(90.0);

        let mut errors = Vec::new();
        let dt = 0.3;
        let plr_truth = {
            let vertices = segment_signal(&samples, SegmenterConfig::clean());
            PlrTrajectory::from_vertices(vertices).unwrap()
        };
        for (i, &s) in samples.iter().enumerate() {
            predictor.push(s).unwrap();
            if i % 30 == 0 {
                if let Some(outcome) = predictor.predict(dt) {
                    let t_last = predictor.live_vertices().last().unwrap().time;
                    let truth = plr_truth.position_at(t_last + dt);
                    errors.push((outcome.position[0] - truth[0]).abs());
                }
            }
        }
        assert!(errors.len() > 10, "too few predictions: {}", errors.len());
        let mean = errors.iter().sum::<f64>() / errors.len() as f64;
        // 12 mm amplitude breathing: a useful predictor must do far better
        // than the ~4-6 mm error of predicting a constant.
        assert!(mean < 2.5, "mean prediction error {mean} mm");
    }

    #[test]
    fn no_prediction_before_warmup() {
        let (store, patient) = seeded_store(13);
        let predictor = OnlinePredictor::new(
            store,
            Params::default(),
            SegmenterConfig::clean(),
            patient,
            1,
        )
        .unwrap();
        assert!(predictor.predict(0.3).is_none());
        assert!(predictor.current_query().is_none());
    }

    #[test]
    fn invalid_params_surface_as_an_error() {
        let (store, patient) = seeded_store(17);
        let params = Params {
            delta: -1.0,
            ..Params::default()
        };
        let result = OnlinePredictor::new(store, params, SegmenterConfig::clean(), patient, 1);
        assert!(matches!(result, Err(TsmError::InvalidParams(_))));
    }

    #[test]
    fn finish_persists_the_session() {
        let (store, patient) = seeded_store(14);
        let before = store.num_streams();
        let mut predictor = OnlinePredictor::new(
            store.clone(),
            Params::default(),
            SegmenterConfig::clean(),
            patient,
            1,
        )
        .unwrap();
        let mut generator = SignalGenerator::new(BreathingParams::default(), 15);
        for s in generator.generate(60.0) {
            predictor.push(s).unwrap();
        }
        let id = predictor.finish_into_store().expect("stream persisted");
        assert_eq!(store.num_streams(), before + 1);
        let stored = store.stream(id).unwrap();
        assert_eq!(stored.meta.patient, patient);
        assert_eq!(stored.meta.session, 1);
        assert!(stored.plr.num_segments() > 20);
    }

    #[test]
    fn empty_session_does_not_persist() {
        let (store, patient) = seeded_store(16);
        let predictor = OnlinePredictor::new(
            store.clone(),
            Params::default(),
            SegmenterConfig::clean(),
            patient,
            1,
        )
        .unwrap();
        assert!(predictor.finish_into_store().is_none());
    }
}
