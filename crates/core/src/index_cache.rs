//! Version-aware index caching for the online deployment.
//!
//! Dynamic queries vary in length (`L_min`..`L_max` segments), so a
//! deployed matcher wants one [`FeatureIndex`] per length it has actually
//! seen — rebuilt only when the store has grown. The store's monotone
//! [`tsm_db::StreamStore::version`] counter makes staleness detection
//! exact: an index built at version `v` is valid while the store is still
//! at `v`.

use crate::matcher::{MatchResult, Matcher, QuerySubseq, SearchOptions};
use crate::metrics::{Counter, Hist, MetricsRegistry};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tsm_db::{FeatureIndex, SharedStore};

/// A point-in-time view of an [`IndexCache`]'s contents (diagnostics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexCacheStats {
    /// How many index builds the cache has performed.
    pub rebuilds: u64,
    /// Window lengths with a cached index, ascending.
    pub cached_lengths: Vec<usize>,
}

/// A per-length cache of feature indexes over one store.
#[derive(Debug)]
pub struct IndexCache {
    store: SharedStore,
    axis: usize,
    inner: Mutex<HashMap<usize, (u64, Arc<FeatureIndex>)>>,
    rebuilds: AtomicU64,
    metrics: MetricsRegistry,
}

impl IndexCache {
    /// Creates a cache over `store`, summarizing along `axis` (must match
    /// the matching parameters' axis). Takes a shared handle so the cache
    /// observes the same version counter as every other holder.
    pub fn new(store: impl Into<SharedStore>, axis: usize) -> Self {
        IndexCache {
            store: store.into(),
            axis,
            inner: Mutex::new(HashMap::new()),
            rebuilds: AtomicU64::new(0),
            metrics: MetricsRegistry::disabled(),
        }
    }

    /// Attaches a metrics registry (records lookups, hits, misses and
    /// rebuilds when enabled).
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = metrics;
        self
    }

    /// The up-to-date index for windows of `len` segments, rebuilding it
    /// only if the store has changed since it was last built.
    pub fn index_for(&self, len: usize) -> Arc<FeatureIndex> {
        self.metrics.incr(Counter::CacheLookups);
        let version = self.store.version();
        {
            let g = self.inner.lock();
            if let Some((v, ix)) = g.get(&len) {
                if *v == version {
                    self.metrics.incr(Counter::CacheHits);
                    return ix.clone();
                }
            }
        }
        self.metrics.incr(Counter::CacheMisses);
        let built = Arc::new(FeatureIndex::build(&self.store, len, self.axis));
        // The store may have grown *while* we built; tag with the version
        // we read before building so a concurrent insert invalidates us.
        self.inner.lock().insert(len, (version, built.clone()));
        // Relaxed: monotone statistics counter; readers only need an
        // eventually-consistent count, never ordering with the cache map.
        self.rebuilds.fetch_add(1, Ordering::Relaxed);
        self.metrics.incr(Counter::CacheRebuilds);
        built
    }

    /// Rebuilds every cached index whose build version trails the store,
    /// returning how many were refreshed. This is the maintenance-worker
    /// entry point: rebuild work triggered by a store-version bump
    /// happens *here*, off the search path, and the next
    /// [`IndexCache::index_for`] of a refreshed length is a plain cache
    /// hit instead of a miss-plus-inline-rebuild. Refreshes count into
    /// the cache's rebuild total and the `cache.daemon_rebuilds` counter,
    /// never into lookups or misses (nothing looked an index up).
    pub fn refresh_stale(&self) -> usize {
        let version = self.store.version();
        let stale: Vec<usize> = {
            let g = self.inner.lock();
            g.iter()
                .filter(|(_, (v, _))| *v != version)
                .map(|(&len, _)| len)
                .collect()
        };
        // Build outside the lock — concurrent searches keep hitting the
        // old (still internally consistent) index until the swap.
        for &len in &stale {
            let built = Arc::new(FeatureIndex::build(&self.store, len, self.axis));
            self.inner.lock().insert(len, (version, built));
            // Relaxed: monotone statistics counter (see index_for).
            self.rebuilds.fetch_add(1, Ordering::Relaxed);
            self.metrics.incr(Counter::CacheRebuilds);
            self.metrics.incr(Counter::CacheDaemonRebuilds);
        }
        stale.len()
    }

    /// How many index builds the cache has performed — a lock-free read,
    /// safe to poll from a hot monitoring loop.
    pub fn rebuild_count(&self) -> u64 {
        // Relaxed: statistics read; may trail a concurrent rebuild.
        self.rebuilds.load(Ordering::Relaxed)
    }

    /// A snapshot of the cache's contents.
    pub fn stats(&self) -> IndexCacheStats {
        let mut cached_lengths: Vec<usize> = self.inner.lock().keys().copied().collect();
        cached_lengths.sort_unstable();
        IndexCacheStats {
            rebuilds: self.rebuild_count(),
            cached_lengths,
        }
    }
}

/// A matcher with an attached index cache: every search goes through the
/// pruned path with an automatically maintained index.
#[derive(Debug)]
pub struct CachedMatcher {
    matcher: Matcher,
    cache: IndexCache,
}

impl CachedMatcher {
    /// Creates a cached matcher. The cache shares the matcher's store
    /// handle (an `Arc` clone) rather than taking its own copy, and
    /// records into the matcher's metrics registry.
    pub fn new(matcher: Matcher) -> Self {
        let cache = IndexCache::new(matcher.shared_store(), matcher.params().axis)
            .with_metrics(matcher.metrics().clone());
        CachedMatcher { matcher, cache }
    }

    /// The inner matcher.
    pub fn matcher(&self) -> &Matcher {
        &self.matcher
    }

    /// The metrics registry shared by the matcher and the cache.
    pub fn metrics(&self) -> &MetricsRegistry {
        self.matcher.metrics()
    }

    /// The cache (for diagnostics).
    pub fn cache(&self) -> &IndexCache {
        &self.cache
    }

    /// Pruned search through the cached index; identical results to the
    /// plain scan. All of `options` flows through to the engine, including
    /// the [`scoring`](SearchOptions::scoring) tier — a cached matcher
    /// batches through the f32 kernel exactly like a direct pruned search.
    pub fn find_matches(&self, query: &QuerySubseq, options: &SearchOptions) -> Vec<MatchResult> {
        let metrics = self.metrics();
        let started = metrics.start();
        let results = self.find_matches_inner(query, options);
        metrics.observe_since(Hist::SearchLatency, started);
        results
    }

    fn find_matches_inner(&self, query: &QuerySubseq, options: &SearchOptions) -> Vec<MatchResult> {
        let len = query.len();
        if len == 0 || len > 60 {
            return self.matcher.find_matches_with(query, options);
        }
        let index = self.cache.index_for(len);
        self.matcher.find_matches_pruned(query, &index, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use tsm_db::{PatientAttributes, StreamStore, SubseqRef};
    use tsm_model::{BreathState::*, PlrTrajectory, Vertex};

    fn plr(n: usize, amplitude: f64) -> PlrTrajectory {
        let mut v = Vec::new();
        let mut t = 0.0;
        for _ in 0..n {
            v.push(Vertex::new_1d(t, amplitude, Exhale));
            v.push(Vertex::new_1d(t + 1.5, 0.0, EndOfExhale));
            v.push(Vertex::new_1d(t + 2.5, 0.0, Inhale));
            t += 4.0;
        }
        v.push(Vertex::new_1d(t, amplitude, Exhale));
        PlrTrajectory::from_vertices(v).unwrap()
    }

    #[test]
    fn cached_results_equal_scan_and_cache_is_reused() {
        let store = StreamStore::new();
        let p = store.add_patient(PatientAttributes::new());
        let id = store.add_stream(p, 0, plr(8, 10.0), 960);
        store.add_stream(p, 1, plr(8, 10.4), 960);

        let matcher = Matcher::new(store.clone(), Params::default());
        let cached = CachedMatcher::new(Matcher::new(store.clone(), Params::default()));

        let view = store.resolve(SubseqRef::new(id, 0, 9)).unwrap();
        let q = QuerySubseq::from_view(&view);
        let opts = SearchOptions::default();
        let a = matcher.find_matches_with(&q, &opts);
        let b = cached.find_matches(&q, &opts);
        assert_eq!(a, b);
        assert_eq!(cached.cache().rebuild_count(), 1);

        // Forcing either scoring tier through the cached path changes
        // nothing about the results.
        for scoring in [
            crate::batch::ScoringMode::Scalar,
            crate::batch::ScoringMode::Batched,
        ] {
            let forced = SearchOptions {
                scoring,
                ..opts.clone()
            };
            assert_eq!(a, cached.find_matches(&q, &forced), "{scoring:?}");
        }

        // Second query of the same length: no rebuild.
        let view = store.resolve(SubseqRef::new(id, 3, 9)).unwrap();
        let q2 = QuerySubseq::from_view(&view);
        assert_eq!(
            matcher.find_matches_with(&q2, &opts),
            cached.find_matches(&q2, &opts)
        );
        assert_eq!(cached.cache().rebuild_count(), 1);

        // Different length: one more build.
        let view = store.resolve(SubseqRef::new(id, 0, 6)).unwrap();
        let q3 = QuerySubseq::from_view(&view);
        cached.find_matches(&q3, &opts);
        assert_eq!(cached.cache().rebuild_count(), 2);
        assert_eq!(
            cached.cache().stats(),
            IndexCacheStats {
                rebuilds: 2,
                cached_lengths: vec![6, 9],
            }
        );
    }

    #[test]
    fn store_growth_invalidates_the_cache() {
        let store = StreamStore::new();
        let p = store.add_patient(PatientAttributes::new());
        let id = store.add_stream(p, 0, plr(8, 10.0), 960);
        let cached = CachedMatcher::new(Matcher::new(store.clone(), Params::default()));
        let view = store.resolve(SubseqRef::new(id, 0, 9)).unwrap();
        let q = QuerySubseq::from_view(&view);
        let opts = SearchOptions::default();

        let before = cached.find_matches(&q, &opts).len();
        assert_eq!(cached.cache().rebuild_count(), 1);

        // New session arrives: the next search must see it.
        store.add_stream(p, 1, plr(8, 10.1), 960);
        let after = cached.find_matches(&q, &opts).len();
        assert_eq!(cached.cache().rebuild_count(), 2);
        assert!(after > before, "new stream invisible: {before} -> {after}");

        // And results still agree with a fresh scan.
        let matcher = Matcher::new(store.clone(), Params::default());
        assert_eq!(
            matcher.find_matches_with(&q, &opts),
            cached.find_matches(&q, &opts)
        );
    }

    #[test]
    fn refresh_stale_rebuilds_off_the_search_path() {
        use crate::metrics::MetricsRegistry;
        let store = StreamStore::new();
        let p = store.add_patient(PatientAttributes::new());
        let id = store.add_stream(p, 0, plr(8, 10.0), 960);
        let metrics = MetricsRegistry::enabled();
        let cached = CachedMatcher::new(
            Matcher::new(store.clone(), Params::default()).with_metrics(metrics.clone()),
        );
        let view = store.resolve(SubseqRef::new(id, 0, 9)).unwrap();
        let q = QuerySubseq::from_view(&view);
        let opts = SearchOptions::default();

        // Warm: one miss, one inline rebuild.
        cached.find_matches(&q, &opts);
        let warm = metrics.snapshot();
        assert_eq!(warm.counter("cache.misses"), 1);
        assert_eq!(warm.counter("cache.rebuilds"), 1);
        assert_eq!(warm.counter("cache.daemon_rebuilds"), 0);

        // A store-version bump makes the entry stale; the maintenance
        // pass refreshes it without touching the lookup funnel.
        store.add_stream(p, 1, plr(8, 10.1), 960);
        assert_eq!(cached.cache().refresh_stale(), 1);
        assert_eq!(cached.cache().refresh_stale(), 0, "refresh is idempotent");
        let refreshed = metrics.snapshot();
        assert_eq!(refreshed.counter("cache.rebuilds"), 2);
        assert_eq!(refreshed.counter("cache.daemon_rebuilds"), 1);
        assert_eq!(
            refreshed.counter("cache.lookups"),
            warm.counter("cache.lookups"),
            "maintenance must not count as lookups"
        );

        // The refreshed index serves the next search as a *hit* — the
        // version bump never forced a rebuild inside a search call — and
        // the results match a fresh scan of the grown store.
        let matches = cached.find_matches(&q, &opts);
        let after = metrics.snapshot();
        assert_eq!(after.counter("cache.misses"), 1, "search saw a stale index");
        assert_eq!(after.counter("cache.rebuilds"), 2);
        assert_eq!(
            matches,
            Matcher::new(store, Params::default()).find_matches_with(&q, &opts)
        );
        after.check_invariants().unwrap();
    }

    #[test]
    fn degenerate_queries_fall_back() {
        let store = StreamStore::new();
        store.add_patient(PatientAttributes::new());
        let cached = CachedMatcher::new(Matcher::new(store, Params::default()));
        let q = QuerySubseq::new(vec![]);
        assert!(cached
            .find_matches(&q, &SearchOptions::default())
            .is_empty());
        assert_eq!(cached.cache().rebuild_count(), 0);
    }
}
