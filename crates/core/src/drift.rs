//! Baseline-shift monitoring (the paper's Figure 3b phenomenon).
//!
//! "Tumor motion ... can include frequency changes, amplitude changes,
//! **base line shifting** (tumor position changes at the end of exhale),
//! or combinations of these effects." Matching is deliberately
//! offset-insensitive, so baseline drift never breaks retrieval — but the
//! *treatment* cares deeply: a gating window or tracking margin placed at
//! the start of a session silently mis-targets once the exhale-end level
//! wanders. This module watches the end-of-exhale levels and raises an
//! alarm when they drift beyond a clinical tolerance.

use crate::params::Params;
use serde::{Deserialize, Serialize};
use tsm_model::{BreathState, IncrementalLineFit, Vertex};

/// Configuration of the drift monitor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Total shift (mm) between the session's reference level and the
    /// recent level that triggers the alarm.
    pub shift_tolerance_mm: f64,
    /// Trend (mm per minute) that triggers the alarm on its own.
    pub trend_tolerance_mm_per_min: f64,
    /// End-of-exhale levels averaged to form the reference (the start of
    /// the session) and the recent estimate (its end).
    pub window: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            shift_tolerance_mm: 3.0,
            trend_tolerance_mm_per_min: 2.0,
            window: 5,
        }
    }
}

/// The monitor's assessment of a session so far.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftReport {
    /// Reference exhale-end level (mm): mean of the first `window` EOE
    /// vertices.
    pub reference_mm: f64,
    /// Recent exhale-end level (mm): mean of the last `window`.
    pub recent_mm: f64,
    /// Least-squares trend of all EOE levels (mm per minute).
    pub trend_mm_per_min: f64,
    /// EOE observations seen.
    pub observations: usize,
    /// Whether either tolerance is exceeded.
    pub alarm: bool,
}

impl DriftReport {
    /// Total shift from the reference (mm, signed).
    pub fn shift_mm(&self) -> f64 {
        self.recent_mm - self.reference_mm
    }
}

/// Streaming baseline monitor: feed it the PLR vertices as they close.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    config: DriftConfig,
    axis: usize,
    levels: Vec<(f64, f64)>, // (time, EOE level)
    fit: IncrementalLineFit,
}

impl DriftMonitor {
    /// Creates a monitor reading exhale-end levels along `axis`.
    pub fn new(config: DriftConfig, axis: usize) -> Self {
        DriftMonitor {
            config,
            axis,
            levels: Vec::new(),
            fit: IncrementalLineFit::new(),
        }
    }

    /// A monitor using the matching parameters' axis.
    pub fn for_params(params: &Params) -> Self {
        Self::new(DriftConfig::default(), params.axis)
    }

    /// Feeds one closed vertex; only end-of-exhale vertices contribute.
    pub fn push(&mut self, v: &Vertex) {
        if v.state == BreathState::EndOfExhale {
            let level = v.position[self.axis];
            self.levels.push((v.time, level));
            self.fit.push(v.time, level);
        }
    }

    /// Feeds a batch of vertices.
    pub fn extend<'a>(&mut self, vertices: impl IntoIterator<Item = &'a Vertex>) {
        for v in vertices {
            self.push(v);
        }
    }

    /// The current assessment, or `None` before `2 × window` EOE
    /// observations exist (reference and recent must not overlap).
    pub fn report(&self) -> Option<DriftReport> {
        let w = self.config.window.max(1);
        if self.levels.len() < 2 * w {
            return None;
        }
        let mean =
            |slice: &[(f64, f64)]| slice.iter().map(|&(_, y)| y).sum::<f64>() / slice.len() as f64;
        let reference = mean(&self.levels[..w]);
        let recent = mean(&self.levels[self.levels.len() - w..]);
        let trend = self.fit.slope() * 60.0;
        let alarm = (recent - reference).abs() > self.config.shift_tolerance_mm
            || trend.abs() > self.config.trend_tolerance_mm_per_min;
        Some(DriftReport {
            reference_mm: reference,
            recent_mm: recent,
            trend_mm_per_min: trend,
            observations: self.levels.len(),
            alarm,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsm_model::BreathState::*;

    /// Cycles whose EOE level follows `baseline(cycle_index)`.
    fn vertices(n: usize, baseline: impl Fn(usize) -> f64) -> Vec<Vertex> {
        let mut v = Vec::new();
        let mut t = 0.0;
        for i in 0..n {
            let b = baseline(i);
            v.push(Vertex::new_1d(t, b + 10.0, Exhale));
            v.push(Vertex::new_1d(t + 1.5, b, EndOfExhale));
            v.push(Vertex::new_1d(t + 2.5, b, Inhale));
            t += 4.0;
        }
        v
    }

    #[test]
    fn stable_baseline_raises_no_alarm() {
        let mut m = DriftMonitor::new(DriftConfig::default(), 0);
        m.extend(&vertices(20, |_| 0.2));
        let r = m.report().expect("enough observations");
        assert!(!r.alarm);
        assert!(r.shift_mm().abs() < 0.1);
        assert!(r.trend_mm_per_min.abs() < 0.1);
        assert_eq!(r.observations, 20);
    }

    #[test]
    fn drifting_baseline_raises_the_alarm() {
        let mut m = DriftMonitor::new(DriftConfig::default(), 0);
        // 0.35 mm per cycle over 20 cycles = 7 mm shift, ~5 mm/min trend.
        m.extend(&vertices(20, |i| i as f64 * 0.35));
        let r = m.report().expect("enough observations");
        assert!(r.alarm, "drift missed: {r:?}");
        assert!(r.shift_mm() > 4.0);
        assert!(r.trend_mm_per_min > 2.0);
    }

    #[test]
    fn sudden_step_is_caught_by_the_shift_bound() {
        let mut m = DriftMonitor::new(DriftConfig::default(), 0);
        m.extend(&vertices(20, |i| if i < 10 { 0.0 } else { 5.0 }));
        let r = m.report().expect("enough observations");
        assert!(r.alarm);
        assert!((r.shift_mm() - 5.0).abs() < 0.5);
    }

    #[test]
    fn needs_enough_observations() {
        let mut m = DriftMonitor::new(DriftConfig::default(), 0);
        m.extend(&vertices(4, |_| 0.0)); // 4 EOE < 2 * window
        assert!(m.report().is_none());
        m.extend(&vertices(6, |_| 0.0));
        assert!(m.report().is_some());
    }

    #[test]
    fn irregular_vertices_are_ignored() {
        let mut m = DriftMonitor::new(DriftConfig::default(), 0);
        let mut v = vertices(12, |_| 0.0);
        // Wild IRR vertices must not contaminate the levels.
        for x in v.iter_mut().step_by(5) {
            x.state = Irregular;
            x.position = tsm_model::Position::new_1d(40.0);
        }
        m.extend(&v);
        if let Some(r) = m.report() {
            assert!(!r.alarm, "IRR vertices contaminated the monitor: {r:?}");
        }
    }
}
