//! Online motion prediction from retrieved matches (paper Section 4.3).
//!
//! "The immediate future of a historical subsequence is known. By matching
//! a current query subsequence with a similar historical subsequence, one
//! can predict that the future of the query subsequence will be similar to
//! that of the historical subsequence."
//!
//! The position after `Δt` is the source-weighted mean of the retrieved
//! subsequences' futures, offset-translated onto the query:
//!
//! ```text
//! p̂(Δt) = p_q,align + Σ_j ws_j · (p_j(Δt) − p_j,align) / Σ_j ws_j
//! ```
//!
//! The paper aligns at the **first** vertex of each subsequence; this
//! module also offers last-vertex alignment as an ablation (aligning at
//! the most recent shared point is less exposed to baseline drift across
//! the window — the `predict_alignment` bench quantifies the difference).

use crate::matcher::{MatchResult, QuerySubseq};
use crate::params::Params;
use tsm_db::StreamStore;
use tsm_model::Position;

/// Which vertex the candidate futures are offset-aligned at.
///
/// The paper's formula aligns at the **first** vertex. Empirically (see
/// the `prediction` bench and EXPERIMENTS.md) first-vertex alignment
/// carries a flat reconstruction-error floor — baseline drift across the
/// multi-cycle query span leaks into every prediction — while last-vertex
/// alignment anchors at the shared "current time" point, has zero error
/// at `dt = 0`, and reproduces the paper's reported error-vs-latency
/// growth shape. This crate therefore defaults to `LastVertex` and keeps
/// `FirstVertex` as the paper-faithful ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AlignMode {
    /// Paper-faithful: align at the first vertex of each subsequence.
    FirstVertex,
    /// Default: align at the last vertex (the "current time" point).
    #[default]
    LastVertex,
}

/// Predicts the position `dt` seconds after the query's last vertex.
///
/// Returns `None` when fewer than `params.min_matches` matches are
/// supplied ("we predict only if there are a certain number of retrieved
/// subsequences") or when a match's stream has vanished from the store.
pub fn predict_position(
    store: &StreamStore,
    query: &QuerySubseq,
    matches: &[MatchResult],
    dt: f64,
    params: &Params,
    align: AlignMode,
) -> Option<Position> {
    if query.vertices.len() < 2 || matches.len() < params.min_matches {
        return None;
    }
    let q_anchor = match align {
        AlignMode::FirstVertex => query.vertices.first()?.position,
        AlignMode::LastVertex => query.vertices.last()?.position,
    };
    let mut acc = Position::zero(q_anchor.dim());
    let mut wsum = 0.0;
    let mut voters = 0usize;
    for m in matches {
        let view = store.resolve(m.subseq)?;
        // "The immediate future of a historical subsequence is known" —
        // but only if the stream actually extends dt beyond the window.
        // Candidates at a stream's tail would vote with extrapolation
        // artifacts; skip them.
        if view.last_vertex().time + dt > view.stream().plr.end_time() {
            continue;
        }
        let c_anchor = match align {
            AlignMode::FirstVertex => view.first_vertex().position,
            AlignMode::LastVertex => view.last_vertex().position,
        };
        let future = view.position_after(dt);
        acc = acc + (future - c_anchor) * m.ws;
        wsum += m.ws;
        voters += 1;
    }
    if wsum <= 0.0 || voters < params.min_matches {
        return None;
    }
    Some(q_anchor + acc * (1.0 / wsum))
}

/// Predicts the position at `t_last_vertex + dt` **anchored on a fresh
/// raw observation**: the matched subsequences vote only on the
/// *displacement* between `t_last_vertex + dt_anchor` (when
/// `anchor_position` was observed) and `t_last_vertex + dt`, and that
/// displacement is applied to the observation.
///
/// This matters in deployment: the PLR's last vertex lags real time by up
/// to a segment length, so [`predict_position`] must bridge both the
/// system latency *and* the segmentation delay from an old anchor. The
/// tracking system, however, always has a raw position sample from just
/// `latency` ago — anchoring the matched displacement there removes the
/// accumulated drift (the gating experiment quantifies the difference).
#[allow(clippy::too_many_arguments)] // mirrors predict_position plus the anchor pair
pub fn predict_position_anchored(
    store: &StreamStore,
    query: &QuerySubseq,
    matches: &[MatchResult],
    dt_anchor: f64,
    anchor_position: Position,
    dt: f64,
    params: &Params,
    align: AlignMode,
) -> Option<Position> {
    let at_anchor = predict_position(store, query, matches, dt_anchor, params, align)?;
    let at_target = predict_position(store, query, matches, dt, params, align)?;
    Some(anchor_position + (at_target - at_anchor))
}

/// Predicts the duration of the query's next breathing cycle: the
/// source-weighted mean of the matched subsequences' next-cycle durations
/// (Section 4.3: "future frequency, amplitude or position can be
/// predicted ... prediction of the other future characteristics is
/// analogous"). Matches whose stream ends too soon after the window are
/// skipped; returns `None` if none remain.
pub fn predict_next_cycle_duration(
    store: &StreamStore,
    matches: &[MatchResult],
    params: &Params,
) -> Option<f64> {
    if matches.len() < params.min_matches {
        return None;
    }
    let mut acc = 0.0;
    let mut wsum = 0.0;
    for m in matches {
        let Some(view) = store.resolve(m.subseq) else {
            continue;
        };
        let stream = view.stream();
        // The next full cycle after the window: 3 more segments.
        let next_start = m.subseq.start as usize + m.subseq.len as usize;
        let v = stream.plr.vertices();
        if next_start + 3 < v.len() {
            acc += m.ws * (v[next_start + 3].time - v[next_start].time);
            wsum += m.ws;
        }
    }
    (wsum > 0.0).then(|| acc / wsum)
}

/// Predicts the peak-to-trough amplitude of the query's next breathing
/// cycle: the source-weighted mean of the matched subsequences' next-cycle
/// amplitudes along `params.axis` (Section 4.3's "future frequency,
/// amplitude or position"). Returns `None` when no match has a full cycle
/// of stored future.
pub fn predict_next_cycle_amplitude(
    store: &StreamStore,
    matches: &[MatchResult],
    params: &Params,
) -> Option<f64> {
    if matches.len() < params.min_matches {
        return None;
    }
    let axis = params.axis;
    let mut acc = 0.0;
    let mut wsum = 0.0;
    for m in matches {
        let Some(view) = store.resolve(m.subseq) else {
            continue;
        };
        let stream = view.stream();
        let next_start = m.subseq.start as usize + m.subseq.len as usize;
        let v = stream.plr.vertices();
        if next_start + 3 < v.len() {
            let window = &v[next_start..=next_start + 3];
            let lo = window
                .iter()
                .map(|x| x.position[axis])
                .fold(f64::INFINITY, f64::min);
            let hi = window
                .iter()
                .map(|x| x.position[axis])
                .fold(f64::NEG_INFINITY, f64::max);
            acc += m.ws * (hi - lo);
            wsum += m.ws;
        }
    }
    (wsum > 0.0).then(|| acc / wsum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::Matcher;
    use tsm_db::{PatientAttributes, SubseqRef};
    use tsm_model::{BreathState::*, PlrTrajectory, Vertex};

    fn plr(n: usize, amplitude: f64, baseline: f64) -> PlrTrajectory {
        let mut v = Vec::new();
        let mut t = 0.0;
        for _ in 0..n {
            v.push(Vertex::new_1d(t, baseline + amplitude, Exhale));
            v.push(Vertex::new_1d(t + 1.5, baseline, EndOfExhale));
            v.push(Vertex::new_1d(t + 2.5, baseline, Inhale));
            t += 4.0;
        }
        v.push(Vertex::new_1d(t, baseline + amplitude, Exhale));
        PlrTrajectory::from_vertices(v).unwrap()
    }

    fn setup() -> (StreamStore, tsm_db::StreamId) {
        let store = StreamStore::new();
        let p0 = store.add_patient(PatientAttributes::new());
        let id = store.add_stream(p0, 0, plr(10, 10.0, 0.0), 1000);
        (store, id)
    }

    #[test]
    fn prediction_tracks_periodic_future() {
        let (store, id) = setup();
        let params = Params {
            min_matches: 1,
            ..Params::default()
        };
        let m = Matcher::new(store.clone(), params.clone());
        // Query: segments 12..21 (4 cycles in, ends at a cycle boundary).
        let view = store.resolve(SubseqRef::new(id, 12, 9)).unwrap();
        let q = QuerySubseq::from_view(&view);
        let matches = m.find_matches(&q);
        assert!(!matches.is_empty());
        let truth_stream = store.stream(id).unwrap();
        let t_last = q.vertices.last().unwrap().time;
        for dt in [0.1, 0.3, 0.5, 1.0] {
            let p = predict_position(&store, &q, &matches, dt, &params, AlignMode::FirstVertex)
                .unwrap();
            let truth = truth_stream.plr.position_at(t_last + dt);
            assert!(
                (p[0] - truth[0]).abs() < 0.8,
                "dt {dt}: predicted {} vs truth {}",
                p[0],
                truth[0]
            );
        }
    }

    #[test]
    fn min_matches_gate() {
        let (store, id) = setup();
        let params = Params {
            min_matches: 1000,
            ..Params::default()
        };
        let m = Matcher::new(store.clone(), Params::default());
        let view = store.resolve(SubseqRef::new(id, 12, 9)).unwrap();
        let q = QuerySubseq::from_view(&view);
        let matches = m.find_matches(&q);
        assert_eq!(
            predict_position(&store, &q, &matches, 0.3, &params, AlignMode::FirstVertex),
            None
        );
    }

    #[test]
    fn alignment_modes_agree_without_baseline_drift() {
        let (store, id) = setup();
        let params = Params {
            min_matches: 1,
            ..Params::default()
        };
        let m = Matcher::new(store.clone(), params.clone());
        let view = store.resolve(SubseqRef::new(id, 12, 9)).unwrap();
        let q = QuerySubseq::from_view(&view);
        let matches = m.find_matches(&q);
        let a =
            predict_position(&store, &q, &matches, 0.3, &params, AlignMode::FirstVertex).unwrap();
        let b =
            predict_position(&store, &q, &matches, 0.3, &params, AlignMode::LastVertex).unwrap();
        assert!((a[0] - b[0]).abs() < 0.8, "{} vs {}", a[0], b[0]);
    }

    #[test]
    fn baseline_shifted_matches_still_predict_correctly() {
        // Patient history contains the same pattern at a shifted baseline;
        // offset translation must absorb the shift.
        let store = StreamStore::new();
        let p0 = store.add_patient(PatientAttributes::new());
        let hist = store.add_stream(p0, 0, plr(10, 10.0, 20.0), 1000);
        let live = store.add_stream(p0, 0, plr(6, 10.0, 0.0), 600);
        let params = Params {
            min_matches: 1,
            ..Params::default()
        };
        let m = Matcher::new(store.clone(), params.clone());
        let view = store.resolve(SubseqRef::new(live, 6, 9)).unwrap();
        let q = QuerySubseq::from_view(&view);
        let matches = m.find_matches(&q);
        // Matches from the shifted history stream exist.
        assert!(matches.iter().any(|r| r.subseq.stream == hist));
        let t_last = q.vertices.last().unwrap().time;
        let truth = store.stream(live).unwrap().plr.position_at(t_last + 0.5);
        let p =
            predict_position(&store, &q, &matches, 0.5, &params, AlignMode::FirstVertex).unwrap();
        assert!(
            (p[0] - truth[0]).abs() < 0.8,
            "baseline shift leaked: {} vs {}",
            p[0],
            truth[0]
        );
    }

    #[test]
    fn anchored_prediction_follows_the_anchor() {
        let (store, id) = setup();
        let params = Params {
            min_matches: 1,
            ..Params::default()
        };
        let m = Matcher::new(store.clone(), params.clone());
        let view = store.resolve(SubseqRef::new(id, 12, 9)).unwrap();
        let q = QuerySubseq::from_view(&view);
        let matches = m.find_matches(&q);
        let t_last = q.vertices.last().unwrap().time;
        let truth_stream = store.stream(id).unwrap();

        // A perfect anchor at dt_anchor: the anchored prediction at
        // dt reproduces the truth as well as (or better than) the
        // unanchored one.
        let dt_anchor = 0.1;
        let dt = 0.4;
        let anchor = truth_stream.plr.position_at(t_last + dt_anchor);
        let anchored = predict_position_anchored(
            &store,
            &q,
            &matches,
            dt_anchor,
            anchor,
            dt,
            &params,
            AlignMode::LastVertex,
        )
        .unwrap();
        let truth = truth_stream.plr.position_at(t_last + dt);
        assert!(
            (anchored[0] - truth[0]).abs() < 0.8,
            "anchored {} vs truth {}",
            anchored[0],
            truth[0]
        );

        // A shifted anchor shifts the prediction by exactly the shift
        // (the matched displacement is anchor-independent).
        let shifted = predict_position_anchored(
            &store,
            &q,
            &matches,
            dt_anchor,
            anchor + Position::new_1d(5.0),
            dt,
            &params,
            AlignMode::LastVertex,
        )
        .unwrap();
        assert!((shifted[0] - anchored[0] - 5.0).abs() < 1e-9);

        // dt == dt_anchor returns the anchor itself.
        let same = predict_position_anchored(
            &store,
            &q,
            &matches,
            dt,
            anchor,
            dt,
            &params,
            AlignMode::LastVertex,
        )
        .unwrap();
        assert!((same[0] - anchor[0]).abs() < 1e-12);
    }

    #[test]
    fn next_cycle_duration_prediction() {
        let (store, id) = setup();
        let params = Params {
            min_matches: 1,
            ..Params::default()
        };
        let m = Matcher::new(store.clone(), params.clone());
        let view = store.resolve(SubseqRef::new(id, 12, 9)).unwrap();
        let q = QuerySubseq::from_view(&view);
        let matches = m.find_matches(&q);
        let d = predict_next_cycle_duration(&store, &matches, &params).unwrap();
        assert!((d - 4.0).abs() < 1e-9, "cycle duration {d}");
    }

    #[test]
    fn next_cycle_amplitude_prediction() {
        let (store, id) = setup();
        let params = Params {
            min_matches: 1,
            ..Params::default()
        };
        let m = Matcher::new(store.clone(), params.clone());
        let view = store.resolve(SubseqRef::new(id, 12, 9)).unwrap();
        let q = QuerySubseq::from_view(&view);
        let matches = m.find_matches(&q);
        let a = predict_next_cycle_amplitude(&store, &matches, &params).unwrap();
        assert!((a - 10.0).abs() < 1e-9, "cycle amplitude {a}");
    }

    #[test]
    fn empty_matches_yield_none() {
        let (store, id) = setup();
        let params = Params::default();
        let view = store.resolve(SubseqRef::new(id, 0, 9)).unwrap();
        let q = QuerySubseq::from_view(&view);
        assert_eq!(
            predict_position(&store, &q, &[], 0.3, &params, AlignMode::FirstVertex),
            None
        );
        assert_eq!(predict_next_cycle_duration(&store, &[], &params), None);
    }
}
