//! # tsm-core
//!
//! The primary contribution of Wu et al., *Subsequence Matching on
//! Structured Time Series Data* (SIGMOD 2005), implemented over the
//! [`tsm_model`] motion model and the [`tsm_db`] stream database:
//!
//! * **Subsequence stability** (Definition 1) — a scale-free statistic of
//!   how regular the most recent motion is ([`mod@stability`]).
//! * **Dynamic query generation** (Section 4.1) — a stability checking
//!   strip that grows the query subsequence until it is representative
//!   ([`query`]).
//! * **Online subsequence similarity** (Definition 2) — a model-based,
//!   multi-layer, weighted, parametric distance: candidates must share the
//!   query's state order, then a weighted sum of amplitude and frequency
//!   deviations is scaled by per-vertex recency weights and the
//!   source-stream weight ([`similarity`], [`matcher`]).
//! * **Motion prediction** (Section 4.3) — the offset-translated weighted
//!   mean of the retrieved subsequences' futures ([`predict`]).
//! * **Stream and patient distances** (Definitions 3 and 4) and
//!   distance-matrix **clustering** with correlation discovery
//!   ([`mod@stream_distance`], [`mod@patient_distance`], [`cluster`],
//!   [`correlate`]).
//! * An **online pipeline** gluing segmentation, querying, matching and
//!   prediction into the real-time loop the paper deploys ([`pipeline`]),
//!   and the Section-6 **generalization profiles** for other structured
//!   domains ([`framework`]).
//!
//! ## Quickstart
//!
//! ```
//! use tsm_core::prelude::*;
//! use tsm_db::{PatientAttributes, StreamStore};
//! use tsm_model::{segment_signal, SegmenterConfig};
//! use tsm_signal::{BreathingParams, SignalGenerator};
//!
//! // 1. Simulate and segment a patient's historical stream.
//! let samples = SignalGenerator::new(BreathingParams::default(), 7).generate(120.0);
//! let vertices = segment_signal(&samples, SegmenterConfig::default());
//! let plr = tsm_model::PlrTrajectory::from_vertices(vertices).unwrap();
//!
//! // 2. Store it.
//! let store = StreamStore::new();
//! let patient = store.add_patient(PatientAttributes::new());
//! let stream = store.add_stream(patient, 0, plr, samples.len());
//!
//! // 3. Build a query from the stream's own recent motion and match.
//! let params = Params::default();
//! let view = store.resolve(tsm_db::SubseqRef::new(stream, 0, 9)).unwrap();
//! let query = QuerySubseq::from_view(&view);
//! let matches = Matcher::new(store.clone(), params.clone()).find_matches(&query);
//! assert!(!matches.is_empty());
//! ```

pub mod batch;
pub mod cluster;
pub mod correlate;
pub mod drift;
pub mod error;
pub mod framework;
pub mod gating;
pub mod index_cache;
pub mod invariants;
pub mod json;
pub mod matcher;
pub mod metrics;
pub mod params;
pub mod patient_distance;
pub mod pipeline;
pub mod predict;
pub mod query;
pub mod session;
pub mod similarity;
pub mod stability;
pub mod stream_distance;
pub mod tracking;
pub mod tuning;

/// Glob import of the most used types.
pub mod prelude {
    pub use crate::batch::{BatchQuery, BatchScorer, GroupResult, LaneOutcome, ScoringMode, LANES};
    pub use crate::cluster::{agglomerative, k_medoids, silhouette, DistanceMatrix};
    pub use crate::correlate::{discover_correlations, Association};
    pub use crate::drift::{DriftConfig, DriftMonitor, DriftReport};
    pub use crate::error::{CoreError, TsmError};
    pub use crate::framework::DomainProfile;
    pub use crate::gating::{simulate_gating, GatingAccumulator, GatingStats, GatingWindow};
    pub use crate::index_cache::{CachedMatcher, IndexCache, IndexCacheStats};
    pub use crate::matcher::{MatchResult, Matcher, QuerySubseq, SearchOptions};
    pub use crate::metrics::{
        Counter, Hist, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, SearchTally,
    };
    pub use crate::params::Params;
    pub use crate::patient_distance::patient_distance;
    pub use crate::pipeline::{OnlinePredictor, PredictionOutcome};
    pub use crate::predict::{predict_position, predict_position_anchored, AlignMode};
    pub use crate::query::{generate_query, QueryOutcome};
    pub use crate::session::{
        external_session, CohortReport, CohortRuntime, DegradationPolicy, GatingController,
        HandleRejection, PredictionLog, PredictionTick, QueryReply, SessionConfig, SessionConsumer,
        SessionHandle, SessionHealth, SessionReport, SessionRuntime, SessionSpec, SessionStatus,
        ShardReport, ShardRouter, TrackingController,
    };
    pub use crate::similarity::{
        offline_distance, online_distance, vertex_weight, QueryCols, WindowCols, WindowScorer,
    };
    pub use crate::stability::{is_stable, stability};
    pub use crate::stream_distance::{stream_distance, StreamDistanceConfig};
    pub use crate::tracking::{simulate_tracking, TrackingStats};
    pub use crate::tuning::{CoordinateDescentTuner, TuningResult, TuningSpace};
}

pub use prelude::*;
