//! Stock consumers: prediction logging, respiration gating, beam
//! tracking — all driven by the shared per-tick prediction outcome.

use super::health::SessionHealth;
use super::runtime::{PredictionTick, SessionConsumer, SessionRuntime};
use crate::gating::{GatingAccumulator, GatingStats, GatingWindow};
use crate::pipeline::PredictionOutcome;
use crate::tracking::TrackingStats;
use std::any::Any;
use tsm_model::{PlrTrajectory, Position};

/// A consumer that records every prediction tick.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PredictionLog {
    /// Every tick, in arrival order (including abstentions).
    pub ticks: Vec<PredictionTick>,
}

impl PredictionLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// The non-abstaining outcomes, in tick order.
    pub fn outcomes(&self) -> Vec<PredictionOutcome> {
        self.ticks
            .iter()
            .filter_map(|t| t.outcome.clone())
            .collect()
    }

    /// Number of ticks with an actual prediction.
    pub fn predictions(&self) -> usize {
        self.ticks.iter().filter(|t| t.outcome.is_some()).count()
    }
}

impl SessionConsumer for PredictionLog {
    fn on_tick(&mut self, _session: &SessionRuntime, tick: &PredictionTick) {
        self.ticks.push(tick.clone());
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// A gating controller driven by the shared prediction ticks: the beam is
/// on iff the session is [`SessionHealth::Healthy`] *and* the predicted
/// position lies in the gating window. Abstention keeps the beam off,
/// and any degraded or still-recovering session fails safe to
/// beam-hold — a prediction computed across a sensor fault must never
/// turn the beam on. Each decision is scored
/// against the ground-truth trajectory at the predicted-for instant with
/// the same [`GatingAccumulator`] arithmetic as
/// [`crate::gating::simulate_gating`].
#[derive(Debug)]
pub struct GatingController {
    window: GatingWindow,
    axis: usize,
    truth: PlrTrajectory,
    acc: GatingAccumulator,
    decisions: Vec<bool>,
}

impl GatingController {
    /// Creates a controller gating on `window` along `axis`, scored
    /// against `truth`.
    pub fn new(window: GatingWindow, axis: usize, truth: PlrTrajectory) -> Self {
        GatingController {
            window,
            axis,
            truth,
            acc: GatingAccumulator::new(),
            decisions: Vec::new(),
        }
    }

    /// Every beam decision made, in tick order.
    pub fn decisions(&self) -> &[bool] {
        &self.decisions
    }

    /// The accumulated gating statistics.
    pub fn stats(&self) -> GatingStats {
        self.acc.stats()
    }
}

impl SessionConsumer for GatingController {
    fn on_tick(&mut self, session: &SessionRuntime, tick: &PredictionTick) {
        let Some(target) = tick.target_time else {
            return;
        };
        // Fail safe: only a Healthy session may turn the beam on.
        let beam = session.health() == SessionHealth::Healthy
            && tick
                .outcome
                .as_ref()
                .is_some_and(|o| self.window.contains(o.position[self.axis]));
        let truth_in = self
            .window
            .contains(self.truth.position_at(target)[self.axis]);
        self.acc.record(beam, truth_in);
        self.decisions.push(beam);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// A beam-tracking controller driven by the shared prediction ticks: a
/// prediction re-aims the beam, an abstention holds the previous aim (a
/// real MLC cannot vanish), and the instantaneous error against the
/// ground truth at the predicted-for instant is recorded. Statistics use
/// the same arithmetic as [`crate::tracking::simulate_tracking`]
/// ([`TrackingStats::from_errors`]).
#[derive(Debug)]
pub struct TrackingController {
    truth: PlrTrajectory,
    axis: usize,
    last_aim: Option<Position>,
    errors: Vec<f64>,
}

impl TrackingController {
    /// Creates a controller scored against `truth` along `axis`.
    pub fn new(truth: PlrTrajectory, axis: usize) -> Self {
        TrackingController {
            truth,
            axis,
            last_aim: None,
            errors: Vec::new(),
        }
    }

    /// The recorded instantaneous errors, in tick order.
    pub fn errors(&self) -> &[f64] {
        &self.errors
    }

    /// The accumulated tracking statistics.
    pub fn stats(&self) -> TrackingStats {
        TrackingStats::from_errors(self.errors.clone())
    }
}

impl SessionConsumer for TrackingController {
    fn on_tick(&mut self, _session: &SessionRuntime, tick: &PredictionTick) {
        if let Some(o) = &tick.outcome {
            self.last_aim = Some(o.position);
        }
        let Some(target) = tick.target_time else {
            return;
        };
        if let Some(aim) = self.last_aim {
            let e = (aim[self.axis] - self.truth.position_at(target)[self.axis]).abs();
            self.errors.push(e);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
