//! Cohort replay: N sessions against one shared store, with per-session
//! fault supervision and panic containment.

use super::consumers::PredictionLog;
use super::health::{DegradationPolicy, SessionHealth};
use super::runtime::{PredictionTick, SessionConfig, SessionRuntime};
use super::shard::{ShardReport, ShardSet};
use crate::error::TsmError;
use crate::index_cache::CachedMatcher;
use crate::matcher::{Matcher, SearchOptions};
use crate::metrics::Counter;
use crate::params::Params;
use crate::predict::AlignMode;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tsm_db::{PatientId, SharedStore, StreamStore};
use tsm_model::{Sample, SegmenterConfig};

/// One session's worth of replay input for a [`CohortRuntime`].
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// The patient the session belongs to.
    pub patient: PatientId,
    /// The session number.
    pub session: u32,
    /// The raw samples to stream through the session.
    pub samples: Vec<Sample>,
}

/// What one replayed session produced.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// The patient the session belonged to.
    pub patient: PatientId,
    /// The session number.
    pub session: u32,
    /// Every prediction tick the session fired, in order.
    pub ticks: Vec<PredictionTick>,
    /// Vertices the live buffer held at the end.
    pub vertices: usize,
    /// Raw samples consumed.
    pub samples: usize,
    /// Whether the session ran to completion (`false` only if its worker
    /// died mid-replay; the runtime then re-runs it serially).
    pub complete: bool,
    /// Why the session terminated early, if it did — a *structured*
    /// error, so callers can distinguish recoverable input faults
    /// ([`TsmError::is_recoverable`](crate::error::CoreError::is_recoverable))
    /// from fatal ones. A failed session is *not* re-run — replaying the
    /// same poisoned input would fail identically.
    pub error: Option<TsmError>,
    /// Final health of the session (Degraded for failed sessions).
    pub health: SessionHealth,
    /// Segmenter resyncs the session's ingest guard performed.
    pub resyncs: u64,
    /// Recoverable per-sample faults the supervisor absorbed.
    pub recovered_faults: usize,
}

impl SessionReport {
    /// An empty (not-yet-run) report for `spec`.
    fn empty(spec: &SessionSpec) -> Self {
        SessionReport {
            patient: spec.patient,
            session: spec.session,
            ticks: Vec::new(),
            vertices: 0,
            samples: 0,
            complete: false,
            error: None,
            health: SessionHealth::Healthy,
            resyncs: 0,
            recovered_faults: 0,
        }
    }

    /// Number of ticks with an actual prediction.
    pub fn predictions(&self) -> usize {
        self.ticks.iter().filter(|t| t.outcome.is_some()).count()
    }

    /// True when the session saw faults (absorbed samples or resyncs)
    /// yet still ran to completion.
    pub fn degraded_but_complete(&self) -> bool {
        self.complete && (self.recovered_faults > 0 || self.resyncs > 0)
    }
}

/// Aggregate outcome of a cohort replay.
#[derive(Debug, Clone)]
pub struct CohortReport {
    /// Per-session reports, in spec order.
    pub sessions: Vec<SessionReport>,
    /// Per-shard attribution, in shard order — empty on the unsharded
    /// path. The per-session reports above are identical either way;
    /// this only records *where* each session ran.
    pub shards: Vec<ShardReport>,
    /// Wall-clock time of the whole replay.
    pub wall: Duration,
}

impl CohortReport {
    /// Total prediction ticks fired across all sessions.
    pub fn total_ticks(&self) -> usize {
        self.sessions.iter().map(|s| s.ticks.len()).sum()
    }

    /// Total actual predictions across all sessions.
    pub fn total_predictions(&self) -> usize {
        self.sessions.iter().map(|s| s.predictions()).sum()
    }

    /// Aggregate prediction throughput (predictions per wall-clock
    /// second).
    pub fn predictions_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.total_predictions() as f64 / secs
        } else {
            0.0
        }
    }

    /// Sessions that terminated with an error (always fatal — the
    /// supervisor absorbs recoverable faults).
    pub fn fatal_sessions(&self) -> usize {
        self.sessions.iter().filter(|s| s.error.is_some()).count()
    }

    /// Sessions that hit faults yet completed.
    pub fn degraded_sessions(&self) -> usize {
        self.sessions
            .iter()
            .filter(|s| s.degraded_but_complete())
            .count()
    }

    /// Total recoverable faults absorbed across all sessions.
    pub fn total_recovered_faults(&self) -> usize {
        self.sessions.iter().map(|s| s.recovered_faults).sum()
    }
}

/// Drives N patient sessions against one shared store: every session is a
/// [`SessionRuntime`] whose engine depends on the regime — the one shared
/// engine when unsharded, the session's shard engine when sharded (see
/// [`CohortRuntime::with_shards`]). Each session's report travels back to
/// the collector as **one** bounded-channel message (the batched design:
/// no per-tick channel hops). Replays are read-only — the store is never
/// mutated, so serial, parallel and sharded schedules produce identical
/// per-session reports.
pub struct CohortRuntime {
    pub(super) engine: Arc<CachedMatcher>,
    pub(super) segmenter: SegmenterConfig,
    pub(super) align: AlignMode,
    pub(super) options: SearchOptions,
    pub(super) horizon: f64,
    pub(super) predict_every: usize,
    pub(super) threads: usize,
    pub(super) policy: DegradationPolicy,
    pub(super) shards: Option<ShardSet>,
    pub(super) wal: Option<Arc<tsm_db::WalWriter>>,
    pub(super) checkpoint_every: u64,
}

/// How many samples a replayed session streams between WAL group
/// commits (~8.5 s of signal at the paper's 30 Hz). Replay is a batch
/// workload with no acknowledgement contract, so commits only bound how
/// much a crash can lose — one fsync per sample would serialize the
/// whole cohort on the log.
const REPLAY_WAL_COMMIT_EVERY: usize = 256;

impl std::fmt::Debug for CohortRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CohortRuntime")
            .field("horizon", &self.horizon)
            .field("predict_every", &self.predict_every)
            .field("threads", &self.threads)
            .field("shards", &self.num_shards())
            .finish()
    }
}

impl CohortRuntime {
    /// Creates a cohort runtime with its own shared engine over `store`.
    /// Defaults: default segmenter, 0.3 s horizon, a prediction tick
    /// every 30 samples (~1 Hz at the paper's 30 Hz sampling), one
    /// thread, unsharded.
    pub fn new(store: impl Into<SharedStore>, params: Params) -> Result<Self, TsmError> {
        params.validate().map_err(TsmError::InvalidParams)?;
        Ok(Self::with_engine(Arc::new(CachedMatcher::new(
            Matcher::new(store, params),
        ))))
    }

    /// Creates a cohort runtime over an existing shared engine.
    pub fn with_engine(engine: Arc<CachedMatcher>) -> Self {
        CohortRuntime {
            engine,
            segmenter: SegmenterConfig::default(),
            align: AlignMode::default(),
            options: SearchOptions::default(),
            horizon: 0.3,
            predict_every: 30,
            threads: 1,
            policy: DegradationPolicy::default(),
            shards: None,
            wal: None,
            checkpoint_every: 0,
        }
    }

    /// Attaches a write-ahead log: every replayed session group-commits
    /// its vertices periodically (and at session end), then writes a
    /// `stored: false` end record — replay never mutates the store, so
    /// recovery treats replayed sessions as discarded rather than
    /// materializing them. A commit failure terminates the session with
    /// the non-recoverable [`TsmError::Durability`].
    pub fn with_wal(mut self, wal: Arc<tsm_db::WalWriter>) -> Self {
        self.wal = Some(wal);
        self
    }

    /// Checkpoints the WAL into a snapshot whenever at least `every`
    /// appends have accumulated since the last one (`0` disables — the
    /// default). Sharded replays check on the background maintenance
    /// worker, off the session hot path; every replay also checks once
    /// at the end.
    pub fn with_checkpoint_every(mut self, every: u64) -> Self {
        self.checkpoint_every = every;
        self
    }

    /// Runs a WAL checkpoint when the configured append threshold has
    /// been reached. Cheap no-op otherwise (two atomic-ish reads under
    /// the writer's state lock).
    pub(super) fn maybe_checkpoint(&self) {
        let Some(wal) = &self.wal else { return };
        if self.checkpoint_every == 0 || wal.appends_since_checkpoint() < self.checkpoint_every {
            return;
        }
        let metrics = self.engine.metrics();
        match wal.checkpoint(self.store()) {
            Ok(Some(report)) => {
                metrics.incr(Counter::SnapshotCheckpoints);
                metrics.add(Counter::SnapshotRecords, report.snapshot_streams);
            }
            // None: another checkpointer got there first — nothing to do.
            Ok(None) => {}
            // A failed checkpoint is retried at the next threshold
            // crossing; the WAL segments it would have compacted stay on
            // disk, so durability is unaffected.
            Err(_) => {}
        }
    }

    /// Overrides the segmenter configuration.
    pub fn with_segmenter(mut self, segmenter: SegmenterConfig) -> Self {
        self.segmenter = segmenter;
        self
    }

    /// Overrides the prediction alignment mode.
    pub fn with_align(mut self, align: AlignMode) -> Self {
        self.align = align;
        self
    }

    /// Restricts matching for every session.
    pub fn with_options(mut self, options: SearchOptions) -> Self {
        self.options = options;
        self
    }

    /// Overrides the prediction horizon.
    pub fn with_horizon(mut self, horizon: f64) -> Self {
        self.horizon = horizon;
        self
    }

    /// Overrides the prediction cadence (`0` disables ticks).
    pub fn with_cadence(mut self, every: usize) -> Self {
        self.predict_every = every;
        self
    }

    /// Sets the worker-thread count for [`CohortRuntime::replay`].
    /// Ignored while sharded ([`CohortRuntime::with_shards`]) — a sharded
    /// replay runs one worker per shard.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Overrides the degradation policy every session runs under.
    pub fn with_policy(mut self, policy: DegradationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The shared matching engine (the parent engine; shard engines are
    /// forks of it, see [`CohortRuntime::with_shards`]).
    pub fn engine(&self) -> &Arc<CachedMatcher> {
        &self.engine
    }

    /// The underlying store handle.
    pub fn store(&self) -> &StreamStore {
        self.engine.matcher().store()
    }

    /// Replays every spec to completion and returns the per-session
    /// reports in spec order.
    ///
    /// Unsharded, sessions are distributed round-robin over the worker
    /// threads; sharded, the [`super::ShardRouter`] places each session
    /// on its home shard. Either way a session's completed report comes
    /// back as one bounded-channel message and a worker panic is
    /// contained: sessions whose report never arrived are re-run
    /// serially.
    pub fn replay(&self, specs: &[SessionSpec]) -> CohortReport {
        // lint:allow(no-instant-now-in-hot-path): cohort wall-clock for
        // the report, taken once per replay — not a per-window hot path.
        let start = Instant::now();
        let (sessions, shards) = match &self.shards {
            Some(set) => self.replay_sharded(specs, set),
            None => (self.replay_unsharded(specs), Vec::new()),
        };
        let metrics = self.engine.metrics();
        metrics.add(
            Counter::CohortSessionsFailed,
            sessions.iter().filter(|s| s.error.is_some()).count() as u64,
        );
        // The largest per-session event backlog (ticks plus the terminal
        // event) any session produced — the bound a per-session streaming
        // collector would have needed, kept for capture continuity.
        if let Some(hwm) = sessions.iter().map(|s| s.ticks.len() as u64 + 1).max() {
            metrics.record_max(Counter::CohortBacklogHwm, hwm);
        }
        // End-of-replay checkpoint check (the sharded maintenance worker
        // also checks in-flight).
        self.maybe_checkpoint();
        CohortReport {
            sessions,
            shards,
            wall: start.elapsed(),
        }
    }

    /// The round-robin replay over one shared engine.
    fn replay_unsharded(&self, specs: &[SessionSpec]) -> Vec<SessionReport> {
        let threads = self.threads.min(specs.len().max(1));
        if threads <= 1 {
            return specs
                .iter()
                .map(|spec| self.drive_session(&self.engine, spec))
                .collect();
        }
        let mut batches: Vec<Vec<usize>> = (0..threads).map(|_| Vec::new()).collect();
        for i in 0..specs.len() {
            batches[i % threads].push(i);
        }
        // One bounded channel for the whole cohort: every session sends
        // exactly one report, so capacity `specs.len()` means a worker
        // can never block on the collector.
        let (tx, rx) = std::sync::mpsc::sync_channel::<(usize, SessionReport)>(specs.len());
        // lint:allow(no-silent-result-drop): the scope result is Err only
        // when a worker panicked; sessions whose report never arrived are
        // detected and re-run serially right below.
        let _ = crossbeam::thread::scope(|scope| {
            for batch in batches {
                let tx = tx.clone();
                scope.spawn(move |_| {
                    for i in batch {
                        let report = self.drive_session(&self.engine, &specs[i]);
                        // lint:allow(no-silent-result-drop): capacity
                        // covers every session and the receiver outlives
                        // the scope — a send cannot fail here.
                        let _ = tx.send((i, report));
                    }
                });
            }
        });
        drop(tx);
        let mut slots: Vec<Option<SessionReport>> = specs.iter().map(|_| None).collect();
        for (i, report) in rx {
            slots[i] = Some(report);
        }
        // Contain worker panics: re-run any session whose report is
        // missing. Sessions that *failed* (bad input) did report — their
        // error is deterministic and already recorded.
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| slot.unwrap_or_else(|| self.drive_session(&self.engine, &specs[i])))
            .collect()
    }

    /// Runs one session to completion against `engine`, collecting its
    /// ticks locally (no per-tick channel traffic), under the per-session
    /// fault supervisor: recoverable faults (bad samples) are absorbed up
    /// to the policy's budget — the session degrades and keeps streaming
    /// instead of dying. Fatal errors, and a blown budget, terminate the
    /// session with a structured error.
    pub(super) fn drive_session(
        &self,
        engine: &Arc<CachedMatcher>,
        spec: &SessionSpec,
    ) -> SessionReport {
        let mut report = SessionReport::empty(spec);
        let config = SessionConfig::new(spec.patient, spec.session)
            .with_segmenter(self.segmenter.clone())
            .with_align(self.align)
            .with_options(self.options.clone())
            .with_horizon(self.horizon)
            .with_cadence(self.predict_every)
            .with_policy(self.policy);
        // Parameters were validated when the engine was built.
        let Ok(mut runtime) = SessionRuntime::with_engine(engine.clone(), config) else {
            return report;
        };
        if let Some(wal) = &self.wal {
            runtime = runtime.with_wal(Arc::clone(wal));
        }
        runtime.add_consumer(Box::new(PredictionLog::new()));
        let mut recovered = 0usize;
        let mut error = None;
        let mut since_commit = 0usize;
        for &s in &spec.samples {
            match runtime.push(s) {
                Ok(_) => {}
                Err(e) if e.is_recoverable() && recovered < self.policy.fault_budget => {
                    recovered += 1;
                    engine.metrics().incr(Counter::CohortFaultsAbsorbed);
                }
                Err(e) => {
                    error = Some(if e.is_recoverable() {
                        TsmError::FaultBudgetExhausted {
                            absorbed: recovered,
                        }
                    } else {
                        e
                    });
                    break;
                }
            }
            since_commit += 1;
            if self.wal.is_some() && since_commit >= REPLAY_WAL_COMMIT_EVERY {
                since_commit = 0;
                if let Err(e) = runtime.wal_commit() {
                    error = Some(e);
                    break;
                }
            }
        }
        if error.is_none() {
            runtime.finish();
            // Commit the flushed tail, then mark the session closed as
            // *discarded*: replay never adds streams to the store, so a
            // recovery must not materialize it either.
            match runtime.wal_commit() {
                Ok(_) => {
                    if let Some(wal) = &self.wal {
                        // lint:allow(no-silent-result-drop): a missing end
                        // record only pins WAL segments; the next recovery
                        // reconciles it.
                        let _ = wal.append_end(
                            spec.patient.0,
                            spec.session,
                            runtime.samples_seen() as u64,
                            false,
                        );
                    }
                }
                Err(e) => error = Some(e),
            }
        }
        report.ticks = runtime
            .consumer::<PredictionLog>()
            .map(|log| log.ticks.clone())
            .unwrap_or_default();
        match error {
            Some(err) => {
                report.error = Some(err);
                report.health = SessionHealth::Degraded;
            }
            None => {
                report.vertices = runtime.live_vertices().len();
                report.samples = runtime.samples_seen();
                report.health = runtime.health();
                report.resyncs = runtime.resyncs();
                report.recovered_faults = recovered;
                report.complete = true;
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::super::{GatingController, PredictionLog, TrackingController};
    use super::*;
    use tsm_db::PatientAttributes;
    use tsm_model::{segment_signal, PlrTrajectory};
    use tsm_signal::{BreathingParams, SignalGenerator};

    fn seeded_store(seed: u64) -> (StreamStore, PatientId) {
        let store = StreamStore::new();
        let patient = store.add_patient(PatientAttributes::new());
        let samples = SignalGenerator::new(BreathingParams::default(), seed).generate(120.0);
        let vertices = segment_signal(&samples, SegmenterConfig::clean());
        let plr = PlrTrajectory::from_vertices(vertices).unwrap();
        store.add_stream(patient, 0, plr, samples.len());
        (store, patient)
    }

    fn live_samples(seed: u64, duration: f64) -> Vec<Sample> {
        SignalGenerator::new(BreathingParams::default(), seed).generate(duration)
    }

    #[test]
    fn cohort_replay_reports_per_session_and_never_mutates_the_store() {
        let (store, patient) = seeded_store(28);
        let shared = store.into_shared();
        let params = Params {
            min_matches: 1,
            ..Params::default()
        };
        let runtime = CohortRuntime::new(shared.clone(), params)
            .unwrap()
            .with_segmenter(SegmenterConfig::clean());
        let specs: Vec<SessionSpec> = (0..3)
            .map(|i| SessionSpec {
                patient,
                session: i + 1,
                samples: live_samples(29 + i as u64, 40.0),
            })
            .collect();
        let v0 = shared.version();
        let report = runtime.replay(&specs);
        assert_eq!(shared.version(), v0, "replay must be read-only");
        assert_eq!(report.sessions.len(), 3);
        assert!(report.shards.is_empty(), "unsharded replay reported shards");
        for (r, spec) in report.sessions.iter().zip(&specs) {
            assert!(r.complete);
            assert_eq!(r.session, spec.session);
            assert_eq!(r.samples, spec.samples.len());
            assert!(r.vertices > 0);
            assert!(
                r.predictions() > 0,
                "session {} abstained always",
                r.session
            );
        }
        assert_eq!(
            report.total_predictions(),
            report
                .sessions
                .iter()
                .map(|s| s.predictions())
                .sum::<usize>()
        );
    }

    #[test]
    fn cohort_parallel_matches_serial() {
        let (store, patient) = seeded_store(30);
        let params = Params {
            min_matches: 1,
            ..Params::default()
        };
        let specs: Vec<SessionSpec> = (0..3)
            .map(|i| SessionSpec {
                patient,
                session: i + 1,
                samples: live_samples(31 + i as u64, 30.0),
            })
            .collect();
        let serial = CohortRuntime::new(store.clone(), params.clone())
            .unwrap()
            .with_segmenter(SegmenterConfig::clean())
            .replay(&specs);
        let parallel = CohortRuntime::new(store, params)
            .unwrap()
            .with_segmenter(SegmenterConfig::clean())
            .with_threads(3)
            .replay(&specs);
        assert_eq!(serial.sessions, parallel.sessions);
    }

    #[test]
    fn one_poisoned_session_is_absorbed_by_the_supervisor() {
        let (store, patient) = seeded_store(34);
        let params = Params {
            min_matches: 1,
            ..Params::default()
        };
        let mut specs: Vec<SessionSpec> = (0..3)
            .map(|i| SessionSpec {
                patient,
                session: i + 1,
                samples: live_samples(35 + i as u64, 30.0),
            })
            .collect();
        // Poison the middle session with a NaN partway through.
        let mid = specs[1].samples.len() / 2;
        specs[1].samples[mid] = Sample::new_1d(specs[1].samples[mid].time, f64::NAN);
        for threads in [1, 3] {
            let report = CohortRuntime::new(store.clone(), params.clone())
                .unwrap()
                .with_segmenter(SegmenterConfig::clean())
                .with_threads(threads)
                .replay(&specs);
            assert_eq!(report.sessions.len(), 3);
            // The bad sample is a *recoverable* fault: the supervisor
            // absorbs it and the session still runs to completion.
            let bad = &report.sessions[1];
            assert!(bad.complete, "threads={threads}");
            assert!(bad.error.is_none(), "threads={threads}: {:?}", bad.error);
            assert_eq!(bad.recovered_faults, 1, "threads={threads}");
            assert!(bad.degraded_but_complete());
            for r in [&report.sessions[0], &report.sessions[2]] {
                assert!(r.complete, "threads={threads}");
                assert!(r.error.is_none());
                assert_eq!(r.recovered_faults, 0);
                assert!(r.vertices > 0);
            }
            assert_eq!(report.fatal_sessions(), 0);
            assert_eq!(report.degraded_sessions(), 1);
            assert_eq!(report.total_recovered_faults(), 1);
        }
    }

    #[test]
    fn exhausted_fault_budget_fails_with_a_structured_error() {
        let (store, patient) = seeded_store(36);
        let params = Params {
            min_matches: 1,
            ..Params::default()
        };
        let mut samples = live_samples(37, 30.0);
        let mid = samples.len() / 2;
        samples[mid] = Sample::new_1d(samples[mid].time, f64::NAN);
        let specs = [SessionSpec {
            patient,
            session: 1,
            samples,
        }];
        let report = CohortRuntime::new(store, params)
            .unwrap()
            .with_segmenter(SegmenterConfig::clean())
            .with_policy(DegradationPolicy {
                fault_budget: 0,
                ..DegradationPolicy::default()
            })
            .replay(&specs);
        let bad = &report.sessions[0];
        assert!(!bad.complete);
        assert_eq!(
            bad.error,
            Some(TsmError::FaultBudgetExhausted { absorbed: 0 })
        );
        assert_eq!(bad.health, SessionHealth::Degraded);
        assert_eq!(report.fatal_sessions(), 1);
    }

    #[test]
    fn replayed_sessions_log_as_discarded_not_stored() {
        let (store, patient) = seeded_store(60);
        let backend: Arc<dyn tsm_db::DurableBackend> = Arc::new(tsm_db::MemBackend::new());
        let wal = Arc::new(
            tsm_db::recover(Arc::clone(&backend), tsm_db::WalConfig::default())
                .unwrap()
                .writer,
        );
        let params = Params {
            min_matches: 1,
            ..Params::default()
        };
        let runtime = CohortRuntime::new(store, params)
            .unwrap()
            .with_segmenter(SegmenterConfig::clean())
            .with_wal(Arc::clone(&wal));
        let specs: Vec<SessionSpec> = (0..2)
            .map(|i| SessionSpec {
                patient,
                session: i + 1,
                samples: live_samples(61 + i as u64, 40.0),
            })
            .collect();
        let report = runtime.replay(&specs);
        assert!(report.sessions.iter().all(|s| s.complete));
        drop((runtime, wal));
        // Replay is read-only, so recovery must see the sessions closed
        // as discarded and materialize nothing.
        let rec = tsm_db::recover(backend, tsm_db::WalConfig::default()).unwrap();
        assert_eq!(rec.report.sessions_discarded, 2, "{}", rec.report);
        assert_eq!(rec.report.sessions_recovered, 0);
        assert_eq!(rec.store.num_streams(), 0);
        assert!(rec.report.last_seq > 0);
    }

    #[test]
    fn end_of_replay_checkpoint_compacts_the_log() {
        let (store, patient) = seeded_store(64);
        let backend: Arc<dyn tsm_db::DurableBackend> = Arc::new(tsm_db::MemBackend::new());
        let wal = Arc::new(
            tsm_db::recover(Arc::clone(&backend), tsm_db::WalConfig::default())
                .unwrap()
                .writer,
        );
        let params = Params {
            min_matches: 1,
            ..Params::default()
        };
        let runtime = CohortRuntime::new(store, params)
            .unwrap()
            .with_segmenter(SegmenterConfig::clean())
            .with_wal(Arc::clone(&wal))
            .with_checkpoint_every(1);
        let specs = [SessionSpec {
            patient,
            session: 1,
            samples: live_samples(65, 40.0),
        }];
        runtime.replay(&specs);
        drop((runtime, wal));
        // All sessions ended before the end-of-replay checkpoint, so the
        // snapshot covers everything: recovery starts from it and replays
        // no records — but the store image (the seeded stream) survives.
        let rec = tsm_db::recover(backend, tsm_db::WalConfig::default()).unwrap();
        assert!(rec.report.snapshot_seq.is_some(), "{}", rec.report);
        assert_eq!(rec.report.replayed_records, 0);
        assert_eq!(rec.store.num_streams(), 1);
        assert!(rec.report.features_verified);
    }

    #[test]
    fn stock_consumers_are_reexported_through_the_session_module() {
        // Compile-time check that the split kept the public surface: the
        // three stock consumers, the report types and the runtimes are
        // all nameable from `crate::session`.
        fn assert_consumer<T: super::super::SessionConsumer>() {}
        assert_consumer::<PredictionLog>();
        assert_consumer::<GatingController>();
        assert_consumer::<TrackingController>();
    }
}
