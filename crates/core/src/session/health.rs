//! Session health: the fault-driven state machine and the thresholds
//! that drive it.

use tsm_model::IngestGuardConfig;

/// Health of one live session, driven by the ingest guard's flags and
/// the [`DegradationPolicy`].
///
/// ```text
///           fault (gap, backwards time, duplicate burst,
///                  stuck run, rejected sample)
///  Healthy ────────────────────────────────────────▶ Degraded
///     ▲                                                  │
///     │ `recovery_predictions` served                    │ `recovery_vertices`
///     │ predictions                                      │ fresh vertices
///     └────────────────────────── Recovering ◀───────────┘
/// ```
///
/// While **Degraded**, prediction ticks abstain outright — the
/// post-discontinuity query is either stale (old epoch) or too short
/// (new epoch) to trust. While **Recovering**, predictions are computed
/// and reported, but safety consumers
/// ([`GatingController`](crate::session::GatingController)) still fail
/// safe to beam-hold until the session is Healthy again. Any new fault
/// drops the session straight back to Degraded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionHealth {
    /// Clean stream; predictions served, gating live.
    Healthy,
    /// A fault was observed recently; predictions abstain.
    Degraded,
    /// Enough fresh data accumulated; predictions serve again but
    /// gating still holds the beam until recovery completes.
    Recovering,
}

/// Thresholds driving the [`SessionHealth`] state machine and the
/// ingest guard in front of the segmenter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationPolicy {
    /// Largest tolerated inter-sample gap (s) before a resync.
    pub max_gap_s: f64,
    /// Per-axis position tolerance (mm) for stuck-sensor detection.
    pub stuck_epsilon_mm: f64,
    /// Consecutive unchanged samples before a stuck run is flagged.
    pub stuck_limit: usize,
    /// Fresh post-fault vertices required to move Degraded → Recovering.
    pub recovery_vertices: usize,
    /// Served predictions required to move Recovering → Healthy.
    pub recovery_predictions: usize,
    /// Recoverable per-sample faults a cohort supervisor absorbs before
    /// failing the session with
    /// [`TsmError::FaultBudgetExhausted`](crate::error::CoreError::FaultBudgetExhausted).
    pub fault_budget: usize,
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        DegradationPolicy {
            max_gap_s: 1.0,
            stuck_epsilon_mm: 0.0,
            stuck_limit: 90,
            recovery_vertices: 6,
            recovery_predictions: 3,
            fault_budget: 64,
        }
    }
}

impl DegradationPolicy {
    /// The ingest-guard thresholds this policy implies.
    pub fn ingest_guard(&self) -> IngestGuardConfig {
        IngestGuardConfig {
            max_gap_s: self.max_gap_s,
            stuck_epsilon_mm: self.stuck_epsilon_mm,
            stuck_limit: self.stuck_limit,
        }
    }
}
