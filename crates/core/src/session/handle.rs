//! Externally-driven sessions: a thread-owned [`SessionRuntime`] behind a
//! bounded command channel.
//!
//! Replay ([`super::CohortRuntime`]) owns its session loops end to end;
//! a network front-end does not — samples arrive whenever a client sends
//! them, predictions are demanded out of band, and a slow session must
//! shed load instead of wedging the thread that accepted the connection.
//! A [`SessionHandle`] packages one [`SessionRuntime`] for that shape:
//!
//! * The runtime lives on its own worker thread and is fed through an
//!   exact-capacity [`std::sync::mpsc::sync_channel`]. Every producer
//!   call uses `try_send`: a full channel is an immediate
//!   [`HandleRejection::Busy`], never a block — the admission-control
//!   primitive the serve layer maps to HTTP `429`.
//! * Per-sample faults ride the same supervisor contract as
//!   [`super::CohortRuntime`]: recoverable errors are absorbed up to
//!   [`super::DegradationPolicy::fault_budget`]
//!   (`cohort.faults_absorbed`), after which the session is marked
//!   failed (`cohort.sessions_failed`) and stops accepting ingest
//!   ([`HandleRejection::Failed`] → HTTP `503`). Queries and predictions
//!   keep working against the data already accumulated.
//! * A lock-free [`SessionStatus`] mirror (health, sample/vertex/fault
//!   tallies, queue depth) is refreshed by the worker after every
//!   command, so `/healthz` never has to queue behind ingest.

use super::health::SessionHealth;
use super::runtime::SessionRuntime;
use crate::error::TsmError;
use crate::matcher::MatchResult;
use crate::metrics::{Counter, MetricsRegistry};
use crate::pipeline::PredictionOutcome;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::Duration;

/// Why a [`SessionHandle`] call did not produce a result. The variants
/// map one-to-one onto the serve layer's load-shedding responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandleRejection {
    /// The session's command channel is full — retry shortly (HTTP 429).
    Busy,
    /// The session exhausted its fault budget and no longer accepts
    /// ingest (HTTP 503).
    Failed,
    /// The session was finished (or its worker exited) — no further
    /// commands are accepted.
    Finished,
    /// The worker did not answer within the caller's deadline; the
    /// command may still complete in the background (HTTP 429).
    Timeout,
}

impl std::fmt::Display for HandleRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HandleRejection::Busy => write!(f, "session channel full"),
            HandleRejection::Failed => write!(f, "session fault budget exhausted"),
            HandleRejection::Finished => write!(f, "session finished"),
            HandleRejection::Timeout => write!(f, "session worker timed out"),
        }
    }
}

impl HandleRejection {
    /// Whether the caller may usefully retry after a short delay
    /// (drives the serve layer's `Retry-After` and 429-vs-503 split).
    pub fn is_retryable(self) -> bool {
        matches!(self, HandleRejection::Busy | HandleRejection::Timeout)
    }
}

/// A point-in-time, lock-free view of one handled session, refreshed by
/// the worker after every command it processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionStatus {
    /// Current health of the session's ingest/prediction machinery.
    pub health: SessionHealth,
    /// Whether the fault budget is exhausted (ingest permanently
    /// rejected).
    pub failed: bool,
    /// Raw samples the runtime has consumed.
    pub samples: u64,
    /// PLR vertices in the live buffer.
    pub vertices: u64,
    /// Segmenter resyncs (stream discontinuities) observed.
    pub resyncs: u64,
    /// Recoverable faults absorbed by the supervisor so far.
    pub faults_absorbed: u64,
    /// Commands currently queued to the worker (0..=capacity).
    pub pending: u64,
}

/// The answer to a [`SessionHandle::query`] call.
#[derive(Debug, Clone)]
pub struct QueryReply {
    /// Segments in the dynamic query the matches were retrieved for.
    pub query_len: usize,
    /// The retrieved matches, best first.
    pub matches: Vec<MatchResult>,
}

enum SessionCommand {
    Ingest {
        batch: Vec<tsm_model::Sample>,
        /// When present the worker commits the batch to the session's WAL
        /// and reports the outcome *before* the caller acknowledges —
        /// the durable-ingest path. `None` is fire-and-forget.
        reply: Option<SyncSender<Result<Option<u64>, TsmError>>>,
    },
    Predict {
        dt: f64,
        reply: SyncSender<Option<PredictionOutcome>>,
    },
    Query {
        top_k: Option<usize>,
        reply: SyncSender<Option<QueryReply>>,
    },
    Finish {
        reply: SyncSender<()>,
    },
    Seal {
        reply: SyncSender<Option<tsm_db::StreamId>>,
    },
}

/// Shared between the handle (readers) and the worker (writer). All
/// fields are advisory mirrors of worker-owned state, so Relaxed
/// suffices throughout: no reader derives cross-field consistency.
struct HandleState {
    health: AtomicU8,
    failed: AtomicBool,
    samples: AtomicU64,
    vertices: AtomicU64,
    resyncs: AtomicU64,
    faults_absorbed: AtomicU64,
    pending: AtomicU64,
}

fn health_to_u8(h: SessionHealth) -> u8 {
    match h {
        SessionHealth::Healthy => 0,
        SessionHealth::Degraded => 1,
        SessionHealth::Recovering => 2,
    }
}

fn health_from_u8(v: u8) -> SessionHealth {
    match v {
        1 => SessionHealth::Degraded,
        2 => SessionHealth::Recovering,
        _ => SessionHealth::Healthy,
    }
}

/// A handle to a session driven from outside (e.g. by the serve layer):
/// non-blocking ingest, deadline-bounded predict/query, lock-free status.
///
/// Dropping the handle finishes the session: the command channel closes
/// and the worker thread is joined.
pub struct SessionHandle {
    tx: Option<SyncSender<SessionCommand>>,
    state: Arc<HandleState>,
    worker: Option<std::thread::JoinHandle<()>>,
    metrics: MetricsRegistry,
}

impl std::fmt::Debug for SessionHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionHandle")
            .field("status", &self.status())
            .finish()
    }
}

impl SessionHandle {
    /// Spawns the worker thread that owns `runtime` and returns the
    /// handle. `capacity` bounds the command channel (admission control:
    /// producers see [`HandleRejection::Busy`] when it is full); it is
    /// clamped to at least 1.
    pub fn spawn(runtime: SessionRuntime, capacity: usize) -> SessionHandle {
        let metrics = runtime.metrics().clone();
        let state = Arc::new(HandleState {
            health: AtomicU8::new(health_to_u8(runtime.health())),
            failed: AtomicBool::new(false),
            samples: AtomicU64::new(runtime.samples_seen() as u64),
            vertices: AtomicU64::new(runtime.live_vertices().len() as u64),
            resyncs: AtomicU64::new(runtime.resyncs()),
            faults_absorbed: AtomicU64::new(0),
            pending: AtomicU64::new(0),
        });
        let (tx, rx) = sync_channel(capacity.max(1));
        let worker_state = Arc::clone(&state);
        let worker_metrics = metrics.clone();
        let worker =
            std::thread::spawn(move || worker_loop(runtime, rx, worker_state, worker_metrics));
        SessionHandle {
            tx: Some(tx),
            state,
            worker: Some(worker),
            metrics,
        }
    }

    /// The current advisory status (never blocks, never queues).
    pub fn status(&self) -> SessionStatus {
        // Relaxed throughout: advisory mirror of worker-owned state;
        // readers tolerate a command's worth of skew between fields.
        SessionStatus {
            // Relaxed: see above.
            health: health_from_u8(self.state.health.load(Ordering::Relaxed)),
            failed: self.state.failed.load(Ordering::Relaxed), // Relaxed: see above.
            samples: self.state.samples.load(Ordering::Relaxed), // Relaxed: see above.
            vertices: self.state.vertices.load(Ordering::Relaxed), // Relaxed: see above.
            resyncs: self.state.resyncs.load(Ordering::Relaxed), // Relaxed: see above.
            // Relaxed: see above.
            faults_absorbed: self.state.faults_absorbed.load(Ordering::Relaxed),
            pending: self.state.pending.load(Ordering::Relaxed), // Relaxed: see above.
        }
    }

    /// Whether the session's fault budget is exhausted.
    pub fn is_failed(&self) -> bool {
        // Relaxed: advisory flag (see `status`).
        self.state.failed.load(Ordering::Relaxed)
    }

    fn send(&self, cmd: SessionCommand) -> Result<(), HandleRejection> {
        let Some(tx) = &self.tx else {
            return Err(HandleRejection::Finished);
        };
        // Count the command in *before* sending: the worker's decrement
        // races a post-send increment and would wrap the gauge past zero.
        // Relaxed: advisory queue-depth gauge (see `status`).
        let depth = self.state.pending.fetch_add(1, Ordering::Relaxed) + 1;
        match tx.try_send(cmd) {
            Ok(()) => {
                self.metrics.record_max(Counter::CohortBacklogHwm, depth);
                Ok(())
            }
            Err(e) => {
                // Relaxed: advisory queue-depth gauge (see `status`).
                self.state.pending.fetch_sub(1, Ordering::Relaxed);
                match e {
                    TrySendError::Full(_) => Err(HandleRejection::Busy),
                    TrySendError::Disconnected(_) => Err(HandleRejection::Finished),
                }
            }
        }
    }

    /// Enqueues a batch of samples for ingest. Returns as soon as the
    /// batch is queued — faults surface later through [`Self::status`].
    /// Never blocks: a full channel is [`HandleRejection::Busy`], an
    /// exhausted fault budget [`HandleRejection::Failed`].
    pub fn try_ingest(&self, batch: Vec<tsm_model::Sample>) -> Result<(), HandleRejection> {
        if self.is_failed() {
            return Err(HandleRejection::Failed);
        }
        if batch.is_empty() {
            return Ok(());
        }
        self.send(SessionCommand::Ingest { batch, reply: None })
    }

    /// Enqueues a batch of samples and waits (at most `timeout`) until
    /// the worker has pushed it *and committed it to the session's WAL* —
    /// the acknowledgement contract of a durable front-end: when this
    /// returns `Ok(Ok(..))` the batch survives a crash.
    ///
    /// The outer `Err` is admission control (busy/failed/finished/
    /// timeout, same as [`Self::try_ingest`]); the inner result is the
    /// commit outcome — `Ok(Some(seq))` with the WAL sequence number,
    /// `Ok(None)` when the batch closed no new vertices (or no WAL is
    /// attached), and `Err(TsmError::Durability)` when the log could not
    /// be written, after which the session stops accepting ingest.
    pub fn ingest_durable(
        &self,
        batch: Vec<tsm_model::Sample>,
        timeout: Duration,
    ) -> Result<Result<Option<u64>, TsmError>, HandleRejection> {
        if self.is_failed() {
            return Err(HandleRejection::Failed);
        }
        if batch.is_empty() {
            return Ok(Ok(None));
        }
        // Capacity 1: exactly one reply ever crosses this channel.
        let (reply, rx) = sync_channel(1);
        self.send(SessionCommand::Ingest {
            batch,
            reply: Some(reply),
        })?;
        rx.recv_timeout(timeout)
            .map_err(|_| HandleRejection::Timeout)
    }

    /// Ends the session, persists its live stream into the shared store
    /// (with the WAL tail commit and session-end record when a WAL is
    /// attached), and joins the worker. This is the eviction/teardown
    /// path: unlike [`Self::finish`], the session's history survives in
    /// the store and a re-created session can match against it.
    /// `Ok(None)` means the live stream never produced a valid PLR.
    pub fn seal(mut self, timeout: Duration) -> Result<Option<tsm_db::StreamId>, HandleRejection> {
        // Capacity 1: exactly one reply ever crosses this channel.
        let (reply, rx) = sync_channel(1);
        self.send(SessionCommand::Seal { reply })?;
        let outcome = rx
            .recv_timeout(timeout)
            .map_err(|_| HandleRejection::Timeout);
        self.join();
        outcome
    }

    /// Predicts the position `dt` seconds past the last closed vertex,
    /// waiting at most `timeout` for the worker. `Ok(None)` means the
    /// predictor abstained (warm-up, too few matches, degraded health).
    pub fn predict(
        &self,
        dt: f64,
        timeout: Duration,
    ) -> Result<Option<PredictionOutcome>, HandleRejection> {
        // Capacity 1: exactly one reply ever crosses this channel.
        let (reply, rx) = sync_channel(1);
        self.send(SessionCommand::Predict { dt, reply })?;
        rx.recv_timeout(timeout)
            .map_err(|_| HandleRejection::Timeout)
    }

    /// Retrieves the current top-k matches for the session's dynamic
    /// query, waiting at most `timeout` for the worker. `Ok(None)` means
    /// no query can be generated yet (live buffer too short).
    pub fn query(
        &self,
        top_k: Option<usize>,
        timeout: Duration,
    ) -> Result<Option<QueryReply>, HandleRejection> {
        // Capacity 1: exactly one reply ever crosses this channel.
        let (reply, rx) = sync_channel(1);
        self.send(SessionCommand::Query { top_k, reply })?;
        rx.recv_timeout(timeout)
            .map_err(|_| HandleRejection::Timeout)
    }

    /// Finishes the session (flushes the segmenter tail) and joins the
    /// worker, waiting at most `timeout` for commands already queued
    /// ahead of the finish to drain.
    pub fn finish(mut self, timeout: Duration) -> Result<(), HandleRejection> {
        // Capacity 1: exactly one reply ever crosses this channel.
        let (reply, rx) = sync_channel(1);
        // A full queue must not make finish spin forever; one attempt,
        // then the Drop path (channel close) finishes the session anyway.
        self.send(SessionCommand::Finish { reply })?;
        let outcome = rx
            .recv_timeout(timeout)
            .map_err(|_| HandleRejection::Timeout);
        self.join();
        outcome
    }

    fn join(&mut self) {
        self.tx = None; // close the channel; the worker loop exits
        if let Some(worker) = self.worker.take() {
            // lint:allow(no-silent-result-drop): a panicked worker
            // already recorded the session as failed; nothing to add.
            let _ = worker.join();
        }
    }
}

impl Drop for SessionHandle {
    fn drop(&mut self) {
        self.join();
    }
}

fn worker_loop(
    mut runtime: SessionRuntime,
    rx: Receiver<SessionCommand>,
    state: Arc<HandleState>,
    metrics: MetricsRegistry,
) {
    let budget = runtime.config().policy.fault_budget;
    let mut absorbed = 0usize;
    let mut failed = false;
    while let Ok(cmd) = rx.recv() {
        // Relaxed: advisory queue-depth gauge (see SessionHandle::status).
        state.pending.fetch_sub(1, Ordering::Relaxed);
        match cmd {
            SessionCommand::Ingest { batch, reply } => {
                if failed {
                    if let Some(reply) = reply {
                        // lint:allow(no-silent-result-drop): the requester
                        // may have timed out and dropped the receiver.
                        let _ = reply.try_send(Err(TsmError::FaultBudgetExhausted { absorbed }));
                    }
                    continue;
                }
                for s in batch {
                    match runtime.push(s) {
                        Ok(_) => {}
                        Err(e) if e.is_recoverable() && absorbed < budget => {
                            // Same supervisor contract as CohortRuntime::
                            // drive_session: absorb recoverable faults up
                            // to the policy budget.
                            absorbed += 1;
                            metrics.incr(Counter::CohortFaultsAbsorbed);
                        }
                        Err(_) => {
                            failed = true;
                            metrics.incr(Counter::CohortSessionsFailed);
                            // Relaxed: advisory flag (see status).
                            state.failed.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                }
                // Group commit: one WAL append (and one fsync) covers the
                // whole batch, not one per sample. Only then may a durable
                // caller acknowledge.
                let committed = runtime.wal_commit();
                if committed.is_err() && !failed {
                    // The log is torn: acknowledged data can no longer be
                    // extended durably, so the session must stop.
                    failed = true;
                    metrics.incr(Counter::CohortSessionsFailed);
                    // Relaxed: advisory flag (see status).
                    state.failed.store(true, Ordering::Relaxed);
                }
                if let Some(reply) = reply {
                    // lint:allow(no-silent-result-drop): the requester may
                    // have timed out and dropped the receiver.
                    let _ = reply.try_send(committed);
                }
            }
            SessionCommand::Predict { dt, reply } => {
                let outcome = runtime.predict(dt);
                // lint:allow(no-silent-result-drop): the requester may
                // have timed out and dropped the receiver.
                let _ = reply.try_send(outcome);
            }
            SessionCommand::Query { top_k, reply } => {
                let answer = runtime.current_query().map(|q| {
                    let mut options = runtime.config().options.clone();
                    if top_k.is_some() {
                        options.top_k = top_k;
                    }
                    let matches = runtime.engine().find_matches(&q, &options);
                    QueryReply {
                        query_len: q.len(),
                        matches,
                    }
                });
                // lint:allow(no-silent-result-drop): the requester may
                // have timed out and dropped the receiver.
                let _ = reply.try_send(answer);
            }
            SessionCommand::Finish { reply } => {
                runtime.finish();
                publish_status(&runtime, &state, absorbed);
                // lint:allow(no-silent-result-drop): the requester may
                // have timed out and dropped the receiver.
                let _ = reply.try_send(());
                return;
            }
            SessionCommand::Seal { reply } => {
                publish_status(&runtime, &state, absorbed);
                // Consumes the runtime (persists the stream + WAL end
                // record), so the worker exits here.
                let id = runtime.finish_into_store();
                // lint:allow(no-silent-result-drop): the requester may
                // have timed out and dropped the receiver.
                let _ = reply.try_send(id);
                return;
            }
        }
        publish_status(&runtime, &state, absorbed);
    }
    // Channel closed (handle dropped): flush the segmenter tail so
    // consumers observe a finished session.
    runtime.finish();
    publish_status(&runtime, &state, absorbed);
}

fn publish_status(runtime: &SessionRuntime, state: &HandleState, absorbed: usize) {
    // Relaxed throughout: advisory mirror (see SessionHandle::status).
    let health = health_to_u8(runtime.health());
    state.health.store(health, Ordering::Relaxed); // Relaxed: see above.
    let samples = runtime.samples_seen() as u64;
    state.samples.store(samples, Ordering::Relaxed); // Relaxed: see above.
    let vertices = runtime.live_vertices().len() as u64;
    state.vertices.store(vertices, Ordering::Relaxed); // Relaxed: see above.
    state.resyncs.store(runtime.resyncs(), Ordering::Relaxed); // Relaxed: see above.
    let faults = absorbed as u64;
    state.faults_absorbed.store(faults, Ordering::Relaxed); // Relaxed: see above.
}

/// Builds a runtime for `handle`-style driving. Thin convenience used by
/// the serve layer and tests: a shared-engine session with automatic
/// ticks disabled (ticks assume a single in-band driver; an external
/// driver predicts on demand instead, keeping the
/// `session.ticks == served + abstained` reconciliation intact).
pub fn external_session(
    engine: Arc<crate::index_cache::CachedMatcher>,
    config: super::runtime::SessionConfig,
) -> Result<SessionRuntime, TsmError> {
    let mut config = config;
    config.predict_every = 0;
    SessionRuntime::with_engine(engine, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index_cache::CachedMatcher;
    use crate::matcher::Matcher;
    use crate::params::Params;
    use crate::session::runtime::SessionConfig;
    use tsm_db::{PatientAttributes, PatientId, StreamStore};
    use tsm_model::{segment_signal, PlrTrajectory, Sample, SegmenterConfig};
    use tsm_signal::{BreathingParams, SignalGenerator};

    const WAIT: Duration = Duration::from_secs(10);

    fn seeded_store(seed: u64) -> (StreamStore, PatientId) {
        let store = StreamStore::new();
        let patient = store.add_patient(PatientAttributes::new());
        let samples = SignalGenerator::new(BreathingParams::default(), seed).generate(120.0);
        let vertices = segment_signal(&samples, SegmenterConfig::clean());
        let plr = PlrTrajectory::from_vertices(vertices).unwrap();
        store.add_stream(patient, 0, plr, samples.len());
        (store, patient)
    }

    fn engine(store: StreamStore) -> Arc<CachedMatcher> {
        let params = Params {
            min_matches: 1,
            ..Params::default()
        };
        Arc::new(CachedMatcher::new(
            Matcher::new(store, params).with_metrics(MetricsRegistry::enabled()),
        ))
    }

    #[test]
    fn ingest_then_query_and_predict_round_trip() {
        let (store, patient) = seeded_store(50);
        let engine = engine(store);
        let config = SessionConfig::new(patient, 1).with_segmenter(SegmenterConfig::clean());
        let runtime = external_session(Arc::clone(&engine), config).unwrap();
        let handle = SessionHandle::spawn(runtime, 64);
        let samples = SignalGenerator::new(BreathingParams::default(), 51).generate(60.0);
        let n = samples.len() as u64;
        handle.try_ingest(samples).unwrap();
        let reply = handle
            .query(Some(5), WAIT)
            .unwrap()
            .expect("warm session must produce a query");
        assert!(reply.query_len > 0);
        assert!(!reply.matches.is_empty() && reply.matches.len() <= 5);
        let outcome = handle.predict(0.3, WAIT).unwrap();
        assert!(outcome.is_some(), "warm session must predict");
        let status = handle.status();
        assert_eq!(status.samples, n);
        assert!(status.vertices > 0);
        assert_eq!(status.health, SessionHealth::Healthy);
        assert!(!status.failed);
        handle.finish(WAIT).unwrap();
        // On-demand predict/query never touch the tick counters, so the
        // registry still reconciles.
        engine.metrics().snapshot().check_invariants().unwrap();
    }

    #[test]
    fn full_channel_rejects_busy_instead_of_blocking() {
        let (store, patient) = seeded_store(52);
        let config = SessionConfig::new(patient, 1).with_segmenter(SegmenterConfig::clean());
        let runtime = external_session(engine(store), config).unwrap();
        let handle = SessionHandle::spawn(runtime, 1);
        // A long batch occupies the worker; follow-ups overflow capacity 1.
        let big = SignalGenerator::new(BreathingParams::default(), 53).generate(240.0);
        handle.try_ingest(big).unwrap();
        let mut saw_busy = false;
        for _ in 0..10_000 {
            if let Err(HandleRejection::Busy) = handle.try_ingest(vec![Sample::new_1d(1e6, 0.0)]) {
                saw_busy = true;
                break;
            }
        }
        assert!(saw_busy, "capacity-1 channel never reported Busy");
        assert!(HandleRejection::Busy.is_retryable());
        assert!(!HandleRejection::Failed.is_retryable());
    }

    #[test]
    fn fault_budget_exhaustion_marks_failed_and_rejects_ingest() {
        let (store, patient) = seeded_store(54);
        let engine = engine(store);
        let mut config = SessionConfig::new(patient, 1).with_segmenter(SegmenterConfig::clean());
        config.policy.fault_budget = 3;
        let runtime = external_session(Arc::clone(&engine), config).unwrap();
        let handle = SessionHandle::spawn(runtime, 64);
        // NaN positions are recoverable InvalidInput faults; one more
        // than the budget fails the session.
        let poison: Vec<Sample> = (0..5).map(|i| Sample::new_1d(i as f64, f64::NAN)).collect();
        handle.try_ingest(poison).unwrap();
        // The failure is asynchronous; wait for the worker to flag it.
        for _ in 0..1000 {
            if handle.is_failed() {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(handle.is_failed(), "budget exhaustion never surfaced");
        assert_eq!(
            handle.try_ingest(vec![Sample::new_1d(9.0, 1.0)]),
            Err(HandleRejection::Failed)
        );
        let status = handle.status();
        assert_eq!(status.faults_absorbed, 3);
        let snap = engine.metrics().snapshot();
        assert_eq!(snap.counter("cohort.faults_absorbed"), 3);
        assert_eq!(snap.counter("cohort.sessions_failed"), 1);
        snap.check_invariants().unwrap();
    }

    #[test]
    fn durable_ingest_acks_only_after_the_wal_commit() {
        let (store, patient) = seeded_store(58);
        let engine = engine(store.clone());
        let backend = Arc::new(tsm_db::MemBackend::new());
        let dyn_backend: Arc<dyn tsm_db::DurableBackend> = backend.clone();
        let wal = Arc::new(
            tsm_db::recover(Arc::clone(&dyn_backend), tsm_db::WalConfig::default())
                .unwrap()
                .writer,
        );
        let config = SessionConfig::new(patient, 3).with_segmenter(SegmenterConfig::clean());
        let runtime = external_session(Arc::clone(&engine), config)
            .unwrap()
            .with_wal(Arc::clone(&wal));
        let handle = SessionHandle::spawn(runtime, 64);
        let samples = SignalGenerator::new(BreathingParams::default(), 59).generate(60.0);
        let seq = handle
            .ingest_durable(samples, WAIT)
            .expect("admitted")
            .expect("committed");
        assert!(seq.is_some(), "a minute of signal must close vertices");
        // The acknowledged batch is already fsynced in the backend — the
        // op log must show a sync after the record append.
        let ops = backend.ops();
        assert!(
            ops.iter().any(|op| op.starts_with("sync(wal-")),
            "no segment fsync before the ack: {ops:?}"
        );
        // Sealing persists the stream into the shared store...
        let id = handle
            .seal(WAIT)
            .expect("sealed")
            .expect("stream persisted");
        assert_eq!(store.stream(id).unwrap().meta.session, 3);
        drop(wal);
        // ...and recovery sees the whole acknowledged session as stored.
        let rec = tsm_db::recover(dyn_backend, tsm_db::WalConfig::default()).unwrap();
        assert_eq!(rec.report.sessions_recovered, 1, "{}", rec.report);
        assert_eq!(rec.store.num_streams(), 1);
        engine.metrics().snapshot().check_invariants().unwrap();
        let snap = engine.metrics().snapshot();
        assert!(snap.counter("wal.appends") >= 1);
        assert_eq!(snap.counter("wal.appends"), snap.counter("wal.fsyncs"));
    }

    #[test]
    fn drop_finishes_the_session_cleanly() {
        let (store, patient) = seeded_store(56);
        let config = SessionConfig::new(patient, 1).with_segmenter(SegmenterConfig::clean());
        let runtime = external_session(engine(store), config).unwrap();
        let handle = SessionHandle::spawn(runtime, 8);
        handle
            .try_ingest(SignalGenerator::new(BreathingParams::default(), 57).generate(10.0))
            .unwrap();
        drop(handle); // must not hang or panic
    }
}
