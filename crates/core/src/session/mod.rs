//! The session layer: one streaming engine per live session, sharded out
//! to a cohort runtime for large session counts.
//!
//! The paper's deployment scenario (Figure 1, Sections 4.3 and 5) is a
//! *single* online loop: the tracking system delivers a sample every
//! 33 ms, the signal is segmented once, and the same evolving PLR drives
//! motion prediction, respiration gating and beam tracking. A
//! [`SessionRuntime`] is that loop as a value — it owns one guarded
//! segmenter pass per live session and fans the resulting vertex and
//! prediction events out to pluggable [`SessionConsumer`]s, all searching
//! a shared [`tsm_db::SharedStore`] handle through one
//! [`crate::index_cache::CachedMatcher`]. A prediction is computed
//! **once** per tick and every consumer sees the same outcome; the legacy
//! alternative — one full replay (segmentation + matching) per
//! application — does the matching work as many times as there are
//! applications.
//!
//! On top of a single session, a [`CohortRuntime`] replays N sessions
//! against the same store. Two scaling regimes:
//!
//! * **Unsharded** (the default, and always the case for
//!   `shards <= 1`): sessions are distributed round-robin over a small
//!   worker pool, all searching through one shared engine and one index
//!   cache. Ideal up to a few dozen sessions.
//! * **Sharded** ([`CohortRuntime::with_shards`]): a [`ShardRouter`]
//!   hashes each session's `(patient, session)` identity to one of S
//!   shard workers. Each shard owns its *own* engine handle — its own
//!   index cache and its own metrics registry — so the shared
//!   `Arc<CachedMatcher>` stops being a cross-shard contention point:
//!   no cache-mutex, no `Arc` refcount cacheline, and no metrics
//!   atomics are shared between shards on the hot path. Completed
//!   sessions are reported in per-shard batches (one bounded channel
//!   message per *session*, not per tick), and a background maintenance
//!   worker rebuilds stale feature indexes when the store version bumps,
//!   off the search path. Shard-local metrics fold back into the
//!   cohort's registry at the end of the replay
//!   ([`crate::metrics::MetricsRegistry::absorb`] — the snapshot monoid).
//!
//! Shard placement is a pure function of `(patient, session, S)`, so a
//! session always lands on the same shard across replays, and a sharded
//! replay produces the *same per-session reports* as the unsharded path
//! — enforced by the `session_equivalence` suite.
//!
//! ## Ownership rules
//!
//! * The store is shared, never copied: every runtime and every shard
//!   engine holds the same `Arc<StreamStore>`, and
//!   [`SessionRuntime::shared_store`] hands the same handle out again.
//! * Replays never mutate the store — [`CohortRuntime::replay`] is
//!   read-only, so its results are a pure function of (store contents,
//!   specs) and serial, parallel and sharded schedules cannot diverge.
//! * Persistence is explicit and terminal:
//!   [`SessionRuntime::finish_into_store`] appends the live stream once,
//!   at end of session, bumping the store version for every other holder
//!   (which is what the maintenance worker watches).

mod cohort;
mod consumers;
mod handle;
mod health;
mod runtime;
mod shard;

pub use cohort::{CohortReport, CohortRuntime, SessionReport, SessionSpec};
pub use consumers::{GatingController, PredictionLog, TrackingController};
pub use handle::{external_session, HandleRejection, QueryReply, SessionHandle, SessionStatus};
pub use health::{DegradationPolicy, SessionHealth};
pub use runtime::{PredictionTick, SessionConfig, SessionConsumer, SessionRuntime};
pub use shard::{ShardReport, ShardRouter};
