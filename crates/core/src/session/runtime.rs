//! The streaming runtime for one live session: one segmenter pass, one
//! shared-store engine, many consumers.

use super::health::{DegradationPolicy, SessionHealth};
use crate::error::TsmError;
use crate::index_cache::CachedMatcher;
use crate::matcher::{Matcher, QuerySubseq, SearchOptions};
use crate::metrics::{Counter, Hist, MetricsRegistry};
use crate::params::Params;
use crate::pipeline::PredictionOutcome;
use crate::predict::{predict_position, AlignMode};
use crate::query::generate_query;
use std::any::Any;
use std::sync::Arc;
use tsm_db::{PatientId, SharedStore, StreamId, StreamStore};
use tsm_model::{GuardedSegmenter, IngestFlag, PlrTrajectory, Sample, SegmenterConfig, Vertex};

/// Static configuration of one live session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// The patient this session belongs to (drives source-stream weights).
    pub patient: PatientId,
    /// The session number within the patient's record.
    pub session: u32,
    /// Segmenter configuration for the live signal.
    pub segmenter: SegmenterConfig,
    /// Prediction alignment mode.
    pub align: AlignMode,
    /// Search restrictions applied to every query.
    pub options: SearchOptions,
    /// Prediction horizon `Δt` in seconds (the latency to cover).
    pub horizon: f64,
    /// Fire a prediction tick every this many samples; `0` disables
    /// automatic ticks (predictions on demand via
    /// [`SessionRuntime::predict`] only).
    pub predict_every: usize,
    /// Fault-tolerance thresholds (ingest guard + health machine).
    pub policy: DegradationPolicy,
}

impl SessionConfig {
    /// A default configuration for a session of `patient`: default
    /// segmenter, 0.3 s horizon, no automatic prediction ticks.
    pub fn new(patient: PatientId, session: u32) -> Self {
        SessionConfig {
            patient,
            session,
            segmenter: SegmenterConfig::default(),
            align: AlignMode::default(),
            options: SearchOptions::default(),
            horizon: 0.3,
            predict_every: 0,
            policy: DegradationPolicy::default(),
        }
    }

    /// Overrides the segmenter configuration.
    pub fn with_segmenter(mut self, segmenter: SegmenterConfig) -> Self {
        self.segmenter = segmenter;
        self
    }

    /// Overrides the prediction alignment mode.
    pub fn with_align(mut self, align: AlignMode) -> Self {
        self.align = align;
        self
    }

    /// Restricts matching (e.g. to the patient's cluster, Section 5.3).
    pub fn with_options(mut self, options: SearchOptions) -> Self {
        self.options = options;
        self
    }

    /// Overrides the prediction horizon.
    pub fn with_horizon(mut self, horizon: f64) -> Self {
        self.horizon = horizon;
        self
    }

    /// Enables automatic prediction ticks every `every` samples (`0`
    /// disables them).
    pub fn with_cadence(mut self, every: usize) -> Self {
        self.predict_every = every;
        self
    }

    /// Overrides the fault-tolerance policy.
    pub fn with_policy(mut self, policy: DegradationPolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// One automatic prediction tick, delivered to every consumer of a
/// session. The outcome is computed once per tick; `None` means the
/// predictor abstained (warm-up, or fewer than `min_matches` similar
/// subsequences).
#[derive(Debug, Clone, PartialEq)]
pub struct PredictionTick {
    /// Zero-based index of the raw sample that triggered the tick.
    pub sample_ix: usize,
    /// Timestamp of that sample (s).
    pub time: f64,
    /// The horizon `Δt` the prediction covers (s).
    pub horizon: f64,
    /// The predicted-for instant: last closed vertex time + horizon.
    /// `None` while the live buffer holds no vertices yet.
    pub target_time: Option<f64>,
    /// The shared prediction outcome, if the predictor did not abstain.
    pub outcome: Option<PredictionOutcome>,
}

/// A consumer of one session's event stream. All methods default to
/// no-ops so a consumer implements only what it observes.
///
/// Consumers receive `&SessionRuntime` for read-only context (live
/// buffer, configuration, store) — they must not assume exclusive access
/// to anything but their own state.
pub trait SessionConsumer: Send {
    /// New vertices were appended to the live PLR buffer.
    fn on_vertices(&mut self, _session: &SessionRuntime, _new: &[Vertex]) {}

    /// An automatic prediction tick fired (see [`SessionConfig::with_cadence`]).
    fn on_tick(&mut self, _session: &SessionRuntime, _tick: &PredictionTick) {}

    /// The session ended (segmenter flushed; live buffer final).
    fn on_finish(&mut self, _session: &SessionRuntime) {}

    /// The concrete consumer, for downcasting results out of a finished
    /// runtime (see [`SessionRuntime::consumer`]).
    fn as_any(&self) -> &dyn Any;
}

impl dyn SessionConsumer {
    /// Downcasts to a concrete consumer type.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        self.as_any().downcast_ref()
    }
}

/// The streaming runtime for one live session: one segmenter pass, one
/// shared-store engine, many consumers.
pub struct SessionRuntime {
    engine: Arc<CachedMatcher>,
    segmenter: GuardedSegmenter,
    live: Vec<Vertex>,
    config: SessionConfig,
    consumers: Vec<Box<dyn SessionConsumer>>,
    samples_seen: usize,
    finished: bool,
    /// Smoother resets already flushed to the metrics registry.
    seg_resets_seen: u64,
    /// Guard resyncs already flushed to the metrics registry.
    seg_resyncs_seen: u64,
    /// Current health (see [`SessionHealth`]).
    health: SessionHealth,
    /// Index into `live` where the current epoch begins: queries are
    /// generated only from vertices after the last discontinuity, so a
    /// resync never leaks old-epoch (differently-clocked) vertices into
    /// a prediction. Zero on a clean stream.
    epoch_start: usize,
    /// Fresh vertices accumulated since the last fault (recovery gate).
    vertices_since_fault: usize,
    /// Predictions served while Recovering (recovery gate).
    served_in_recovery: usize,
    /// Write-ahead log this session commits its vertices to, if any.
    wal: Option<Arc<tsm_db::WalWriter>>,
    /// Index into `live` up to which vertices are committed to the WAL.
    wal_logged: usize,
}

impl std::fmt::Debug for SessionRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionRuntime")
            .field("patient", &self.config.patient)
            .field("session", &self.config.session)
            .field("live_vertices", &self.live.len())
            .field("samples_seen", &self.samples_seen)
            .field("consumers", &self.consumers.len())
            .field("finished", &self.finished)
            .finish()
    }
}

impl SessionRuntime {
    /// Creates a runtime with its own engine over `store`. The parameters
    /// are validated — an invalid configuration is an error, not a panic.
    pub fn new(
        store: impl Into<SharedStore>,
        params: Params,
        config: SessionConfig,
    ) -> Result<Self, TsmError> {
        params.validate().map_err(TsmError::InvalidParams)?;
        let engine = Arc::new(CachedMatcher::new(Matcher::new(store, params)));
        Self::with_engine(engine, config)
    }

    /// Creates a runtime over an existing shared engine — the
    /// multi-session configuration: every session searching through the
    /// same [`CachedMatcher`] reuses its per-length feature indexes
    /// instead of rebuilding them per session.
    pub fn with_engine(
        engine: Arc<CachedMatcher>,
        config: SessionConfig,
    ) -> Result<Self, TsmError> {
        engine
            .matcher()
            .params()
            .validate()
            .map_err(TsmError::InvalidParams)?;
        // Every successfully started session counts, whether it is driven
        // directly, through an `OnlinePredictor`, or by a cohort replay —
        // so `cohort.sessions` reconciles with the sessions that actually
        // ran (the old replay-level bulk add missed every directly-driven
        // session, which is how BENCH_pipeline captures showed 4 sessions
        // of work under `cohort.sessions: 0`).
        engine.metrics().incr(Counter::CohortSessions);
        Ok(SessionRuntime {
            segmenter: GuardedSegmenter::new(
                config.segmenter.clone(),
                config.policy.ingest_guard(),
            ),
            live: Vec::new(),
            engine,
            config,
            consumers: Vec::new(),
            samples_seen: 0,
            finished: false,
            seg_resets_seen: 0,
            seg_resyncs_seen: 0,
            health: SessionHealth::Healthy,
            epoch_start: 0,
            vertices_since_fault: 0,
            served_in_recovery: 0,
            wal: None,
            wal_logged: 0,
        })
    }

    /// Attaches a write-ahead log (builder form): from now on
    /// [`SessionRuntime::wal_commit`] appends the uncommitted tail of the
    /// live buffer to `wal`, and [`SessionRuntime::finish_into_store`]
    /// writes the session-end record after persisting the stream.
    ///
    /// The runtime never commits implicitly on `push` — the driver
    /// (session worker, cohort replay) chooses the commit boundary so one
    /// fsync can cover a whole ingest batch.
    pub fn with_wal(mut self, wal: Arc<tsm_db::WalWriter>) -> Self {
        self.wal = Some(wal);
        self
    }

    /// The attached write-ahead log, if any.
    pub fn wal(&self) -> Option<&Arc<tsm_db::WalWriter>> {
        self.wal.as_ref()
    }

    /// Live vertices not yet committed to the WAL.
    pub fn wal_pending(&self) -> usize {
        self.live.len().saturating_sub(self.wal_logged)
    }

    /// Commits the uncommitted tail of the live buffer to the WAL as one
    /// record and returns its sequence number (`Ok(None)` when no WAL is
    /// attached or nothing new has closed). The append is fsynced before
    /// this returns, so an acknowledgement sent after a successful commit
    /// guarantees the data survives a crash.
    ///
    /// A failed commit poisons the underlying writer and surfaces as the
    /// non-recoverable [`TsmError::Durability`]: the session must stop
    /// acknowledging ingest, because retrying cannot restore the torn log.
    pub fn wal_commit(&mut self) -> Result<Option<u64>, TsmError> {
        let Some(wal) = &self.wal else {
            return Ok(None);
        };
        if self.wal_logged >= self.live.len() {
            return Ok(None);
        }
        let batch = &self.live[self.wal_logged..];
        let receipt = wal
            .append_batch(
                self.config.patient.0,
                self.config.session,
                self.seg_resyncs_seen as u32,
                self.samples_seen as u64,
                batch,
            )
            .map_err(|e| TsmError::Durability(e.to_string()))?;
        self.wal_logged = self.live.len();
        let metrics = self.engine.metrics();
        metrics.incr(Counter::WalAppends);
        if receipt.fsynced {
            metrics.incr(Counter::WalFsyncs);
        }
        Ok(Some(receipt.seq))
    }

    /// The metrics registry the session records into (the engine's —
    /// disabled unless the engine's matcher was built with one).
    pub fn metrics(&self) -> &MetricsRegistry {
        self.engine.metrics()
    }

    /// Attaches a consumer (builder form).
    pub fn with_consumer(mut self, consumer: Box<dyn SessionConsumer>) -> Self {
        self.consumers.push(consumer);
        self
    }

    /// Attaches a consumer.
    pub fn add_consumer(&mut self, consumer: Box<dyn SessionConsumer>) {
        self.consumers.push(consumer);
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Mutable access to the session configuration (alignment, options,
    /// cadence can be adjusted between samples).
    pub fn config_mut(&mut self) -> &mut SessionConfig {
        &mut self.config
    }

    /// The shared matching engine.
    pub fn engine(&self) -> &Arc<CachedMatcher> {
        &self.engine
    }

    /// The underlying store handle.
    pub fn store(&self) -> &StreamStore {
        self.engine.matcher().store()
    }

    /// The shared store handle (an `Arc` clone — never a data copy).
    pub fn shared_store(&self) -> SharedStore {
        self.engine.matcher().shared_store()
    }

    /// The matching parameters in use.
    pub fn params(&self) -> &Params {
        self.engine.matcher().params()
    }

    /// The live PLR buffer accumulated so far.
    pub fn live_vertices(&self) -> &[Vertex] {
        &self.live
    }

    /// Raw samples consumed.
    pub fn samples_seen(&self) -> usize {
        self.samples_seen
    }

    /// Current session health.
    pub fn health(&self) -> SessionHealth {
        self.health
    }

    /// Segmenter resyncs the ingest guard has triggered so far.
    pub fn resyncs(&self) -> u64 {
        // `seg_resyncs_seen` mirrors the segmenter's counter after every
        // push and — unlike the segmenter, which `finish` swaps out for
        // a fresh one — survives the end of the session.
        self.seg_resyncs_seen
    }

    /// The vertices of the current epoch (since the last stream
    /// discontinuity) — the only vertices queries are built from.
    pub fn epoch_vertices(&self) -> &[Vertex] {
        &self.live[self.epoch_start.min(self.live.len())..]
    }

    /// Drops the session to Degraded and restarts the recovery gates.
    fn degrade(&mut self, metrics: &MetricsRegistry) {
        if self.health != SessionHealth::Degraded {
            metrics.incr(Counter::HealthDegraded);
        }
        self.health = SessionHealth::Degraded;
        self.vertices_since_fault = 0;
        self.served_in_recovery = 0;
    }

    /// Feeds one raw sample: segments it, notifies consumers of any
    /// vertices that closed, and — when a prediction cadence is set —
    /// computes the shared prediction tick and fans it out. Returns the
    /// newly closed vertices.
    ///
    /// Non-finite samples (NaN / ±inf) are rejected *before* they can
    /// reach the segmenter, so a corrupt tick never damages the live PLR
    /// or the shared store. Stream faults the ingest guard observes
    /// (gaps, backwards time, duplicates, stuck runs) degrade the
    /// session's [`SessionHealth`] instead of erroring: ticks abstain
    /// until enough fresh data has accumulated, then predictions resume
    /// and finally gating re-arms. On a clean stream the guard and the
    /// health machine are inert and the output is bit-identical to the
    /// unguarded runtime.
    pub fn push(&mut self, s: Sample) -> Result<&[Vertex], TsmError> {
        let metrics = self.engine.metrics().clone();
        let ix = self.samples_seen;
        self.samples_seen += 1;
        let before = self.live.len();
        let pushed = match self.segmenter.push(s) {
            Ok(p) => p,
            Err(e) => {
                metrics.incr(Counter::SamplesRejected);
                self.degrade(&metrics);
                return Err(TsmError::InvalidInput(e.to_string()));
            }
        };
        let mut duplicate = false;
        for flag in &pushed.flags {
            match flag {
                IngestFlag::DuplicateDropped { .. } => {
                    duplicate = true;
                    metrics.incr(Counter::DuplicatesDropped);
                }
                IngestFlag::StuckRun { len } if *len == self.config.policy.stuck_limit => {
                    metrics.incr(Counter::StuckRuns);
                }
                _ => {}
            }
        }
        let resynced = pushed.resynced();
        if !pushed.flags.is_empty() {
            self.degrade(&metrics);
        }
        self.live.extend(pushed.vertices);
        if !duplicate {
            metrics.incr(Counter::SegmenterSamples);
        }
        let emitted = (self.live.len() - before) as u64;
        if emitted > 0 {
            metrics.add(Counter::VerticesEmitted, emitted);
            // A state transition is a pair of consecutive vertices whose
            // states differ; count the pairs the new vertices completed.
            let start = before.saturating_sub(1);
            let transitions = self.live[start..]
                .windows(2)
                .filter(|w| w[0].state != w[1].state)
                .count() as u64;
            metrics.add(Counter::StateTransitions, transitions);
        }
        let resets = self.segmenter.smoother_resets();
        if resets > self.seg_resets_seen {
            metrics.add(Counter::SmootherResets, resets - self.seg_resets_seen);
            self.seg_resets_seen = resets;
        }
        let resyncs = self.segmenter.resyncs();
        if resyncs > self.seg_resyncs_seen {
            metrics.add(Counter::SegmenterResyncs, resyncs - self.seg_resyncs_seen);
            self.seg_resyncs_seen = resyncs;
        }
        if resynced {
            // Vertices flushed by the resync belong to the old epoch;
            // everything after this point is the new one.
            self.epoch_start = self.live.len();
        }
        if self.health == SessionHealth::Degraded {
            // Only vertices of the *new* epoch count toward recovery.
            self.vertices_since_fault += self.live.len() - self.epoch_start.max(before);
            if self.vertices_since_fault >= self.config.policy.recovery_vertices {
                self.health = SessionHealth::Recovering;
                self.served_in_recovery = 0;
                metrics.incr(Counter::HealthRecovering);
            }
        }
        // Take the consumers out so they can borrow `self` read-only.
        let mut consumers = std::mem::take(&mut self.consumers);
        if self.live.len() > before {
            for c in consumers.iter_mut() {
                c.on_vertices(self, &self.live[before..]);
            }
        }
        let every = self.config.predict_every;
        if !consumers.is_empty() && every > 0 && ix.is_multiple_of(every) && ix >= every {
            metrics.incr(Counter::SessionTicks);
            let outcome = if self.health == SessionHealth::Degraded {
                // The post-fault query is stale or too short to trust:
                // abstain without searching.
                metrics.incr(Counter::AbstainedUnhealthy);
                None
            } else {
                let tick_start = metrics.start();
                let outcome = self.predict(self.config.horizon);
                metrics.observe_since(Hist::TickLatency, tick_start);
                outcome
            };
            metrics.incr(if outcome.is_some() {
                Counter::PredictionsServed
            } else {
                Counter::PredictionsAbstained
            });
            let tick = PredictionTick {
                sample_ix: ix,
                time: s.time,
                horizon: self.config.horizon,
                target_time: self.live.last().map(|v| v.time + self.config.horizon),
                outcome,
            };
            for c in consumers.iter_mut() {
                let dispatch_start = metrics.start();
                c.on_tick(self, &tick);
                metrics.observe_since(Hist::ConsumerDispatch, dispatch_start);
            }
            if self.health == SessionHealth::Recovering && tick.outcome.is_some() {
                self.served_in_recovery += 1;
                if self.served_in_recovery >= self.config.policy.recovery_predictions {
                    // Transition *after* dispatch: gating held the beam
                    // through the tick that completed recovery.
                    self.health = SessionHealth::Healthy;
                    metrics.incr(Counter::HealthRecovered);
                }
            }
        }
        self.consumers = consumers;
        Ok(&self.live[before..])
    }

    /// Builds the current dynamic query, if the current epoch of the
    /// live buffer is long enough.
    pub fn current_query(&self) -> Option<QuerySubseq> {
        let epoch = self.epoch_vertices();
        let outcome = generate_query(epoch, self.params())?;
        Some(
            QuerySubseq::new(outcome.vertices(epoch).to_vec())
                .with_origin(self.config.patient, self.config.session),
        )
    }

    /// Predicts the position `dt` seconds after the last closed vertex.
    ///
    /// Returns `None` until the current epoch holds at least `L_min`
    /// segments, or when fewer than `min_matches` similar subsequences
    /// are found (the paper abstains rather than guess). Queries never
    /// span a stream discontinuity: only vertices after the last resync
    /// are considered (on a clean stream that is the whole buffer).
    pub fn predict(&self, dt: f64) -> Option<PredictionOutcome> {
        let params = self.params();
        let epoch = self.epoch_vertices();
        let outcome = generate_query(epoch, params)?;
        let query = QuerySubseq::new(outcome.vertices(epoch).to_vec())
            .with_origin(self.config.patient, self.config.session);
        let matches = self.engine.find_matches(&query, &self.config.options);
        let position = predict_position(
            self.store(),
            &query,
            &matches,
            dt,
            params,
            self.config.align,
        )?;
        Some(PredictionOutcome {
            position,
            num_matches: matches.len(),
            query_len: outcome.len,
            query_stable: outcome.stable,
        })
    }

    /// Ends the session: flushes the segmenter tail into the live buffer
    /// and notifies consumers. Idempotent; does **not** touch the store.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let before = self.live.len();
        // The segmenter's flush consumes it; swap in an idle replacement.
        let segmenter = std::mem::replace(
            &mut self.segmenter,
            GuardedSegmenter::new(
                self.config.segmenter.clone(),
                self.config.policy.ingest_guard(),
            ),
        );
        self.live.extend(segmenter.finish());
        let emitted = (self.live.len() - before) as u64;
        if emitted > 0 {
            self.engine.metrics().add(Counter::VerticesEmitted, emitted);
        }
        let mut consumers = std::mem::take(&mut self.consumers);
        if self.live.len() > before {
            for c in consumers.iter_mut() {
                c.on_vertices(self, &self.live[before..]);
            }
        }
        for c in consumers.iter_mut() {
            c.on_finish(self);
        }
        self.consumers = consumers;
    }

    /// Ends the session and persists the live stream into the shared
    /// store so future sessions can match against it (this is the one
    /// store mutation a session performs; it bumps the store version seen
    /// by every other holder). Returns `None` when the live stream never
    /// produced a valid PLR.
    /// When a WAL is attached, the segmenter tail flushed by `finish` is
    /// committed first, then — after the store accepted (or rejected) the
    /// stream — a session-end record marks the session closed so future
    /// checkpoints no longer need to retain its log records. WAL failures
    /// here are swallowed: everything *acknowledged* was already committed
    /// per-batch (drivers that must observe commit errors call
    /// [`SessionRuntime::wal_commit`] before sealing), and a missing end
    /// record merely pins WAL segments until the next recovery.
    pub fn finish_into_store(mut self) -> Option<StreamId> {
        self.finish();
        // lint:allow(no-silent-result-drop): best-effort flush — every
        // acknowledged batch was already committed by the per-batch path
        let _ = self.wal_commit();
        let id = PlrTrajectory::from_vertices(std::mem::take(&mut self.live))
            .ok()
            .and_then(|plr| {
                self.store()
                    .try_add_stream(
                        self.config.patient,
                        self.config.session,
                        plr,
                        self.samples_seen,
                    )
                    .ok()
            });
        if let Some(wal) = &self.wal {
            // lint:allow(no-silent-result-drop): a lost end record only
            // pins WAL segments until the next recovery pass (doc above)
            let _ = wal.append_end(
                self.config.patient.0,
                self.config.session,
                self.samples_seen as u64,
                id.is_some(),
            );
        }
        id
    }

    /// The attached consumers.
    pub fn consumers(&self) -> &[Box<dyn SessionConsumer>] {
        &self.consumers
    }

    /// The first attached consumer of concrete type `T`, for reading
    /// results back out (e.g. a
    /// [`GatingController`](crate::session::GatingController)'s
    /// statistics).
    pub fn consumer<T: Any>(&self) -> Option<&T> {
        self.consumers.iter().find_map(|c| c.downcast_ref::<T>())
    }

    /// Detaches and returns all consumers.
    pub fn into_consumers(self) -> Vec<Box<dyn SessionConsumer>> {
        self.consumers
    }
}

#[cfg(test)]
mod tests {
    use super::super::consumers::{GatingController, PredictionLog};
    use super::*;
    use crate::gating::GatingWindow;
    use tsm_db::PatientAttributes;
    use tsm_model::segment_signal;
    use tsm_signal::{BreathingParams, SignalGenerator};

    fn seeded_store(seed: u64) -> (StreamStore, PatientId) {
        let store = StreamStore::new();
        let patient = store.add_patient(PatientAttributes::new());
        let samples = SignalGenerator::new(BreathingParams::default(), seed).generate(120.0);
        let vertices = segment_signal(&samples, SegmenterConfig::clean());
        let plr = PlrTrajectory::from_vertices(vertices).unwrap();
        store.add_stream(patient, 0, plr, samples.len());
        (store, patient)
    }

    fn live_samples(seed: u64, duration: f64) -> Vec<Sample> {
        SignalGenerator::new(BreathingParams::default(), seed).generate(duration)
    }

    #[test]
    fn invalid_params_are_an_error_not_a_panic() {
        let (store, patient) = seeded_store(21);
        let params = Params {
            delta: 0.0,
            ..Params::default()
        };
        let err = SessionRuntime::new(
            store.clone(),
            params.clone(),
            SessionConfig::new(patient, 1),
        );
        assert!(matches!(err, Err(TsmError::InvalidParams(_))));
        assert!(matches!(
            super::super::CohortRuntime::new(store, params),
            Err(TsmError::InvalidParams(_))
        ));
    }

    #[test]
    fn ticks_fire_on_cadence_and_share_one_outcome() {
        let (store, patient) = seeded_store(22);
        let params = Params {
            min_matches: 1,
            ..Params::default()
        };
        let config = SessionConfig::new(patient, 1)
            .with_segmenter(SegmenterConfig::clean())
            .with_cadence(30);
        let mut runtime = SessionRuntime::new(store, params, config)
            .unwrap()
            .with_consumer(Box::new(PredictionLog::new()))
            .with_consumer(Box::new(PredictionLog::new()));
        let samples = live_samples(23, 60.0);
        for &s in &samples {
            runtime.push(s).unwrap();
        }
        let logs: Vec<&PredictionLog> = runtime
            .consumers()
            .iter()
            .filter_map(|c| c.downcast_ref::<PredictionLog>())
            .collect();
        assert_eq!(logs.len(), 2);
        // Cadence: one tick per 30 samples, starting at sample 30.
        let expected = (samples.len() - 1) / 30;
        assert_eq!(logs[0].ticks.len(), expected);
        assert!(logs[0].predictions() > 5);
        // Both consumers saw the *same* outcomes.
        assert_eq!(logs[0].ticks, logs[1].ticks);
    }

    #[test]
    fn runtime_predictions_match_manual_predict_calls() {
        let (store, patient) = seeded_store(24);
        let params = Params {
            min_matches: 1,
            ..Params::default()
        };
        let shared = store.into_shared();
        let config = SessionConfig::new(patient, 1)
            .with_segmenter(SegmenterConfig::clean())
            .with_cadence(30);
        let mut auto = SessionRuntime::new(shared.clone(), params.clone(), config.clone())
            .unwrap()
            .with_consumer(Box::new(PredictionLog::new()));
        let mut manual =
            SessionRuntime::new(shared, params, config.clone().with_cadence(0)).unwrap();
        let mut manual_outcomes = Vec::new();
        for (i, &s) in live_samples(25, 60.0).iter().enumerate() {
            auto.push(s).unwrap();
            manual.push(s).unwrap();
            if i % 30 == 0 && i >= 30 {
                if let Some(o) = manual.predict(config.horizon) {
                    manual_outcomes.push(o);
                }
            }
        }
        let log = auto.consumer::<PredictionLog>().unwrap();
        assert_eq!(log.outcomes(), manual_outcomes);
    }

    #[test]
    fn finish_into_store_bumps_version_for_all_handles() {
        let (store, patient) = seeded_store(26);
        let shared = store.into_shared();
        let params = Params {
            min_matches: 1,
            ..Params::default()
        };
        let a = SessionRuntime::new(
            shared.clone(),
            params.clone(),
            SessionConfig::new(patient, 1).with_segmenter(SegmenterConfig::clean()),
        )
        .unwrap();
        let mut b = SessionRuntime::new(
            shared.clone(),
            params,
            SessionConfig::new(patient, 2).with_segmenter(SegmenterConfig::clean()),
        )
        .unwrap();
        // Both runtimes observe the same version counter...
        let v0 = a.store().version();
        assert_eq!(b.store().version(), v0);
        // ...and one runtime persisting is visible to the other.
        for &s in &live_samples(27, 60.0) {
            b.push(s).unwrap();
        }
        let streams_before = a.store().num_streams();
        b.finish_into_store().expect("stream persisted");
        assert_eq!(a.store().num_streams(), streams_before + 1);
        assert!(a.store().version() > v0);
        assert_eq!(a.store().version(), shared.version());
    }

    #[test]
    fn durable_session_recovers_bit_identically_from_the_wal() {
        let (store, patient) = seeded_store(90);
        let backend: Arc<dyn tsm_db::DurableBackend> = Arc::new(tsm_db::MemBackend::new());
        let wal = Arc::new(
            tsm_db::recover(Arc::clone(&backend), tsm_db::WalConfig::default())
                .unwrap()
                .writer,
        );
        let params = Params {
            min_matches: 1,
            ..Params::default()
        };
        let config = SessionConfig::new(patient, 7).with_segmenter(SegmenterConfig::clean());
        let mut runtime = SessionRuntime::new(store.clone(), params, config)
            .unwrap()
            .with_wal(Arc::clone(&wal));
        for s in live_samples(91, 60.0) {
            runtime.push(s).unwrap();
        }
        assert!(runtime.wal_pending() > 0, "no vertices closed");
        let seq = runtime.wal_commit().unwrap();
        assert!(seq.is_some(), "commit with pending vertices must append");
        assert_eq!(runtime.wal_pending(), 0);
        // Committing again with nothing new appends no empty record.
        assert_eq!(runtime.wal_commit().unwrap(), None);
        let id = runtime.finish_into_store().expect("stream persisted");
        let live = store.stream(id).unwrap();
        drop(wal);
        // Recover from the log alone: the acknowledged session comes back
        // bit-identical to what the live store accepted.
        let rec = tsm_db::recover(backend, tsm_db::WalConfig::default()).unwrap();
        assert_eq!(rec.report.sessions_recovered, 1, "{}", rec.report);
        assert!(!rec.report.truncated_tail);
        assert_eq!(rec.store.num_streams(), 1);
        let recovered = &rec.store.streams()[0];
        assert_eq!(recovered.meta.session, 7);
        assert_eq!(recovered.plr, live.plr);
        assert_eq!(recovered.raw_len, live.raw_len);
    }

    #[test]
    fn non_finite_tick_is_rejected_without_damaging_the_session() {
        let (store, patient) = seeded_store(32);
        let config = SessionConfig::new(patient, 1).with_segmenter(SegmenterConfig::clean());
        let mut runtime = SessionRuntime::new(store, Params::default(), config).unwrap();
        let samples = live_samples(33, 30.0);
        for &s in &samples[..samples.len() / 2] {
            runtime.push(s).unwrap();
        }
        let vertices_before = runtime.live_vertices().len();
        let seen_before = runtime.samples_seen();
        let err = runtime
            .push(Sample::new_1d(1e9, f64::NAN))
            .expect_err("NaN tick must be rejected");
        assert!(matches!(err, TsmError::InvalidInput(_)), "{err:?}");
        let err = runtime
            .push(Sample::new_1d(f64::INFINITY, 1.0))
            .expect_err("non-finite timestamp must be rejected");
        assert!(matches!(err, TsmError::InvalidInput(_)), "{err:?}");
        // The poisoned ticks left no trace in the live buffer and the
        // session keeps accepting good samples afterwards.
        assert_eq!(runtime.live_vertices().len(), vertices_before);
        assert_eq!(runtime.samples_seen(), seen_before + 2);
        for &s in &samples[samples.len() / 2..] {
            runtime.push(s).unwrap();
        }
        runtime.finish();
        assert!(runtime.live_vertices().len() >= vertices_before);
    }

    #[test]
    fn health_machine_degrades_abstains_and_recovers() {
        let (store, patient) = seeded_store(38);
        let params = Params {
            min_matches: 1,
            ..Params::default()
        };
        let config = SessionConfig::new(patient, 1)
            .with_segmenter(SegmenterConfig::clean())
            .with_cadence(30);
        let mut runtime = SessionRuntime::new(store, params, config)
            .unwrap()
            .with_consumer(Box::new(PredictionLog::new()));
        let samples = live_samples(39, 120.0);
        let mid = samples.len() / 2;
        for &s in &samples[..mid] {
            runtime.push(s).unwrap();
        }
        assert_eq!(runtime.health(), SessionHealth::Healthy);
        let healthy_predictions = runtime.consumer::<PredictionLog>().unwrap().predictions();
        assert!(healthy_predictions > 0, "warm-up produced no predictions");
        // A 5 s acquisition dropout: the guard resyncs the segmenter and
        // the session degrades.
        let gap = 5.0;
        let t_resume = samples[mid].time + gap;
        let mut ticks_while_degraded = 0usize;
        let mut saw_recovering = false;
        for (i, &s) in samples[mid..].iter().enumerate() {
            let shifted = Sample::new_1d(s.time + gap, s.position[0]);
            runtime.push(shifted).unwrap();
            match runtime.health() {
                SessionHealth::Degraded => {
                    if (mid + i).is_multiple_of(30) {
                        ticks_while_degraded += 1;
                    }
                }
                SessionHealth::Recovering => saw_recovering = true,
                SessionHealth::Healthy => {}
            }
        }
        assert_eq!(runtime.resyncs(), 1, "gap must resync exactly once");
        assert!(saw_recovering, "session never entered Recovering");
        assert_eq!(
            runtime.health(),
            SessionHealth::Healthy,
            "session did not recover from a transient gap"
        );
        assert!(ticks_while_degraded > 0, "gap produced no degraded ticks");
        // Degraded ticks abstained: outcome is None on each of them.
        let log = runtime.consumer::<PredictionLog>().unwrap();
        let degraded_ticks: Vec<_> = log
            .ticks
            .iter()
            .filter(|t| t.time >= t_resume && t.outcome.is_none())
            .collect();
        assert!(
            degraded_ticks.len() >= ticks_while_degraded,
            "expected >= {ticks_while_degraded} abstaining ticks, got {}",
            degraded_ticks.len()
        );
        // And predictions resumed after recovery.
        assert!(log.predictions() > healthy_predictions);
    }

    #[test]
    fn gating_fails_safe_while_unhealthy() {
        let (store, patient) = seeded_store(40);
        let params = Params {
            min_matches: 1,
            ..Params::default()
        };
        let config = SessionConfig::new(patient, 1)
            .with_segmenter(SegmenterConfig::clean())
            .with_cadence(30);
        let samples = live_samples(41, 120.0);
        let truth =
            PlrTrajectory::from_vertices(segment_signal(&samples, SegmenterConfig::clean()))
                .unwrap();
        // A window so wide every prediction falls inside it: any beam-off
        // tick below is the health gate, not the window.
        let window = GatingWindow {
            center: 0.0,
            width: 1e9,
        };
        let mut runtime = SessionRuntime::new(store, params, config)
            .unwrap()
            .with_consumer(Box::new(GatingController::new(window, 0, truth)));
        let beam_on = |rt: &SessionRuntime| {
            rt.consumer::<GatingController>()
                .unwrap()
                .decisions()
                .iter()
                .filter(|&&b| b)
                .count()
        };
        let ticks_seen =
            |rt: &SessionRuntime| rt.consumer::<GatingController>().unwrap().decisions().len();
        let mid = samples.len() / 2;
        for &s in &samples[..mid] {
            runtime.push(s).unwrap();
        }
        let on_mid = beam_on(&runtime);
        let ticks_mid = ticks_seen(&runtime);
        assert!(on_mid > 0, "no beam-on during warm-up");
        let gap = 5.0;
        let mut checked_degraded_tick = false;
        for &s in &samples[mid..] {
            let shifted = Sample::new_1d(s.time + gap, s.position[0]);
            runtime.push(shifted).unwrap();
            if runtime.health() != SessionHealth::Healthy && ticks_seen(&runtime) > ticks_mid {
                // Every tick since the fault must have held the beam.
                checked_degraded_tick = true;
                assert_eq!(
                    beam_on(&runtime),
                    on_mid,
                    "beam fired while session was {:?}",
                    runtime.health()
                );
            }
        }
        assert!(
            checked_degraded_tick,
            "fault window produced no ticks to check"
        );
        // After recovery the beam re-arms.
        assert!(beam_on(&runtime) > on_mid);
    }
}
