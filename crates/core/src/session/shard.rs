//! Sharding: deterministic session placement, per-shard engines, and the
//! background index-maintenance worker.

use super::cohort::{CohortRuntime, SessionReport, SessionSpec};
use crate::index_cache::CachedMatcher;
use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tsm_db::PatientId;

/// SplitMix64: a full-period mixing function, so placement spreads even
/// pathologically regular `(patient, session)` identities evenly.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic session → shard placement: a pure function of
/// `(patient, session, shard count)`. A session therefore lands on the
/// same shard in every replay of the same cohort runtime, and two
/// runtimes configured with the same shard count agree on placement. The
/// router is deliberately *immutable* — there is no resize API, so the
/// one thing that would silently re-home sessions mid-cohort is
/// unrepresentable; pick a new shard count by building a new runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: usize,
}

impl ShardRouter {
    /// A router over `shards` shards (clamped to at least 1).
    pub fn new(shards: usize) -> Self {
        ShardRouter {
            shards: shards.max(1),
        }
    }

    /// The shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The home shard of `(patient, session)` — always `0` for a single
    /// shard.
    pub fn route(&self, patient: PatientId, session: u32) -> usize {
        let key = (u64::from(patient.0) << 32) | u64::from(session);
        (splitmix64(key) % self.shards as u64) as usize
    }
}

/// Where each session of one replay ran, per shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardReport {
    /// The shard index.
    pub shard: usize,
    /// Spec indices routed to this shard, ascending.
    pub sessions: Vec<usize>,
    /// Index (re)builds this shard's cache performed during the replay,
    /// including maintenance rebuilds.
    pub rebuilds: u64,
}

/// The sharded half of a [`CohortRuntime`]: the router plus one engine
/// per shard. Every engine is a fork of the parent — same store `Arc`,
/// same parameters — but owns its *own* index cache and its own metrics
/// registry, so shard workers never contend on a shared cache mutex or
/// shared counter cachelines. Engines persist across replays: indexes
/// stay warm, and the maintenance pass refreshes them when the store
/// version moves between replays.
pub(super) struct ShardSet {
    pub(super) router: ShardRouter,
    pub(super) engines: Vec<Arc<CachedMatcher>>,
}

impl ShardSet {
    fn build(parent: &Arc<CachedMatcher>, shards: usize) -> ShardSet {
        let engines = (0..shards)
            .map(|_| {
                let registry = if parent.metrics().is_enabled() {
                    MetricsRegistry::enabled()
                } else {
                    MetricsRegistry::disabled()
                };
                Arc::new(CachedMatcher::new(
                    parent.matcher().fork_with_metrics(registry),
                ))
            })
            .collect();
        ShardSet {
            router: ShardRouter::new(shards),
            engines,
        }
    }
}

impl CohortRuntime {
    /// Shards the cohort over `shards` independent workers (see
    /// [`ShardRouter`] for placement). `shards <= 1` keeps the unsharded
    /// runtime — one shard *is* the unsharded regime, so the two are
    /// identical by construction, not merely by test.
    ///
    /// Sharding changes scheduling and cache ownership only: per-session
    /// reports are bit-identical to the unsharded path (enforced by the
    /// `session_equivalence` suite).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = if shards <= 1 {
            None
        } else {
            Some(ShardSet::build(&self.engine, shards))
        };
        self
    }

    /// The configured shard count (1 when unsharded).
    pub fn num_shards(&self) -> usize {
        self.shards.as_ref().map_or(1, |set| set.router.shards())
    }

    /// The sharded replay: one worker per shard, each driving its routed
    /// sessions against its own engine, plus a maintenance worker that
    /// refreshes stale indexes whenever the store version moves — so a
    /// version bump never forces a rebuild inside a search call.
    pub(super) fn replay_sharded(
        &self,
        specs: &[SessionSpec],
        set: &ShardSet,
    ) -> (Vec<SessionReport>, Vec<ShardReport>) {
        let shards = set.router.shards();
        let rebuilds_before: Vec<u64> = set
            .engines
            .iter()
            .map(|e| e.cache().rebuild_count())
            .collect();
        let snapshots: Vec<MetricsSnapshot> =
            set.engines.iter().map(|e| e.metrics().snapshot()).collect();
        // Synchronous maintenance pass first: if the store version moved
        // since the last replay, every warm index is refreshed *here*,
        // deterministically, before any search can trip over a stale
        // entry. The in-flight daemon below only matters for stores that
        // grow mid-replay (an external writer) — replay itself is
        // read-only.
        for engine in &set.engines {
            engine.cache().refresh_stale();
        }
        let mut batches: Vec<Vec<usize>> = (0..shards).map(|_| Vec::new()).collect();
        for (i, spec) in specs.iter().enumerate() {
            batches[set.router.route(spec.patient, spec.session)].push(i);
        }
        let shard_sessions = batches.clone();
        let mut slots: Vec<Option<SessionReport>> = specs.iter().map(|_| None).collect();
        if !specs.is_empty() {
            // One bounded channel for the whole cohort: every session
            // sends exactly one report, so capacity `specs.len()` means a
            // shard worker can never block on the collector.
            let (tx, rx) = std::sync::mpsc::sync_channel::<(usize, SessionReport)>(specs.len());
            let stop = AtomicBool::new(false);
            // lint:allow(no-silent-result-drop): the scope result is Err
            // only when a worker panicked; sessions whose report never
            // arrived are detected and re-run serially right below.
            let _ = crossbeam::thread::scope(|scope| {
                for (shard, batch) in batches.into_iter().enumerate() {
                    let tx = tx.clone();
                    let engine = &set.engines[shard];
                    scope.spawn(move |_| {
                        for i in batch {
                            let report = self.drive_session(engine, &specs[i]);
                            // lint:allow(no-silent-result-drop): capacity
                            // covers every session and the receiver
                            // outlives the scope — a send cannot fail.
                            let _ = tx.send((i, report));
                        }
                    });
                }
                // The maintenance worker: polls the store version and
                // refreshes stale indexes off the search path. It parks
                // between polls instead of sleeping so the stop signal
                // below can wake it immediately — a replay never pays a
                // poll interval of shutdown tail.
                let stop = &stop;
                let daemon = scope.spawn(move |_| {
                    let store = self.engine.matcher().shared_store();
                    let mut seen = store.version();
                    // Poll with exponential backoff: a quiet store is the
                    // steady state, and a daemon waking every millisecond
                    // would preempt shard workers for nothing. A version
                    // bump resets the interval to 1 ms for quick repair
                    // of follow-up writes.
                    let mut interval = Duration::from_millis(1);
                    const MAX_INTERVAL: Duration = Duration::from_millis(64);
                    // Relaxed: the flag is a pure stop signal with no
                    // data published alongside it; the scope join below
                    // is the synchronization point.
                    while !stop.load(Ordering::Relaxed) {
                        let version = store.version();
                        if version != seen {
                            seen = version;
                            for engine in &set.engines {
                                engine.cache().refresh_stale();
                            }
                            interval = Duration::from_millis(1);
                        } else {
                            interval = (interval * 2).min(MAX_INTERVAL);
                        }
                        // WAL checkpointing shares the maintenance worker:
                        // snapshot compaction runs off the session hot
                        // path, just like index repair.
                        self.maybe_checkpoint();
                        std::thread::park_timeout(interval);
                    }
                });
                // Drain on the calling thread while shard workers stream
                // one report per session; the iteration ends when every
                // worker has finished (or unwound) and dropped its
                // sender.
                drop(tx);
                for (i, report) in rx {
                    slots[i] = Some(report);
                }
                // Relaxed: stop signal only (see the load above).
                stop.store(true, Ordering::Relaxed);
                daemon.thread().unpark();
            });
        }
        // Contain worker panics: re-run any session whose report is
        // missing, on its *home shard's* engine so cache state and
        // metrics attribution stay per-shard.
        let sessions: Vec<SessionReport> = slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.unwrap_or_else(|| {
                    let shard = set.router.route(specs[i].patient, specs[i].session);
                    self.drive_session(&set.engines[shard], &specs[i])
                })
            })
            .collect();
        // Fold every shard's interval work back into the parent registry
        // (the snapshot monoid): counters add, gauges max-merge.
        let parent = self.engine.metrics();
        if parent.is_enabled() {
            for (engine, before) in set.engines.iter().zip(&snapshots) {
                parent.absorb(&engine.metrics().snapshot().diff(before));
            }
        }
        let shard_reports = shard_sessions
            .into_iter()
            .enumerate()
            .map(|(shard, sessions)| ShardReport {
                shard,
                sessions,
                rebuilds: set.engines[shard].cache().rebuild_count() - rebuilds_before[shard],
            })
            .collect();
        (sessions, shard_reports)
    }
}

#[cfg(test)]
mod tests {
    use super::super::cohort::CohortRuntime;
    use super::*;
    use crate::params::Params;
    use tsm_db::{PatientAttributes, StreamStore};
    use tsm_model::{segment_signal, PlrTrajectory, Sample, SegmenterConfig};
    use tsm_signal::{BreathingParams, SignalGenerator};

    fn seeded_store(seed: u64) -> (StreamStore, PatientId) {
        let store = StreamStore::new();
        let patient = store.add_patient(PatientAttributes::new());
        let samples = SignalGenerator::new(BreathingParams::default(), seed).generate(120.0);
        let vertices = segment_signal(&samples, SegmenterConfig::clean());
        let plr = PlrTrajectory::from_vertices(vertices).unwrap();
        store.add_stream(patient, 0, plr, samples.len());
        (store, patient)
    }

    fn live_samples(seed: u64, duration: f64) -> Vec<Sample> {
        SignalGenerator::new(BreathingParams::default(), seed).generate(duration)
    }

    #[test]
    fn router_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 3, 4, 7, 16] {
            let router = ShardRouter::new(shards);
            let again = ShardRouter::new(shards);
            for p in 0..40u32 {
                for s in 0..8u32 {
                    let shard = router.route(PatientId(p), s);
                    assert!(shard < shards);
                    assert_eq!(shard, again.route(PatientId(p), s));
                }
            }
        }
        // Single shard routes everything to 0.
        assert_eq!(ShardRouter::new(0).shards(), 1);
        assert_eq!(ShardRouter::new(1).route(PatientId(7), 3), 0);
    }

    #[test]
    fn router_spreads_regular_identities() {
        // Sequential patients with sequential session numbers — the most
        // regular cohort shape — must still land on every shard.
        let shards = 8;
        let router = ShardRouter::new(shards);
        let mut counts = vec![0usize; shards];
        for p in 0..64u32 {
            for s in 1..5u32 {
                counts[router.route(PatientId(p), s)] += 1;
            }
        }
        let total: usize = counts.iter().sum();
        assert_eq!(total, 256);
        for (shard, &n) in counts.iter().enumerate() {
            assert!(n > 0, "shard {shard} received no sessions");
            assert!(n < total / 2, "shard {shard} received {n}/{total} sessions");
        }
    }

    #[test]
    fn sharded_replay_matches_unsharded_reports() {
        let (store, patient) = seeded_store(50);
        let shared = store.into_shared();
        let params = Params {
            min_matches: 1,
            ..Params::default()
        };
        let specs: Vec<SessionSpec> = (0..6)
            .map(|i| SessionSpec {
                patient,
                session: i + 1,
                samples: live_samples(51 + i as u64, 30.0),
            })
            .collect();
        let unsharded = CohortRuntime::new(shared.clone(), params.clone())
            .unwrap()
            .with_segmenter(SegmenterConfig::clean())
            .with_threads(3)
            .replay(&specs);
        let runtime = CohortRuntime::new(shared, params)
            .unwrap()
            .with_segmenter(SegmenterConfig::clean())
            .with_shards(3);
        assert_eq!(runtime.num_shards(), 3);
        let sharded = runtime.replay(&specs);
        assert_eq!(unsharded.sessions, sharded.sessions);
        // Shard attribution covers every session exactly once, on its
        // routed home shard.
        assert_eq!(sharded.shards.len(), 3);
        let mut seen: Vec<usize> = sharded
            .shards
            .iter()
            .flat_map(|s| s.sessions.iter().copied())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..specs.len()).collect::<Vec<_>>());
        let router = ShardRouter::new(3);
        for shard in &sharded.shards {
            for &i in &shard.sessions {
                assert_eq!(
                    router.route(specs[i].patient, specs[i].session),
                    shard.shard
                );
            }
        }
    }

    #[test]
    fn with_one_shard_is_the_unsharded_runtime() {
        let (store, _) = seeded_store(54);
        let runtime = CohortRuntime::new(store, Params::default())
            .unwrap()
            .with_shards(1);
        assert_eq!(runtime.num_shards(), 1);
        assert!(runtime.shards.is_none(), "one shard must not fork engines");
    }
}
