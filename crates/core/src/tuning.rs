//! Automatic parameter tuning (paper Section 8: "One ongoing project is
//! automatic dynamic parameter tuning, in which the system will learn the
//! proper parameter settings from training data and adapt them during
//! online operation").
//!
//! The paper set Table 1 by hand, one parameter at a time: "we first
//! fixed all the other parameters ... run experiments with different
//! values ... finally \[the parameter\] is fixed to the value with the best
//! prediction results. Later, the fixed \[value\] is used to determine the
//! values of other parameters." [`CoordinateDescentTuner`] automates
//! exactly that procedure — cyclic coordinate descent over a per-parameter
//! candidate grid, driven by any user-supplied objective (typically mean
//! prediction error on a training cohort) — and adds multi-pass cycling
//! until no parameter moves.

use crate::params::Params;
use serde::{Deserialize, Serialize};

/// The parameters the tuner may adjust, with their candidate grids.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningSpace {
    /// Candidates for the frequency weight `wf` (the paper keeps
    /// `wa = 1` as the scale anchor, so only the ratio is tuned).
    pub wf: Vec<f64>,
    /// Candidates for the vertex-weight base `wi`.
    pub wi_base: Vec<f64>,
    /// Candidates for the same-patient source weight (same-session stays
    /// at 1.0 as the anchor of the tier ordering).
    pub ws_same_patient: Vec<f64>,
    /// Candidates for the other-patient source weight.
    pub ws_other_patient: Vec<f64>,
    /// Candidates for the distance threshold δ.
    pub delta: Vec<f64>,
    /// Candidates for the stability threshold θ.
    pub theta: Vec<f64>,
}

impl Default for TuningSpace {
    fn default() -> Self {
        TuningSpace {
            wf: vec![0.0, 0.1, 0.25, 0.5, 1.0],
            wi_base: vec![0.5, 0.65, 0.8, 1.0],
            ws_same_patient: vec![0.5, 0.7, 0.9, 1.0],
            ws_other_patient: vec![0.1, 0.3, 0.5, 0.9],
            delta: vec![0.5, 1.0, 2.0, 4.0, 8.0],
            theta: vec![0.25, 1.0, 6.0],
        }
    }
}

/// Which parameter a step touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TunedParameter {
    /// `wf`.
    Wf,
    /// `wi_base`.
    WiBase,
    /// `ws_same_patient`.
    WsSamePatient,
    /// `ws_other_patient`.
    WsOtherPatient,
    /// `delta`.
    Delta,
    /// `theta`.
    Theta,
}

impl TunedParameter {
    /// All tunable parameters, in the order the paper fixed them
    /// (distance weights first, then thresholds).
    pub const ALL: [TunedParameter; 6] = [
        TunedParameter::Wf,
        TunedParameter::WiBase,
        TunedParameter::WsSamePatient,
        TunedParameter::WsOtherPatient,
        TunedParameter::Delta,
        TunedParameter::Theta,
    ];

    fn candidates<'a>(&self, space: &'a TuningSpace) -> &'a [f64] {
        match self {
            TunedParameter::Wf => &space.wf,
            TunedParameter::WiBase => &space.wi_base,
            TunedParameter::WsSamePatient => &space.ws_same_patient,
            TunedParameter::WsOtherPatient => &space.ws_other_patient,
            TunedParameter::Delta => &space.delta,
            TunedParameter::Theta => &space.theta,
        }
    }

    fn get(&self, p: &Params) -> f64 {
        match self {
            TunedParameter::Wf => p.wf,
            TunedParameter::WiBase => p.wi_base,
            TunedParameter::WsSamePatient => p.ws_same_patient,
            TunedParameter::WsOtherPatient => p.ws_other_patient,
            TunedParameter::Delta => p.delta,
            TunedParameter::Theta => p.theta,
        }
    }

    fn set(&self, p: &mut Params, v: f64) {
        match self {
            TunedParameter::Wf => p.wf = v,
            TunedParameter::WiBase => p.wi_base = v,
            TunedParameter::WsSamePatient => p.ws_same_patient = v,
            TunedParameter::WsOtherPatient => p.ws_other_patient = v,
            TunedParameter::Delta => p.delta = v,
            TunedParameter::Theta => p.theta = v,
        }
    }
}

/// One evaluated tuning step (for the tuning log).
#[derive(Debug, Clone, PartialEq)]
pub struct TuningStep {
    /// Which parameter was swept.
    pub parameter: TunedParameter,
    /// The value selected.
    pub chosen: f64,
    /// The objective at the selected value.
    pub objective: f64,
}

/// Result of a tuning run.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningResult {
    /// The tuned parameters.
    pub params: Params,
    /// The best objective value observed.
    pub objective: f64,
    /// The full step log, in evaluation order.
    pub log: Vec<TuningStep>,
    /// Number of objective evaluations spent.
    pub evaluations: usize,
}

/// Cyclic coordinate descent over [`TuningSpace`].
#[derive(Debug, Clone)]
pub struct CoordinateDescentTuner {
    space: TuningSpace,
    max_passes: usize,
}

impl CoordinateDescentTuner {
    /// A tuner over the given space; `max_passes` bounds the number of
    /// full cycles through the parameter list.
    pub fn new(space: TuningSpace, max_passes: usize) -> Self {
        CoordinateDescentTuner {
            space,
            max_passes: max_passes.max(1),
        }
    }

    /// Runs the paper's procedure: for each parameter in turn, sweep its
    /// candidates with everything else fixed, keep the best; repeat until
    /// a full pass changes nothing (or `max_passes` is reached).
    ///
    /// `objective` maps parameters to a cost (lower is better) — e.g.
    /// mean prediction error on a training cohort. Candidate settings
    /// that fail [`Params::validate`] are skipped.
    pub fn tune(&self, start: Params, mut objective: impl FnMut(&Params) -> f64) -> TuningResult {
        let mut best = start;
        let mut best_cost = objective(&best);
        let mut evaluations = 1;
        let mut log = Vec::new();

        for _pass in 0..self.max_passes {
            let mut changed = false;
            for param in TunedParameter::ALL {
                let current = param.get(&best);
                let mut chosen = current;
                let mut chosen_cost = best_cost;
                for &candidate in param.candidates(&self.space) {
                    if (candidate - current).abs() < 1e-12 {
                        continue;
                    }
                    let mut trial = best.clone();
                    param.set(&mut trial, candidate);
                    if trial.validate().is_err() {
                        continue;
                    }
                    let cost = objective(&trial);
                    evaluations += 1;
                    if cost + 1e-12 < chosen_cost {
                        chosen = candidate;
                        chosen_cost = cost;
                    }
                }
                if (chosen - current).abs() > 1e-12 {
                    param.set(&mut best, chosen);
                    best_cost = chosen_cost;
                    changed = true;
                }
                log.push(TuningStep {
                    parameter: param,
                    chosen,
                    objective: chosen_cost,
                });
            }
            if !changed {
                break;
            }
        }

        TuningResult {
            params: best,
            objective: best_cost,
            log,
            evaluations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic objective with a known optimum inside the default
    /// space: quadratic bowls around target values.
    fn bowl(p: &Params) -> f64 {
        (p.wf - 0.25).powi(2)
            + (p.wi_base - 0.8).powi(2)
            + (p.ws_same_patient - 0.9).powi(2)
            + (p.ws_other_patient - 0.3).powi(2)
            + ((p.delta - 2.0) / 8.0).powi(2)
            + ((p.theta - 1.0) / 6.0).powi(2)
    }

    #[test]
    fn finds_the_bowl_minimum() {
        let tuner = CoordinateDescentTuner::new(TuningSpace::default(), 4);
        let start = Params {
            wf: 1.0,
            wi_base: 0.5,
            ws_same_patient: 0.5,
            ws_other_patient: 0.9,
            delta: 8.0,
            theta: 6.0,
            ..Params::default()
        };
        let result = tuner.tune(start, bowl);
        assert_eq!(result.params.wf, 0.25);
        assert_eq!(result.params.wi_base, 0.8);
        assert_eq!(result.params.ws_same_patient, 0.9);
        assert_eq!(result.params.ws_other_patient, 0.3);
        assert_eq!(result.params.delta, 2.0);
        assert_eq!(result.params.theta, 1.0);
        assert!(result.objective < 1e-9);
        result.params.validate().unwrap();
    }

    #[test]
    fn never_returns_invalid_params() {
        // An adversarial objective that rewards invalid orderings: the
        // tuner must skip candidates that break validation (e.g.
        // ws_other_patient > ws_same_patient).
        let tuner = CoordinateDescentTuner::new(TuningSpace::default(), 3);
        let result = tuner.tune(Params::default(), |p| -p.ws_other_patient);
        result.params.validate().unwrap();
        assert!(result.params.ws_other_patient <= result.params.ws_same_patient);
    }

    #[test]
    fn stops_when_converged() {
        let tuner = CoordinateDescentTuner::new(TuningSpace::default(), 50);
        let result = tuner.tune(Params::default(), bowl);
        // Convergence after a couple of passes, nowhere near
        // 50 * |params| * |candidates| evaluations.
        assert!(
            result.evaluations < 4 * 6 * 5,
            "{} evaluations",
            result.evaluations
        );
    }

    #[test]
    fn log_records_every_parameter_each_pass() {
        let tuner = CoordinateDescentTuner::new(TuningSpace::default(), 1);
        let result = tuner.tune(Params::default(), bowl);
        assert_eq!(result.log.len(), TunedParameter::ALL.len());
    }

    #[test]
    fn objective_only_improves_along_the_log() {
        let tuner = CoordinateDescentTuner::new(TuningSpace::default(), 4);
        let result = tuner.tune(Params::default(), bowl);
        for w in result.log.windows(2) {
            assert!(
                w[1].objective <= w[0].objective + 1e-12,
                "objective went up along the log"
            );
        }
    }
}
