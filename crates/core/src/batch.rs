//! The batched (8-lane) f32 pruning tier of the columnar matcher.
//!
//! [`WindowScorer`](crate::similarity::WindowScorer) walks one candidate
//! window at a time in f64. This module splits that work into two
//! vectorizable passes over the [`tsm_db::Mirror32`] columns, using
//! hand-rolled `F32x8` lane structs (plain `[f32; 8]` operations the
//! autovectorizer lowers to SIMD on stable Rust — no `std::simd`, no
//! `unsafe`):
//!
//! * [`BatchScorer::match_mask`] runs the state-order gate over the
//!   **whole stream** at once (one query state against every window
//!   offset per pass — the classic transposed substring filter), so the
//!   two thirds of windows that fail the gate never reach any per-window
//!   code at all;
//! * [`BatchScorer::score_starts`] scores up to eight gate-passing
//!   windows per pass in f32, with early abandoning lifted to the *lane
//!   group*: the accumulation loop exits only when **every** lane's
//!   partial sum proves its distance exceeds the caller's bound;
//! * a lane whose full f32 sum stays at or below its inflated limit is a
//!   **survivor** and must be re-scored by the exact f64 scorer — so the
//!   final result set stays bit-identical to the scalar engine.
//!
//! # Admissibility
//!
//! A lane may be classified `Pruned` only if its exact f64 numerator
//! provably exceeds `bound · Σwi · ws`. The f32 partial sum differs from
//! that numerator by (a) narrowing error of the query and candidate
//! columns — bounded *absolutely* by the per-window conversion slack
//! assembled from the query-side weighted error sum and the mirror's
//! error-prefix sums — and (b) f32 arithmetic rounding, bounded
//! *relatively* by `(1 + u)^k` with `u = 2^-24` and `k ≤ 2n + 16`
//! rounded operations affecting any term. The lane limit is therefore
//!
//! ```text
//! limit32 = f32_above((bound · Σwi · ws + slack) · rel),   rel ≥ (1+u)^(2n+16)
//! ```
//!
//! so `partial32 > limit32` implies the exact numerator exceeds
//! `bound · Σwi · ws` (see `tests/matcher_properties.rs` for the
//! property-level proof obligation). One limit is shared by **every**
//! window of a stream, computed with the whole stream's conversion
//! slack — the error-prefix sums are monotone, so the stream slack
//! dominates each window's own and the shared limit stays admissible per
//! lane while the engine hoists it out of the per-group loop. Whenever
//! the limit would overflow f32 it saturates to `+∞` and the lane simply
//! never prunes. A lane whose partial goes NaN (only possible via
//! `0 · ∞` under zero weights with overflowing diffs) compares false
//! against any limit and falls back to `Survivor` — the exact rescan
//! keeps it correct.

use crate::params::{AmplitudeMetric, Params};
use crate::similarity::QueryCols;
use std::sync::OnceLock;
use tsm_db::{f32_above, Mirror32, StreamFeatures};

/// Candidate windows scored per batched pass.
pub const LANES: usize = 8;

/// Group-abandon cadence: the all-lanes-over check runs every this many
/// accumulated 8-position chunks (i.e. every `8 · CHECK_EVERY` query
/// segments — short queries just run straight through).
const CHECK_EVERY: usize = 4;

/// Lane limits at or above this saturate to `+∞` (the lane never prunes):
/// close enough to `f32::MAX` that a representable inflated limit is not
/// guaranteed, far enough that everything practical stays exact.
const LIMIT_CEIL: f64 = (f32::MAX / 2.0) as f64;

/// Eight f32 lanes as a plain array. Every op is a straight-line loop
/// over the lanes with no early exit, which LLVM reliably lowers to
/// vector instructions in release builds.
#[derive(Debug, Clone, Copy)]
struct F32x8([f32; LANES]);

impl F32x8 {
    #[inline(always)]
    fn splat(v: f32) -> Self {
        F32x8([v; LANES])
    }

    /// The first eight entries of `s` as a vector (one bounds check,
    /// then a straight contiguous copy LLVM turns into a vector load).
    #[inline(always)]
    fn load(s: &[f32]) -> Self {
        let mut a = [0f32; LANES];
        a.copy_from_slice(&s[..LANES]);
        F32x8(a)
    }

    /// `|self - o|` per lane.
    #[inline(always)]
    fn abs_diff(self, o: F32x8) -> Self {
        let mut a = self.0;
        for (x, &y) in a.iter_mut().zip(&o.0) {
            *x = (*x - y).abs();
        }
        F32x8(a)
    }

    /// `acc += w * self` per lane.
    #[inline(always)]
    fn mul_add_into(self, w: F32x8, acc: &mut F32x8) {
        for l in 0..LANES {
            acc.0[l] += w.0[l] * self.0[l];
        }
    }

    /// Whether every lane strictly exceeds the other's (branchless
    /// reduction; NaN lanes compare false).
    #[inline(always)]
    fn all_gt(self, o: F32x8) -> bool {
        let mut over = true;
        for l in 0..LANES {
            over &= self.0[l] > o.0[l];
        }
        over
    }
}

/// Which scoring tier a search uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoringMode {
    /// Resolve once per process: the `TSM_SCORING` environment variable
    /// (`scalar` or `batched`) wins, otherwise a one-shot timing probe
    /// picks whichever tier is faster on this machine.
    #[default]
    Auto,
    /// Always the exact one-window-at-a-time f64 scorer.
    Scalar,
    /// Route through the 8-lane f32 pruning kernel (exact f64 rescans
    /// keep results bit-identical to `Scalar`).
    Batched,
}

impl ScoringMode {
    /// Parses a CLI/env spelling of the mode.
    pub fn parse(s: &str) -> Option<ScoringMode> {
        match s {
            "auto" => Some(ScoringMode::Auto),
            "scalar" => Some(ScoringMode::Scalar),
            "batched" => Some(ScoringMode::Batched),
            _ => None,
        }
    }

    /// The canonical spelling of the mode.
    pub fn as_str(self) -> &'static str {
        match self {
            ScoringMode::Auto => "auto",
            ScoringMode::Scalar => "scalar",
            ScoringMode::Batched => "batched",
        }
    }

    /// Whether searches under this mode route through the batched kernel.
    pub fn use_batched(self) -> bool {
        match self {
            ScoringMode::Scalar => false,
            ScoringMode::Batched => true,
            ScoringMode::Auto => *AUTO_BATCHED.get_or_init(resolve_auto),
        }
    }
}

static AUTO_BATCHED: OnceLock<bool> = OnceLock::new();

fn resolve_auto() -> bool {
    if let Ok(v) = std::env::var("TSM_SCORING") {
        match ScoringMode::parse(v.trim()) {
            Some(ScoringMode::Scalar) => return false,
            Some(ScoringMode::Batched) => return true,
            _ => {}
        }
    }
    probe_prefers_batched()
}

/// One-shot calibration probe for [`ScoringMode::Auto`]: times the scalar
/// scorer against the batched kernel on a fixed synthetic workload shaped
/// like the matching benches (a 9-segment query over a periodic stream —
/// two thirds of the windows state-mismatch, the rest split between far
/// and near amplitudes) and returns whether batched won. Falls back to
/// batched if the fixture cannot be built (results are identical either
/// way; only throughput differs).
fn probe_prefers_batched() -> bool {
    use crate::similarity::{WindowCols, WindowScorer};
    let params = Params::default();
    let Some((sf, cols)) = probe_fixture(&params) else {
        return true;
    };
    let Some(bq) = BatchQuery::build(&cols, &params) else {
        return true;
    };
    let n = cols.len();
    let total = sf.num_segments() - n + 1;
    let bound = 2.0; // mid-range: some windows abandon, some complete
    let mut scorer = WindowScorer::new();
    let mut batcher = BatchScorer::new();
    let mut starts: Vec<usize> = Vec::with_capacity(total);

    let time = |f: &mut dyn FnMut()| {
        let mut best = u64::MAX;
        for _ in 0..3 {
            // lint:allow(no-instant-now-in-hot-path): one-shot calibration
            // probe, executed at most once per process by the OnceLock.
            let t0 = std::time::Instant::now();
            f();
            best = best.min(t0.elapsed().as_nanos() as u64);
        }
        best
    };

    let scalar_ns = time(&mut || {
        for start in 0..total {
            let end = start + n;
            let cand = WindowCols {
                states: &sf.states[start..end],
                disp: &sf.disp[start..end],
                dvec: &sf.dvec[start..end],
                dur: &sf.dur[start..end],
            };
            std::hint::black_box(scorer.score_window_outcome(&cols, cand, &params, 1.0, bound));
        }
    });

    let batched_ns = time(&mut || {
        let mask = batcher.match_mask(&bq, &sf);
        starts.clear();
        starts.extend((0..total).filter(|&j| mask[j] == 0));
        for chunk in starts.chunks(LANES) {
            let g = batcher.score_starts(&bq, &sf, chunk, 1.0, bound);
            for (l, &start) in chunk.iter().enumerate() {
                if g.lanes[l] == LaneOutcome::Survivor {
                    let end = start + n;
                    let cand = WindowCols {
                        states: &sf.states[start..end],
                        disp: &sf.disp[start..end],
                        dvec: &sf.dvec[start..end],
                        dur: &sf.dur[start..end],
                    };
                    std::hint::black_box(
                        scorer.score_window_outcome(&cols, cand, &params, 1.0, bound),
                    );
                }
            }
            std::hint::black_box(&g);
        }
    });

    batched_ns < scalar_ns
}

/// Builds the probe's synthetic stream and query columns.
fn probe_fixture(params: &Params) -> Option<(StreamFeatures, QueryCols)> {
    use tsm_db::{MotionStream, PatientId, StreamId, StreamMeta};
    use tsm_model::{BreathState, PlrTrajectory, Vertex};
    let states = [
        BreathState::Exhale,
        BreathState::EndOfExhale,
        BreathState::Inhale,
    ];
    let nseg = 255usize;
    let mut verts = Vec::with_capacity(nseg + 1);
    for i in 0..=nseg {
        // Deterministic pseudo-amplitudes: mostly near 8 mm (near the
        // query), every 11th cycle far off so the prune tier has work.
        let h = (i as u32).wrapping_mul(2_654_435_761) >> 22;
        let amp = if i % 11 == 0 {
            25.0 + (h % 97) as f64 * 0.1
        } else {
            8.0 + (h % 97) as f64 * 0.01
        };
        let level = if i % 2 == 0 { amp } else { 0.0 };
        verts.push(Vertex::new_1d(i as f64, level, states[i % 3]));
    }
    let plr = PlrTrajectory::from_vertices(verts).ok()?;
    let stream = MotionStream {
        meta: StreamMeta {
            id: StreamId(0),
            patient: PatientId(0),
            session: 0,
        },
        plr,
        raw_len: 0,
    };
    let sf = StreamFeatures::build(&stream, params.axis);
    let qverts: Vec<Vertex> = (0..=9)
        .map(|j| {
            let level = if j % 2 == 0 { 8.3 } else { 0.1 };
            Vertex::new_1d(j as f64, level, states[j % 3])
        })
        .collect();
    let cols = QueryCols::build(&qverts, params)?;
    Some((sf, cols))
}

/// How one lane of an exact-rescoring group fared (see
/// [`BatchScorer::rescore_exact`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RescanOutcome {
    /// Padding lane (group had fewer than [`LANES`] candidates).
    Inactive,
    /// Early-abandoned at the caller's bound — the identical decision the
    /// scalar [`WindowScorer`](crate::similarity::WindowScorer) makes.
    Abandoned,
    /// Completed with the exact distance, bit-identical to the scalar
    /// scorer's (which may still marginally exceed the bound — callers
    /// re-check against δ).
    Scored(f64),
}

/// How one lane of a batched group fared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneOutcome {
    /// Padding lane (group had fewer than [`LANES`] candidates).
    Inactive,
    /// The f32 partial sum proved the exact distance exceeds the bound —
    /// the window is dismissed without ever touching f64.
    Pruned,
    /// The f32 tier could not dismiss the window: re-score it with the
    /// exact f64 scorer.
    Survivor,
}

/// Result of scoring one lane group.
#[derive(Debug, Clone, Copy)]
pub struct GroupResult {
    /// Per-lane outcomes (lanes past the candidate count are
    /// [`LaneOutcome::Inactive`]).
    pub lanes: [LaneOutcome; LANES],
}

/// The query side of the batched kernel: narrowed columns, premultiplied
/// f32 weights, and the constants of the admissibility argument. `None`
/// from [`BatchQuery::build`] means the query cannot use the f32 tier
/// (spatial amplitude metric, non-finite narrowed values, or negative
/// weights) and the engine must stay scalar.
#[derive(Debug, Clone)]
pub struct BatchQuery {
    n: usize,
    states: Vec<u8>,
    disp32: Vec<f32>,
    dur32: Vec<f32>,
    /// `wa · wi(i)` narrowed to f32 (the amplitude-term coefficient).
    wa_wi32: Vec<f32>,
    /// `wf · wi(i)` narrowed to f32 (the frequency-term coefficient).
    wf_wi32: Vec<f32>,
    wsum: f64,
    wa: f64,
    wf: f64,
    /// `max_i wi(i)` — scales the candidate-side conversion-error sums
    /// (which the mirror stores unweighted) up to a weighted bound.
    wmax: f64,
    /// Query-side weighted conversion slack:
    /// `Σ wi(i)·(wa·|disp[i]−disp32[i]| + wf·|dur[i]−dur32[i]|)`.
    q_slack: f64,
    /// Multiplicative rounding margin `≥ (1+2^-24)^(2n+16)`.
    rel: f64,
}

impl BatchQuery {
    /// Narrows the query columns for the f32 tier.
    pub fn build(cols: &QueryCols, params: &Params) -> Option<Self> {
        if params.amplitude_metric != AmplitudeMetric::Axis {
            return None; // spatial terms need Position vectors
        }
        if !(params.wa >= 0.0 && params.wf >= 0.0) {
            return None; // negative weights break term monotonicity
        }
        let n = cols.len();
        let mut q = BatchQuery {
            n,
            states: cols.states.clone(),
            disp32: Vec::with_capacity(n),
            dur32: Vec::with_capacity(n),
            wa_wi32: Vec::with_capacity(n),
            wf_wi32: Vec::with_capacity(n),
            wsum: cols.wsum,
            wa: params.wa,
            wf: params.wf,
            wmax: 0.0,
            q_slack: 0.0,
            rel: 1.0 + (2 * n + 16) as f64 * 7e-8 + 1e-9,
        };
        let mut finite = true;
        for i in 0..n {
            let d32 = cols.disp[i] as f32;
            let t32 = cols.dur[i] as f32;
            let wa_wi = (params.wa * cols.wi[i]) as f32;
            let wf_wi = (params.wf * cols.wi[i]) as f32;
            finite &= d32.is_finite()
                && t32.is_finite()
                && wa_wi.is_finite()
                && wf_wi.is_finite()
                && cols.wi[i] >= 0.0;
            q.q_slack += cols.wi[i]
                * (params.wa * (cols.disp[i] - d32 as f64).abs()
                    + params.wf * (cols.dur[i] - t32 as f64).abs());
            q.wmax = q.wmax.max(cols.wi[i]);
            q.disp32.push(d32);
            q.dur32.push(t32);
            q.wa_wi32.push(wa_wi);
            q.wf_wi32.push(wf_wi);
        }
        if !finite {
            return None;
        }
        Some(q)
    }

    /// Number of query segments.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false (built from a non-degenerate [`QueryCols`]).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The admissible f32 abandon limit for one window (or the whole
    /// span of a lane group): the exact numerator bound plus the span's
    /// conversion slack, inflated by the rounding margin and rounded *up*
    /// into f32. Saturates to `+∞` (never prune) when it would leave the
    /// exactly-representable range.
    #[inline]
    fn lane_limit(&self, m: &Mirror32, start: usize, len: usize, limit_exact: f64) -> f32 {
        let slack = self.q_slack
            + self.wmax
                * (self.wa * m.amp_err_sum(start, len) + self.wf * m.dur_err_sum(start, len));
        let v = ((limit_exact + slack) * self.rel).max(0.0);
        if v < LIMIT_CEIL {
            f32_above(v)
        } else {
            f32::INFINITY
        }
    }

    /// An admissible f32 abandon limit shared by **every** window of one
    /// stream: the slack over the whole stream dominates any window's own
    /// (the error-prefix sums are monotone), so one limit per
    /// `(stream, ws, bound)` stays admissible everywhere and the engine
    /// can hoist it out of the per-group loop. The conversion-error sums
    /// are microscopic next to any practical bound, so the extra slack
    /// does not measurably weaken pruning.
    pub fn stream_limit(&self, sf: &StreamFeatures, ws: f64, bound: f64) -> f32 {
        self.lane_limit(&sf.mirror32, 0, sf.num_segments(), bound * self.wsum * ws)
    }
}

/// The batched scorer: the state-gate scratch column plus the lane
/// kernel. The engine threads one per worker (mirroring
/// [`WindowScorer`]'s shape) so the scratch allocation is reused across
/// every stream of a search.
///
/// [`WindowScorer`]: crate::similarity::WindowScorer
#[derive(Debug, Default)]
pub struct BatchScorer {
    /// Per-window-start gate verdicts for the stream most recently passed
    /// to [`BatchScorer::match_mask`] (`0` = states match the query).
    mask: Vec<u8>,
    /// Lane-major f64 term buffer for [`BatchScorer::rescore_exact`]
    /// (entry `[i][l]` holds term `i` of lane `l`), the batched analogue
    /// of [`WindowScorer`](crate::similarity::WindowScorer)'s scratch.
    terms64: Vec<[f64; LANES]>,
}

impl BatchScorer {
    /// A fresh scorer.
    pub fn new() -> Self {
        BatchScorer::default()
    }

    /// The transposed state-order gate over one whole stream: entry `j`
    /// of the returned mask is `0` iff the window starting at segment `j`
    /// has exactly the query's state sequence. Window starts are walked
    /// in blocks of 16; within a block the query positions run in a
    /// fixed-width inner loop (a compare-and-OR over a `[u8; 16]`
    /// register block, the autovectorizer's favorite shape), so the gate
    /// costs `n · nseg` byte ops for the *entire stream* with the
    /// per-loop setup paid once per block instead of once per query
    /// position. Requires `sf.num_segments() >= q.len()`.
    pub fn match_mask(&mut self, q: &BatchQuery, sf: &StreamFeatures) -> &[u8] {
        const BLOCK: usize = 16;
        let total = sf.num_segments() + 1 - q.n;
        self.mask.clear();
        self.mask.resize(total, 0);
        let states = &sf.states;
        let mut j = 0;
        while j + BLOCK <= total {
            let mut acc = [0u8; BLOCK];
            for (i, &qs) in q.states.iter().enumerate() {
                let col = &states[j + i..j + i + BLOCK];
                for (a, &s) in acc.iter_mut().zip(col) {
                    *a |= (s != qs) as u8;
                }
            }
            self.mask[j..j + BLOCK].copy_from_slice(&acc);
            j += BLOCK;
        }
        for (jj, mj) in self.mask.iter_mut().enumerate().skip(j) {
            for (i, &qs) in q.states.iter().enumerate() {
                if states[jj + i] != qs {
                    *mj = 1;
                    break;
                }
            }
        }
        &self.mask
    }

    /// Scores up to [`LANES`] gate-passing windows at arbitrary starts
    /// within one stream, deriving the shared limit from the stream span
    /// (see [`BatchQuery::stream_limit`]). Convenience wrapper around
    /// [`BatchScorer::score_starts_with_limit`] for callers scoring few
    /// groups per stream.
    pub fn score_starts(
        &mut self,
        q: &BatchQuery,
        sf: &StreamFeatures,
        starts: &[usize],
        ws: f64,
        bound: f64,
    ) -> GroupResult {
        self.score_starts_with_limit(q, sf, starts, q.stream_limit(sf, ws, bound))
    }

    /// Scores up to [`LANES`] gate-passing windows at arbitrary starts
    /// within one stream against a precomputed shared limit (from
    /// [`BatchQuery::stream_limit`] for the same stream — hoist it when
    /// scoring many groups under an unchanged collector bound). `starts`
    /// must be non-empty, hold at most [`LANES`] entries, every
    /// `start + n` must be in range, and every window must already have
    /// passed the state gate (via [`BatchScorer::match_mask`] or an index
    /// keyed by state signature).
    pub fn score_starts_with_limit(
        &mut self,
        q: &BatchQuery,
        sf: &StreamFeatures,
        starts: &[usize],
        shared: f32,
    ) -> GroupResult {
        let n = q.n;
        let m = &sf.mirror32;
        debug_assert!(m.finite, "batched scoring over a non-finite mirror");
        debug_assert!(!starts.is_empty() && starts.len() <= LANES);
        let used = starts.len();
        let mut pad = [starts[0]; LANES];
        pad[..used].copy_from_slice(starts);
        for &s in starts {
            debug_assert!(s + n <= sf.num_segments());
            debug_assert!(
                sf.states[s..s + n] == q.states[..],
                "score_starts on a window that fails the state gate"
            );
        }
        let mut lanes = [LaneOutcome::Inactive; LANES];
        // Padding lanes get limit −∞ so they count as "already over" in
        // the group-abandon reduction without special-casing.
        let mut lim = F32x8::splat(f32::NEG_INFINITY);
        lanes[..used].fill(LaneOutcome::Survivor);
        lim.0[..used].fill(shared);
        let partial = Self::accumulate(q, m, &pad, lim);
        for ((lane, &p), &lm) in lanes.iter_mut().zip(&partial.0).zip(&lim.0).take(used) {
            if p > lm {
                *lane = LaneOutcome::Pruned;
            }
        }
        GroupResult { lanes }
    }

    /// Runs the f32 lane kernel over a whole stream's gate-passing
    /// starts: chunks of up to [`LANES`] are scored against one shared
    /// limit, survivors are appended to `surv`, and the pruned-window
    /// count is returned. Semantically identical to calling
    /// [`BatchScorer::score_starts_with_limit`] per chunk and collecting
    /// `Survivor` lanes, but the limit vector, classification, and call
    /// overhead are hoisted out of the per-group loop, and the classify
    /// step is branchless. Same preconditions as the per-group entry
    /// point (in-range, state-gated starts; finite mirror).
    pub fn collect_survivors(
        &mut self,
        q: &BatchQuery,
        sf: &StreamFeatures,
        starts: &[usize],
        shared: f32,
        surv: &mut Vec<usize>,
    ) -> u64 {
        let n = q.n;
        let m = &sf.mirror32;
        debug_assert!(m.finite, "batched scoring over a non-finite mirror");
        let mut pruned = 0u64;
        surv.reserve(starts.len());
        let full_lim = F32x8::splat(shared);
        for chunk in starts.chunks(LANES) {
            for &s in chunk {
                debug_assert!(s + n <= sf.num_segments());
                debug_assert!(
                    sf.states[s..s + n] == q.states[..],
                    "collect_survivors on a window that fails the state gate"
                );
            }
            let used = chunk.len();
            let mut pad = [chunk[0]; LANES];
            pad[..used].copy_from_slice(chunk);
            let lim = if used == LANES {
                full_lim
            } else {
                let mut lim = F32x8::splat(f32::NEG_INFINITY);
                lim.0[..used].copy_from_slice(&full_lim.0[..used]);
                lim
            };
            let partial = Self::accumulate(q, m, &pad, lim);
            for (l, &s) in chunk.iter().enumerate() {
                let over = partial.0[l] > lim.0[l];
                pruned += over as u64;
                if !over {
                    surv.push(s);
                }
            }
        }
        pruned
    }

    /// Exact f64 scoring of up to eight gate-passing survivor windows in
    /// one pass — the batched analogue of
    /// [`WindowScorer::score_window_outcome`].
    ///
    /// Each lane runs the scalar scorer's exact operation sequence: terms
    /// are accumulated newest-first into a per-lane partial (abandoning
    /// when it exceeds `bound · Σwi · ws · ABANDON_MARGIN`), buffered, and
    /// re-summed in canonical forward order, so `Scored` distances are
    /// bit-identical to the scalar path. Batching merely amortizes the
    /// per-window call, bounds-check, and scratch-reset overhead across
    /// the group. Abandonment is tracked by flag rather than early return:
    /// the scalar loop abandons iff *some* running prefix exceeds the
    /// limit, which is exactly what the flag records.
    ///
    /// Callers must have state-gated the windows already (the mask pass
    /// does); only the [`AmplitudeMetric::Axis`] metric is supported —
    /// the engine never routes spatial-metric searches here.
    ///
    /// [`WindowScorer::score_window_outcome`]:
    ///     crate::similarity::WindowScorer::score_window_outcome
    #[inline]
    pub fn rescore_exact(
        &mut self,
        cols: &QueryCols,
        params: &Params,
        sf: &StreamFeatures,
        starts: &[usize],
        ws: f64,
        bound: f64,
    ) -> [RescanOutcome; LANES] {
        debug_assert!(matches!(params.amplitude_metric, AmplitudeMetric::Axis));
        debug_assert!(!starts.is_empty() && starts.len() <= LANES);
        let n = cols.states.len();
        let active = starts.len();
        let mut pad = [starts[0]; LANES];
        pad[..active].copy_from_slice(starts);
        for &s in starts {
            debug_assert!(s + n <= sf.num_segments());
            debug_assert!(
                sf.states[s..s + n] == cols.states[..],
                "rescore_exact on a window that fails the state gate"
            );
        }
        let denom = cols.wsum * ws;
        let limit = bound * denom * crate::similarity::ABANDON_MARGIN;
        self.terms64.clear();
        self.terms64.resize(n, [0.0; LANES]);
        let mut partial = [0.0f64; LANES];
        let mut abandoned = [false; LANES];
        for i in (0..n).rev() {
            let qd = cols.disp[i];
            let qt = cols.dur[i];
            let wi = cols.wi[i];
            let row = &mut self.terms64[i];
            for l in 0..active {
                let j = pad[l] + i;
                let amp_diff = (qd - sf.disp[j]).abs();
                let freq_diff = (qt - sf.dur[j]).abs();
                let term = wi * (params.wa * amp_diff + params.wf * freq_diff);
                row[l] = term;
                partial[l] += term;
                abandoned[l] |= partial[l] > limit;
            }
        }
        let mut out = [RescanOutcome::Inactive; LANES];
        for (l, o) in out.iter_mut().enumerate().take(active) {
            *o = if abandoned[l] {
                RescanOutcome::Abandoned
            } else {
                let mut num = 0.0f64;
                for row in self.terms64.iter() {
                    num += row[l];
                }
                RescanOutcome::Scored(num / denom)
            };
        }
        out
    }

    /// Accumulation in two phases over the query positions:
    ///
    /// 1. the **full chunks** — the newest `8 · (n / 8)` positions,
    ///    aligned to the query's newest end and accumulated lane-major:
    ///    every load is a contiguous 8-wide slice of the mirror or query
    ///    columns, which LLVM lowers to straight vector loads and
    ///    arithmetic, and each lane keeps a vector accumulator
    ///    (`vacc[l]`);
    /// 2. the **head** — the oldest `n mod 8` positions, accumulated
    ///    position-major with per-lane gathered loads.
    ///
    /// Under the decaying per-position weights the head carries the least
    /// mass, so when it is also a small fraction of the query the kernel
    /// skips it outright: every term is non-negative, so a partial sum
    /// missing a few positions still admissibly proves `exact > bound`
    /// whenever it exceeds the limit, and the rare window whose mass sits
    /// in the skipped positions just falls through to the exact rescan.
    /// The gathered loads cost more than the slight loss of prune power.
    ///
    /// The group-abandon check compares the combined partial sums against
    /// the limits every [`CHECK_EVERY`] chunks; exiting early is sound
    /// because f32 partial sums of non-negative terms are monotone.
    /// Returns the per-lane partials at exit (NaN partials compare false
    /// and leave lanes survivors).
    #[inline]
    fn accumulate(q: &BatchQuery, m: &Mirror32, pad: &[usize; LANES], lim: F32x8) -> F32x8 {
        let head = q.n % LANES;
        let head_from = if head * 4 > q.n { 0 } else { head };
        let mut tail = F32x8::splat(0.0);
        for i in (head_from..head).rev() {
            let mut dv = [0f32; LANES];
            let mut tv = [0f32; LANES];
            for l in 0..LANES {
                dv[l] = m.disp[pad[l] + i];
                tv[l] = m.dur[pad[l] + i];
            }
            F32x8(dv)
                .abs_diff(F32x8::splat(q.disp32[i]))
                .mul_add_into(F32x8::splat(q.wa_wi32[i]), &mut tail);
            F32x8(tv)
                .abs_diff(F32x8::splat(q.dur32[i]))
                .mul_add_into(F32x8::splat(q.wf_wi32[i]), &mut tail);
        }
        let mut vacc = [F32x8::splat(0.0); LANES];
        let mut hi = q.n;
        let mut chunks = 0usize;
        while hi > head {
            let lo = hi - LANES;
            let qd = F32x8::load(&q.disp32[lo..hi]);
            let qt = F32x8::load(&q.dur32[lo..hi]);
            let wa = F32x8::load(&q.wa_wi32[lo..hi]);
            let wf = F32x8::load(&q.wf_wi32[lo..hi]);
            for (l, acc) in vacc.iter_mut().enumerate() {
                let base = pad[l] + lo;
                F32x8::load(&m.disp[base..base + LANES])
                    .abs_diff(qd)
                    .mul_add_into(wa, acc);
                F32x8::load(&m.dur[base..base + LANES])
                    .abs_diff(qt)
                    .mul_add_into(wf, acc);
            }
            hi = lo;
            chunks += 1;
            if chunks.is_multiple_of(CHECK_EVERY)
                && hi > head
                && Self::partials(&vacc, tail).all_gt(lim)
            {
                break;
            }
        }
        Self::partials(&vacc, tail)
    }

    /// Per-lane partial sums: the tail plus a pairwise (fixed-order, so
    /// deterministic) horizontal reduction of each lane's chunk
    /// accumulator.
    #[inline(always)]
    fn partials(vacc: &[F32x8; LANES], tail: F32x8) -> F32x8 {
        let mut out = tail.0;
        for (o, acc) in out.iter_mut().zip(vacc) {
            let a = acc.0;
            *o += ((a[0] + a[1]) + (a[2] + a[3])) + ((a[4] + a[5]) + (a[6] + a[7]));
        }
        F32x8(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::{ScoreOutcome, WindowCols, WindowScorer};

    fn fixture() -> (StreamFeatures, QueryCols, Params) {
        let params = Params::default();
        let (sf, cols) = probe_fixture(&params).unwrap();
        (sf, cols, params)
    }

    /// The whole-stream gate agrees with a direct per-window compare.
    #[test]
    fn match_mask_equals_per_window_compare() {
        let (sf, cols, params) = fixture();
        let bq = BatchQuery::build(&cols, &params).unwrap();
        let n = cols.len();
        let total = sf.num_segments() - n + 1;
        let mut batcher = BatchScorer::new();
        let mask = batcher.match_mask(&bq, &sf);
        assert_eq!(mask.len(), total);
        for (j, &m) in mask.iter().enumerate().take(total) {
            let direct = sf.states[j..j + n] == cols.states[..];
            assert_eq!(m == 0, direct, "gate disagreement at start {j}");
        }
        // Starts at offset 1 mod 3 misalign the fixture's 3-state cycle:
        // the gate must reject every one of them.
        assert!((0..total).filter(|j| j % 3 == 1).all(|j| mask[j] != 0));
    }

    /// Exhaustively checks one stream: every lane the kernel prunes must
    /// be a window the exact scorer also rejects at that bound.
    #[test]
    fn pruned_lanes_are_exactly_refutable() {
        let (sf, cols, params) = fixture();
        let bq = BatchQuery::build(&cols, &params).unwrap();
        let n = cols.len();
        let total = sf.num_segments() - n + 1;
        let mut scorer = WindowScorer::new();
        let mut batcher = BatchScorer::new();
        let starts: Vec<usize> = {
            let mask = batcher.match_mask(&bq, &sf);
            (0..total).filter(|&j| mask[j] == 0).collect()
        };
        assert!(!starts.is_empty(), "fixture has no gate-passing windows");
        for &bound in &[0.1, 0.5, 2.0, 8.0, f64::INFINITY] {
            for chunk in starts.chunks(LANES) {
                let g = batcher.score_starts(&bq, &sf, chunk, 1.0, bound);
                for (l, &start) in chunk.iter().enumerate() {
                    let end = start + n;
                    let cand = WindowCols {
                        states: &sf.states[start..end],
                        disp: &sf.disp[start..end],
                        dvec: &sf.dvec[start..end],
                        dur: &sf.dur[start..end],
                    };
                    let exact =
                        scorer.score_window_outcome(&cols, cand, &params, 1.0, f64::INFINITY);
                    match g.lanes[l] {
                        LaneOutcome::Pruned => {
                            let ScoreOutcome::Scored(d) = exact else {
                                panic!("pruned lane with non-scored exact outcome at {start}");
                            };
                            assert!(
                                d > bound,
                                "inadmissible prune at start {start}: d = {d} <= bound {bound}"
                            );
                        }
                        LaneOutcome::Survivor => {
                            assert!(
                                !matches!(exact, ScoreOutcome::StateMismatch),
                                "survivor lane with mismatched states at {start}"
                            );
                        }
                        LaneOutcome::Inactive => panic!("inactive lane within count"),
                    }
                }
            }
        }
        // At a tight bound the tier actually prunes something on this
        // fixture (otherwise the admissibility loop above proves nothing).
        let g = batcher.score_starts(&bq, &sf, &starts[..LANES.min(starts.len())], 1.0, 0.1);
        assert!(
            g.lanes.contains(&LaneOutcome::Pruned),
            "tight bound pruned nothing"
        );
    }

    /// Padding lanes come back `Inactive` and never panic on short tails.
    #[test]
    fn short_groups_pad_safely() {
        let (sf, cols, params) = fixture();
        let bq = BatchQuery::build(&cols, &params).unwrap();
        let mut batcher = BatchScorer::new();
        let matched: Vec<usize> = {
            let mask = batcher.match_mask(&bq, &sf);
            (0..mask.len()).filter(|&j| mask[j] == 0).collect()
        };
        for cnt in 1..LANES {
            let g = batcher.score_starts(&bq, &sf, &matched[..cnt], 1.0, 2.0);
            for l in 0..cnt {
                assert_ne!(g.lanes[l], LaneOutcome::Inactive, "cnt {cnt} lane {l}");
            }
            for l in cnt..LANES {
                assert_eq!(g.lanes[l], LaneOutcome::Inactive, "cnt {cnt} lane {l}");
            }
        }
    }

    #[test]
    fn spatial_metric_and_bad_weights_disable_the_tier() {
        let (_, cols, params) = fixture();
        let spatial = Params {
            amplitude_metric: AmplitudeMetric::Spatial,
            ..params.clone()
        };
        assert!(BatchQuery::build(&cols, &spatial).is_none());
        let negative = Params {
            wa: -1.0,
            ..params.clone()
        };
        assert!(BatchQuery::build(&cols, &negative).is_none());
        assert!(BatchQuery::build(&cols, &params).is_some());
    }

    #[test]
    fn scoring_mode_parses_and_defaults() {
        assert_eq!(ScoringMode::parse("auto"), Some(ScoringMode::Auto));
        assert_eq!(ScoringMode::parse("scalar"), Some(ScoringMode::Scalar));
        assert_eq!(ScoringMode::parse("batched"), Some(ScoringMode::Batched));
        assert_eq!(ScoringMode::parse("simd"), None);
        assert_eq!(ScoringMode::default(), ScoringMode::Auto);
        assert!(!ScoringMode::Scalar.use_batched());
        assert!(ScoringMode::Batched.use_batched());
        for m in [ScoringMode::Auto, ScoringMode::Scalar, ScoringMode::Batched] {
            assert_eq!(ScoringMode::parse(m.as_str()), Some(m));
        }
    }

    /// The limit saturates (never prunes) instead of going inadmissible
    /// when the bound or slack overflows f32.
    #[test]
    fn limit_saturates_to_never_prune() {
        let (sf, cols, params) = fixture();
        let bq = BatchQuery::build(&cols, &params).unwrap();
        let lim = bq.lane_limit(&sf.mirror32, 0, cols.len(), f64::MAX);
        assert_eq!(lim, f32::INFINITY);
        // A negative bound clamps to zero: prune everything non-zero,
        // admissibly (nothing has distance <= a negative bound).
        let lim = bq.lane_limit(&sf.mirror32, 0, cols.len(), -5.0);
        assert!(lim >= 0.0);
    }
}
