//! Subsequence stability (paper Definition 1).
//!
//! > *Given a subsequence S, S is stable if σ(S) ≤ θ, where θ is a
//! > predefined parameter and σ(S) is computed per state k = 0, 1, 2, 3
//! > (EX, EOE, IN, IRR) from the deviations of each segment's amplitude
//! > and time interval around the per-state averages, with different
//! > weights for amplitude and frequency changes.*
//!
//! The published formula is typographically mangled, so this module
//! reconstructs it from the prose: for every state `k`, let `Ā_k` and
//! `T̄_k` be the average amplitude and average time interval of the
//! state-`k` segments within `S`. The stability statistic is the summed
//! weighted *relative* deviation
//!
//! ```text
//! σ(S) = Σ_k Σ_{i : state(i)=k}  wa·|A_i − Ā_k| / (Ā_k + ε)
//!                              + wf·|T_i − T̄_k| / (T̄_k + ε)
//! ```
//!
//! Relative deviations make the statistic scale-free (a 15 mm breather and
//! a 6 mm breather are judged by the same θ), matching the paper's use of
//! a single threshold across all patients. **The smaller σ is, the more
//! stable S is.**

use crate::params::Params;
use tsm_model::{BreathState, Segment, Vertex};

/// Guards the relative deviations against near-zero per-state means
/// (e.g. EOE dwell amplitudes, which hover around zero by design).
const EPSILON_AMPLITUDE: f64 = 0.5; // mm
const EPSILON_DURATION: f64 = 0.05; // s

/// Computes the stability statistic σ over the segments spanned by
/// `vertices` (Definition 1). Returns `f64::INFINITY` for windows with
/// fewer than two vertices (no segments — nothing to be stable about).
pub fn stability(vertices: &[Vertex], params: &Params) -> f64 {
    if vertices.len() < 2 {
        return f64::INFINITY;
    }
    let axis = params.axis;

    // Per-state sums for the averages.
    let mut count = [0usize; BreathState::COUNT];
    let mut amp_sum = [0.0f64; BreathState::COUNT];
    let mut dur_sum = [0.0f64; BreathState::COUNT];
    for w in vertices.windows(2) {
        let seg = Segment::between(&w[0], &w[1]);
        let k = seg.state.index();
        count[k] += 1;
        amp_sum[k] += seg.amplitude(axis);
        dur_sum[k] += seg.duration();
    }

    let mut sigma = 0.0;
    for w in vertices.windows(2) {
        let seg = Segment::between(&w[0], &w[1]);
        let k = seg.state.index();
        let mean_amp = amp_sum[k] / count[k] as f64;
        let mean_dur = dur_sum[k] / count[k] as f64;
        sigma += params.wa * (seg.amplitude(axis) - mean_amp).abs()
            / (mean_amp + EPSILON_AMPLITUDE)
            + params.wf * (seg.duration() - mean_dur).abs() / (mean_dur + EPSILON_DURATION);
    }

    // Any irregular segment is itself evidence of instability beyond its
    // deviation from other irregular segments: regular breathing has none.
    let irr = count[BreathState::Irregular.index()] as f64;
    sigma + irr * params.wa
}

/// Whether the window is stable at the configured threshold θ
/// (Definition 1's acceptance test).
pub fn is_stable(vertices: &[Vertex], params: &Params) -> bool {
    stability(vertices, params) <= params.theta
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsm_model::BreathState::*;

    /// Perfectly repeating cycles: every state's segments identical.
    fn regular(n_cycles: usize) -> Vec<Vertex> {
        let mut v = Vec::new();
        let mut t = 0.0;
        for _ in 0..n_cycles {
            v.push(Vertex::new_1d(t, 10.0, Exhale));
            v.push(Vertex::new_1d(t + 1.5, 0.0, EndOfExhale));
            v.push(Vertex::new_1d(t + 2.5, 0.0, Inhale));
            t += 4.0;
        }
        v.push(Vertex::new_1d(t, 10.0, Exhale));
        v
    }

    /// Cycles whose amplitude alternates between small and large.
    fn wobbly(n_cycles: usize) -> Vec<Vertex> {
        let mut v = Vec::new();
        let mut t = 0.0;
        for i in 0..n_cycles {
            let a = if i % 2 == 0 { 5.0 } else { 18.0 };
            let period = if i % 2 == 0 { 3.0 } else { 5.5 };
            v.push(Vertex::new_1d(t, a, Exhale));
            v.push(Vertex::new_1d(t + period * 0.4, 0.0, EndOfExhale));
            v.push(Vertex::new_1d(t + period * 0.6, 0.0, Inhale));
            t += period;
        }
        v.push(Vertex::new_1d(t, 5.0, Exhale));
        v
    }

    #[test]
    fn perfectly_regular_is_perfectly_stable() {
        let p = Params::default();
        let sigma = stability(&regular(4), &p);
        assert!(sigma < 1e-9, "sigma = {sigma}");
        assert!(is_stable(&regular(4), &p));
    }

    #[test]
    fn wobbly_breathing_is_less_stable() {
        let p = Params::default();
        let s_reg = stability(&regular(4), &p);
        let s_wob = stability(&wobbly(4), &p);
        assert!(s_wob > s_reg + 1.0, "regular {s_reg} vs wobbly {s_wob}");
    }

    #[test]
    fn irregular_segments_penalized() {
        let p = Params::default();
        let mut v = regular(3);
        // Relabel one interior segment as IRR.
        v[4].state = Irregular;
        let s_irr = stability(&v, &p);
        let s_reg = stability(&regular(3), &p);
        assert!(s_irr > s_reg, "IRR not penalized: {s_irr} vs {s_reg}");
    }

    #[test]
    fn stability_is_scale_free() {
        let p = Params::default();
        // The same relative wobble at 2x the amplitude and period.
        let small = wobbly(4);
        let big: Vec<Vertex> = wobbly(4)
            .into_iter()
            .map(|v| Vertex::new_1d(v.time * 2.0, v.position[0] * 2.0, v.state))
            .collect();
        let ss = stability(&small, &p);
        let sb = stability(&big, &p);
        // Epsilon guards keep them from being exactly equal; they must be
        // close.
        assert!((ss - sb).abs() < 0.35 * ss, "not scale free: {ss} vs {sb}");
    }

    #[test]
    fn degenerate_windows_are_unstable() {
        let p = Params::default();
        assert_eq!(stability(&[], &p), f64::INFINITY);
        assert_eq!(
            stability(&[Vertex::new_1d(0.0, 1.0, Exhale)], &p),
            f64::INFINITY
        );
        assert!(!is_stable(&[], &p));
    }

    #[test]
    fn amplitude_weight_dominates_frequency_weight() {
        // Same relative deviation in amplitude vs duration: with
        // wa=1, wf=0.25, the amplitude wobble must cost more.
        let p = Params::default();
        let amp_wobble: Vec<Vertex> = (0..4)
            .flat_map(|i| {
                let a = if i % 2 == 0 { 8.0 } else { 12.0 };
                let t = i as f64 * 4.0;
                vec![
                    Vertex::new_1d(t, a, Exhale),
                    Vertex::new_1d(t + 1.5, 0.0, EndOfExhale),
                    Vertex::new_1d(t + 2.5, 0.0, Inhale),
                ]
            })
            .chain([Vertex::new_1d(16.0, 8.0, Exhale)])
            .collect();
        let dur_wobble: Vec<Vertex> = {
            let mut v = Vec::new();
            let mut t = 0.0;
            for i in 0..4 {
                let scale = if i % 2 == 0 { 0.8 } else { 1.2 };
                v.push(Vertex::new_1d(t, 10.0, Exhale));
                v.push(Vertex::new_1d(t + 1.5 * scale, 0.0, EndOfExhale));
                v.push(Vertex::new_1d(t + 2.5 * scale, 0.0, Inhale));
                t += 4.0 * scale;
            }
            v.push(Vertex::new_1d(t, 10.0, Exhale));
            v
        };
        let sa = stability(&amp_wobble, &p);
        let sd = stability(&dur_wobble, &p);
        assert!(sa > sd, "amplitude wobble {sa} <= duration wobble {sd}");
    }
}
