//! Minimal JSON utilities for the hand-rendered output surfaces.
//!
//! The vendored `serde` is a no-op stand-in, so everything this
//! workspace emits as JSON — [`crate::metrics::MetricsSnapshot::to_json`]
//! and the `tsm-serve` endpoint bodies — is rendered by hand. This
//! module centralizes the two pieces hand-rendering cannot safely skip:
//!
//! * [`escape_into`] / [`escaped`] — RFC 8259 string escaping, so a
//!   hostile or merely unlucky key (quotes, backslashes, control
//!   characters) can never break a document out of its string literal.
//! * [`validate`] — a strict, allocation-light JSON parser used by tests
//!   and CI probes to assert that rendered documents actually parse.
//!   It accepts exactly one JSON value plus surrounding whitespace.

/// Appends `s` to `out` as the *contents* of a JSON string literal
/// (without the surrounding quotes), escaping everything RFC 8259
/// requires: `"`, `\`, and all control characters below `0x20`.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// [`escape_into`] as an expression: the escaped contents of `s`.
pub fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(&mut out, s);
    out
}

/// Renders a complete JSON string literal (quotes included).
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

/// Maximum nesting depth [`validate`] accepts before declaring the
/// document hostile (a parser recursing on attacker-controlled depth is
/// itself a stack-overflow vector).
const MAX_DEPTH: usize = 128;

/// Checks that `text` is exactly one well-formed JSON value (object,
/// array, string, number, `true`, `false` or `null`) surrounded by
/// nothing but whitespace. Returns the byte offset and a description of
/// the first violation.
pub fn validate(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, b"true"),
        Some(b'f') => parse_literal(bytes, pos, b"false"),
        Some(b'n') => parse_literal(bytes, pos, b"null"),
        Some(b) if *b == b'-' || b.is_ascii_digit() => parse_number(bytes, pos),
        Some(b) => Err(format!("unexpected byte 0x{b:02x} at {pos}")),
        None => Err(format!("unexpected end of input at byte {pos}")),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &[u8]) -> Result<(), String> {
    if bytes[*pos..].starts_with(word) {
        *pos += word.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        parse_value(bytes, pos, depth + 1)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        parse_value(bytes, pos, depth + 1)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '"'
    loop {
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(());
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match bytes.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => {
                                    return Err(format!("invalid \\u escape at byte {pos}"));
                                }
                            }
                        }
                    }
                    _ => return Err(format!("invalid escape at byte {pos}")),
                }
            }
            Some(b) if *b < 0x20 => {
                return Err(format!("raw control byte 0x{b:02x} in string at {pos}"));
            }
            Some(_) => *pos += 1,
            None => return Err("unterminated string".into()),
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    // Integer part: one digit, or a nonzero digit followed by more.
    match bytes.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(b) if b.is_ascii_digit() => {
            while bytes.get(*pos).is_some_and(|b| b.is_ascii_digit()) {
                *pos += 1;
            }
        }
        _ => return Err(format!("invalid number at byte {start}")),
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !bytes.get(*pos).is_some_and(|b| b.is_ascii_digit()) {
            return Err(format!("invalid number at byte {start}"));
        }
        while bytes.get(*pos).is_some_and(|b| b.is_ascii_digit()) {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !bytes.get(*pos).is_some_and(|b| b.is_ascii_digit()) {
            return Err(format!("invalid number at byte {start}"));
        }
        while bytes.get(*pos).is_some_and(|b| b.is_ascii_digit()) {
            *pos += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        assert_eq!(escaped("plain.key"), "plain.key");
        assert_eq!(escaped("a\"b"), "a\\\"b");
        assert_eq!(escaped("a\\b"), "a\\\\b");
        assert_eq!(escaped("a\nb\tc\rd"), "a\\nb\\tc\\rd");
        assert_eq!(escaped("\u{08}\u{0C}"), "\\b\\f");
        assert_eq!(escaped("\u{01}\u{1F}"), "\\u0001\\u001f");
        // Non-control unicode passes through unescaped.
        assert_eq!(escaped("λ→μ"), "λ→μ");
        assert_eq!(string("a\"b"), "\"a\\\"b\"");
    }

    #[test]
    fn validate_accepts_well_formed_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            " false ",
            "0",
            "-12.5e-3",
            "\"hi\"",
            "\"a\\\"b\\\\c\\u00ff\"",
            "{\"a\": [1, 2, {\"b\": null}], \"c\": \"d\"}",
            "{\n  \"counters\": {\n    \"x\": 1\n  }\n}\n",
        ] {
            assert!(validate(ok).is_ok(), "{ok:?}: {:?}", validate(ok));
        }
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            "{\"a\": }",
            "{\"a\" 1}",
            "{a: 1}",
            "[1,]",
            "[1 2]",
            "\"unterminated",
            "\"raw\ncontrol\"",
            "\"bad\\xescape\"",
            "01",
            "1.",
            "1e",
            "nul",
            "{} trailing",
            "--1",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} was accepted");
        }
    }

    #[test]
    fn validate_caps_nesting_depth() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(validate(&deep).is_err());
        let fine = "[".repeat(64) + &"]".repeat(64);
        assert!(validate(&fine).is_ok());
    }

    #[test]
    fn escaped_output_round_trips_through_validate() {
        let hostile = "evil\"key\\with\ncontrols\u{01}\t";
        let doc = format!("{{{}: 1}}", string(hostile));
        validate(&doc).unwrap();
    }
}
