//! Debug-build contract checks for the matching hot paths.
//!
//! Each function here is a named invariant of the engine, expressed as a
//! `debug_assert!` so it runs in every debug/test build and compiles to
//! nothing in release — the hot paths pay zero cost in production while
//! the whole test suite continuously re-proves the contracts:
//!
//! * **Prefix-sum monotonicity** — the `abs_disp_prefix` / `dur_prefix`
//!   columns of a [`StreamFeatures`] are non-decreasing and exactly one
//!   entry longer than the segment count, which is what makes
//!   `amp_sum`/`window_duration` single-subtraction lookups sound.
//! * **Band-bound admissibility** — every candidate the
//!   [`tsm_db::FeatureIndex`] yields from a banded lookup actually lies
//!   inside the requested amplitude and duration bands, and its stored
//!   summaries agree with the prefix sums it was built from. A violation
//!   here means the pruning lower bound is unsound (false dismissals).
//! * **Bounded collection** — a top-k [`matcher`](crate::matcher)
//!   collector never holds more than `k` results.
//! * **Tally reconciliation** — a [`SearchTally`] always satisfies
//!   `windows_scored == windows_abandoned + windows_completed` and the
//!   candidate funnel `bucket ≥ amp_band ≥ dur_band`, including after
//!   merging per-worker tallies at the parallel join point. The batched
//!   f32 tier's counters reconcile with the scalar balance: every pruned
//!   lane is an abandoned window, every lane the tier touched (pruned or
//!   rescanned) is a scored window, and no group yields more than
//!   [`LANES`](crate::batch::LANES) of them.
//!
//! The functions take already-computed values (not closures) because they
//! are only called where those values are in scope anyway; the
//! `debug_assert!` inside guarantees release builds do no work.

use crate::metrics::SearchTally;
use tsm_db::{FeatureEntry, SegmentFeatures, StreamFeatures};

/// Absolute slack for comparisons between independently recomputed
/// floating-point summaries (two evaluations of the same prefix-sum
/// subtraction are bitwise equal; the slack only covers callers that
/// recompute a summary by direct summation).
pub const FLOAT_SLACK: f64 = 1e-9;

/// A bounded collector holds at most `k` entries (`cap = Some(k)`).
#[inline]
pub fn heap_bounded(len: usize, cap: Option<usize>) {
    debug_assert!(
        cap.is_none_or(|k| len <= k),
        "bounded collector overflow: {len} entries with cap {cap:?}",
    );
}

/// The prefix-sum columns of one stream are well-formed: one entry longer
/// than the segment count, starting at zero, and non-decreasing (both
/// `|disp|` and duration are non-negative, so their running sums must be
/// monotone). Sound prefix sums are what make `amp_sum` and
/// `window_duration` O(1) lookups exact.
#[inline]
pub fn prefix_sums_monotone(sf: &StreamFeatures) {
    debug_assert!(
        prefix_sums_monotone_impl(sf),
        "malformed prefix sums for stream {:?}: {} segments, {} amp entries, {} dur entries",
        sf.meta.id,
        sf.num_segments(),
        sf.abs_disp_prefix.len(),
        sf.dur_prefix.len(),
    );
}

fn prefix_sums_monotone_impl(sf: &StreamFeatures) -> bool {
    let n = sf.num_segments();
    sf.abs_disp_prefix.len() == n + 1
        && sf.dur_prefix.len() == n + 1
        && sf.abs_disp_prefix.first() == Some(&0.0)
        && sf.dur_prefix.first() == Some(&0.0)
        && sf.abs_disp_prefix.windows(2).all(|w| w[0] <= w[1])
        && sf.dur_prefix.windows(2).all(|w| w[0] <= w[1])
}

/// Every stream in a feature snapshot has sound prefix sums. Called once
/// per search on the consuming side of
/// [`tsm_db::StreamStore::segment_features`], so a corrupted snapshot is
/// caught before any window is scored from it.
#[inline]
pub fn features_snapshot_coherent(features: &SegmentFeatures) {
    #[cfg(debug_assertions)]
    for sf in features.streams() {
        prefix_sums_monotone(sf);
    }
    #[cfg(not(debug_assertions))]
    // lint:allow(no-silent-result-drop): release builds compile the
    // checks away; this keeps the parameter used in both profiles.
    let _ = features;
}

/// A banded index lookup only yields admissible candidates: the entry's
/// stored summaries lie inside the requested amplitude and duration bands,
/// and agree with the prefix sums of the (possibly newer) feature snapshot
/// the candidate is about to be scored from. `start`/`len` locate the
/// window inside `sf`.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn band_candidate_admissible(
    entry: &FeatureEntry,
    sf: &StreamFeatures,
    start: usize,
    len: usize,
    q_amp_sum: f64,
    amp_band: f64,
    q_duration: f64,
    dur_band: f64,
) {
    debug_assert!(
        (entry.amp_sum - q_amp_sum).abs() <= amp_band
            && (entry.duration - q_duration).abs() <= dur_band,
        "inadmissible band candidate {:?}: amp {} vs query {} (band {}), dur {} vs query {} (band {})",
        entry.subseq,
        entry.amp_sum,
        q_amp_sum,
        amp_band,
        entry.duration,
        q_duration,
        dur_band,
    );
    debug_assert!(
        (entry.amp_sum - sf.amp_sum(start, len)).abs() <= FLOAT_SLACK
            && (entry.duration - sf.window_duration(start, len)).abs() <= FLOAT_SLACK,
        "index entry {:?} disagrees with feature snapshot: amp {} vs {}, dur {} vs {}",
        entry.subseq,
        entry.amp_sum,
        sf.amp_sum(start, len),
        entry.duration,
        sf.window_duration(start, len),
    );
}

/// A search tally reconciles: every scored window was either abandoned or
/// completed (exactly one of the two), and the candidate funnel only
/// narrows (`bucket ≥ amp band ≥ dur band` survivors). Checked per search
/// and again after merging per-worker tallies at parallel join points, so
/// a lost or double-counted worker tally is caught at the merge.
#[inline]
pub fn tally_reconciled(t: &SearchTally) {
    debug_assert!(
        t.windows_scored == t.windows_abandoned + t.windows_completed,
        "tally out of balance: scored {} != abandoned {} + completed {}",
        t.windows_scored,
        t.windows_abandoned,
        t.windows_completed,
    );
    debug_assert!(
        t.bucket_candidates >= t.amp_band_candidates
            && t.amp_band_candidates >= t.dur_band_candidates,
        "candidate funnel widened: bucket {} -> amp {} -> dur {}",
        t.bucket_candidates,
        t.amp_band_candidates,
        t.dur_band_candidates,
    );
    debug_assert!(
        t.batch_lanes_abandoned <= t.windows_abandoned,
        "batched lanes abandoned {} exceed windows abandoned {}",
        t.batch_lanes_abandoned,
        t.windows_abandoned,
    );
    debug_assert!(
        t.batch_lanes_abandoned + t.f32_prune_rescans <= t.windows_scored,
        "batched lane work (pruned {} + rescans {}) exceeds windows scored {}",
        t.batch_lanes_abandoned,
        t.f32_prune_rescans,
        t.windows_scored,
    );
    debug_assert!(
        t.batch_lanes_abandoned + t.f32_prune_rescans
            <= (crate::batch::LANES as u64) * t.batch_groups_scored,
        "batched lane work (pruned {} + rescans {}) exceeds {} lanes x {} groups",
        t.batch_lanes_abandoned,
        t.f32_prune_rescans,
        crate::batch::LANES,
        t.batch_groups_scored,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tally(scored: u64, abandoned: u64, completed: u64) -> SearchTally {
        SearchTally {
            windows_scored: scored,
            windows_abandoned: abandoned,
            windows_completed: completed,
            ..SearchTally::default()
        }
    }

    #[test]
    fn balanced_tally_passes() {
        tally_reconciled(&tally(5, 2, 3));
        heap_bounded(3, Some(3));
        heap_bounded(10, None);
    }

    #[test]
    #[should_panic(expected = "tally out of balance")]
    fn unbalanced_tally_is_caught() {
        tally_reconciled(&tally(5, 2, 2));
    }

    #[test]
    #[should_panic(expected = "candidate funnel widened")]
    fn widening_funnel_is_caught() {
        let t = SearchTally {
            bucket_candidates: 1,
            amp_band_candidates: 2,
            ..SearchTally::default()
        };
        tally_reconciled(&t);
    }

    #[test]
    #[should_panic(expected = "bounded collector overflow")]
    fn heap_overflow_is_caught() {
        heap_bounded(4, Some(3));
    }

    #[test]
    fn prefix_sums_of_a_real_stream_are_monotone() {
        use tsm_db::{PatientAttributes, StreamStore};
        use tsm_model::{BreathState::*, PlrTrajectory, Vertex};
        let plr = PlrTrajectory::from_vertices(vec![
            Vertex::new_1d(0.0, 0.0, Inhale),
            Vertex::new_1d(1.0, 8.0, Exhale),
            Vertex::new_1d(2.5, 0.5, EndOfExhale),
            Vertex::new_1d(3.0, 0.4, Inhale),
        ])
        .unwrap();
        let store = StreamStore::new();
        let p = store.add_patient(PatientAttributes::new());
        store.add_stream(p, 0, plr, 30);
        let features = store.segment_features(0);
        features_snapshot_coherent(&features);
    }

    #[test]
    #[should_panic(expected = "malformed prefix sums")]
    fn corrupted_prefix_sums_are_caught() {
        use tsm_db::{PatientAttributes, StreamStore};
        use tsm_model::{BreathState::*, PlrTrajectory, Vertex};
        let plr = PlrTrajectory::from_vertices(vec![
            Vertex::new_1d(0.0, 0.0, Inhale),
            Vertex::new_1d(1.0, 8.0, Exhale),
            Vertex::new_1d(2.0, 0.0, EndOfExhale),
        ])
        .unwrap();
        let store = StreamStore::new();
        let p = store.add_patient(PatientAttributes::new());
        store.add_stream(p, 0, plr, 20);
        let features = store.segment_features(0);
        let mut broken = (**features.streams().first().unwrap()).clone();
        broken.abs_disp_prefix[1] = -1.0; // running sum of |disp| can never dip
        prefix_sums_monotone(&broken);
    }
}
