//! Error type of the core crate.

use std::fmt;

/// Errors surfaced by the matching and prediction pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A query with no segments (or too few vertices) was supplied.
    EmptyQuery,
    /// Query and candidate subsequences have different lengths.
    LengthMismatch {
        /// Query length in segments.
        query: usize,
        /// Candidate length in segments.
        candidate: usize,
    },
    /// The spatial dimensionalities of two compared sequences differ.
    DimensionMismatch,
    /// A referenced stream does not exist in the store.
    UnknownStream(tsm_db::StreamId),
    /// Parameters failed validation.
    InvalidParams(String),
    /// Not enough data to perform the requested operation.
    InsufficientData(String),
    /// Malformed input data (e.g. a non-finite sample at ingest).
    InvalidInput(String),
    /// A session absorbed more recoverable input faults than its
    /// degradation policy allows and gave up.
    FaultBudgetExhausted {
        /// Recoverable faults absorbed before the budget ran out.
        absorbed: usize,
    },
    /// The durability layer failed (WAL append/fsync error): the
    /// session can no longer guarantee its acknowledged data survives
    /// a crash, so it must stop rather than keep accepting ingest.
    /// Never recoverable — retrying cannot un-tear a log.
    Durability(String),
}

impl CoreError {
    /// True for faults a session supervisor may absorb and keep
    /// streaming through (bad input data that degrades one session),
    /// false for structural errors (bad parameters, missing streams,
    /// exhausted fault budgets) that retrying cannot fix.
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self,
            CoreError::InvalidInput(_) | CoreError::InsufficientData(_)
        )
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EmptyQuery => write!(f, "empty query subsequence"),
            CoreError::LengthMismatch { query, candidate } => {
                write!(f, "length mismatch: query {query} vs candidate {candidate}")
            }
            CoreError::DimensionMismatch => write!(f, "spatial dimension mismatch"),
            CoreError::UnknownStream(id) => write!(f, "unknown stream {id}"),
            CoreError::InvalidParams(msg) => write!(f, "invalid parameters: {msg}"),
            CoreError::InsufficientData(msg) => write!(f, "insufficient data: {msg}"),
            CoreError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            CoreError::FaultBudgetExhausted { absorbed } => {
                write!(
                    f,
                    "fault budget exhausted after absorbing {absorbed} recoverable faults"
                )
            }
            CoreError::Durability(msg) => write!(f, "durability failure: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// The crate-level error alias used by fallible constructors (session
/// runtimes, online predictors): today every such failure is a
/// [`CoreError`], and the alias keeps signatures stable if that changes.
pub type TsmError = CoreError;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(CoreError::EmptyQuery.to_string(), "empty query subsequence");
        assert!(CoreError::LengthMismatch {
            query: 3,
            candidate: 4
        }
        .to_string()
        .contains("3"));
        assert!(CoreError::UnknownStream(tsm_db::StreamId(7))
            .to_string()
            .contains("S7"));
        assert!(CoreError::FaultBudgetExhausted { absorbed: 9 }
            .to_string()
            .contains('9'));
    }

    #[test]
    fn recoverability_classification() {
        assert!(CoreError::InvalidInput("nan".into()).is_recoverable());
        assert!(CoreError::InsufficientData("short".into()).is_recoverable());
        assert!(!CoreError::EmptyQuery.is_recoverable());
        assert!(!CoreError::InvalidParams("k=0".into()).is_recoverable());
        assert!(!CoreError::FaultBudgetExhausted { absorbed: 1 }.is_recoverable());
        assert!(!CoreError::Durability("wal fsync failed".into()).is_recoverable());
    }
}
