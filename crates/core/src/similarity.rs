//! The weighted subsequence similarity measure (paper Definition 2).
//!
//! Two subsequences of the same length are similar iff
//!
//! 1. their **state orders are identical** — similar motion must mean the
//!    same physiological actions; and
//! 2. their weighted distance is at most δ.
//!
//! The distance is *model-based* (it runs on PLR segments, not raw
//! samples), *multi-layer* (amplitude and frequency features per segment),
//! *weighted* (per-vertex recency weights `wi`, per-source weights `ws`)
//! and *parametric* (`wa`, `wf`, `wi`, `ws` are all knobs — see
//! [`crate::params::Params`]).
//!
//! Concretely, for query `Q` and candidate `C` with segments `1..=n`:
//!
//! ```text
//!                  Σ_i  wi(i) · ( wa·|ΔA_Q,i − ΔA_C,i|  +  wf·|T_Q,i − T_C,i| )
//! d(Q, C)  =  ───────────────────────────────────────────────────────────────────
//!                                 ws(relation) · Σ_i wi(i)
//! ```
//!
//! * `ΔA` is the *signed displacement* of a segment along the
//!   classification axis, so the distance is insensitive to offset
//!   translation (baseline shift) by construction;
//! * `T` is the segment duration — the frequency feature;
//! * normalizing by `Σ wi` makes the distance a per-segment average, so
//!   one threshold δ works across the dynamic query lengths of
//!   Section 4.1;
//! * dividing by `ws` makes candidates from less-trusted sources look
//!   farther away: the same raw deviation from another patient's stream
//!   (ws = 0.3) reads as 3.3× the distance of a same-session candidate
//!   (ws = 1.0), exactly the preference ordering the paper wants.
//!
//! The *offline* variant ([`offline_distance`]) sets every `wi` to 1 —
//! with no "current time" there is no recency to prefer (Section 5).

use crate::params::Params;
use tsm_db::SourceRelation;
use tsm_model::{Position, Segment, Vertex};

/// The per-vertex recency weight `wi` for segment `i` of `n` (0-based).
///
/// Rises linearly from `wi_base` at the oldest segment to 1.0 at the most
/// recent: "the nearer the vertex is to the end of the subsequence, the
/// higher weight it has".
#[inline]
pub fn vertex_weight(params: &Params, i: usize, n: usize) -> f64 {
    debug_assert!(i < n);
    if n <= 1 {
        return 1.0;
    }
    params.wi_base + (1.0 - params.wi_base) * (i as f64) / ((n - 1) as f64)
}

/// Checks Definition 2's condition 1: identical state orders.
pub fn same_state_order(query: &[Vertex], candidate: &[Vertex]) -> bool {
    query.len() == candidate.len()
        && query.len() >= 2
        && query[..query.len() - 1]
            .iter()
            .zip(&candidate[..candidate.len() - 1])
            .all(|(q, c)| q.state == c.state)
}

/// Raw weighted distance with explicit vertex weights; `None` when the
/// state orders differ or the windows are degenerate.
fn weighted_distance(
    query: &[Vertex],
    candidate: &[Vertex],
    params: &Params,
    relation: SourceRelation,
    use_vertex_weights: bool,
) -> Option<f64> {
    if !same_state_order(query, candidate) {
        return None;
    }
    let n = query.len() - 1;
    let axis = params.axis;
    let mut num = 0.0;
    let mut wsum = 0.0;
    for i in 0..n {
        let qs = Segment::between(&query[i], &query[i + 1]);
        let cs = Segment::between(&candidate[i], &candidate[i + 1]);
        let amp_diff = match params.amplitude_metric {
            crate::params::AmplitudeMetric::Axis => {
                (qs.displacement(axis) - cs.displacement(axis)).abs()
            }
            crate::params::AmplitudeMetric::Spatial => {
                let dq = qs.end_position - qs.start_position;
                let dc = cs.end_position - cs.start_position;
                (dq - dc).norm()
            }
        };
        let freq_diff = (qs.duration() - cs.duration()).abs();
        let wi = if use_vertex_weights {
            vertex_weight(params, i, n)
        } else {
            1.0
        };
        num += wi * (params.wa * amp_diff + params.wf * freq_diff);
        wsum += wi;
    }
    let ws = params.ws(relation);
    Some(num / (wsum * ws))
}

/// The online subsequence distance (Definition 2): recency-weighted,
/// source-weighted, per-segment-normalized. `None` when the state orders
/// differ.
pub fn online_distance(
    query: &[Vertex],
    candidate: &[Vertex],
    params: &Params,
    relation: SourceRelation,
) -> Option<f64> {
    weighted_distance(query, candidate, params, relation, true)
}

/// The offline subsequence distance (Section 5): the online distance with
/// every vertex weight set to 1 (there is no "current time" offline).
/// Source weights still apply.
pub fn offline_distance(
    query: &[Vertex],
    candidate: &[Vertex],
    params: &Params,
    relation: SourceRelation,
) -> Option<f64> {
    weighted_distance(query, candidate, params, relation, false)
}

/// Safety factor for early-abandon thresholds: the reverse-order partial
/// sums the abandon test sees differ from the canonical forward sums by at
/// most a few ULPs per term (n ≤ 60 terms), so a 1e-9 relative margin
/// guarantees a window is abandoned only when its exact forward-computed
/// distance provably exceeds the bound.
pub(crate) const ABANDON_MARGIN: f64 = 1.0 + 1e-9;

/// The query side of the columnar scoring engine: per-segment features of
/// the query laid out as flat arrays, plus the precomputed recency weights.
///
/// `wsum` is accumulated in the same forward order as the naive
/// [`online_distance`] loop, so distances computed through
/// [`WindowScorer::score_window`] are bit-identical to the vertex-walking
/// path.
#[derive(Debug, Clone)]
pub struct QueryCols {
    /// Per-segment breathing state, as canonical indices.
    pub states: Vec<u8>,
    /// Signed displacement of each segment along the classification axis.
    pub disp: Vec<f64>,
    /// Spatial displacement vector of each segment.
    pub dvec: Vec<Position>,
    /// Duration of each segment.
    pub dur: Vec<f64>,
    /// Recency weight `wi(i)` of each segment.
    pub wi: Vec<f64>,
    /// `Σ wi`, accumulated in canonical forward order.
    pub wsum: f64,
}

impl QueryCols {
    /// Extracts the query columns from its vertices. `None` for degenerate
    /// queries (fewer than two vertices).
    pub fn build(vertices: &[Vertex], params: &Params) -> Option<Self> {
        let n = vertices.len().checked_sub(1)?;
        if n == 0 {
            return None;
        }
        let mut states = Vec::with_capacity(n);
        let mut disp = Vec::with_capacity(n);
        let mut dvec = Vec::with_capacity(n);
        let mut dur = Vec::with_capacity(n);
        let mut wi = Vec::with_capacity(n);
        let mut wsum = 0.0f64;
        for (i, w) in vertices.windows(2).enumerate() {
            let s = Segment::between(&w[0], &w[1]);
            states.push(s.state.index() as u8);
            disp.push(s.displacement(params.axis));
            dvec.push(s.end_position - s.start_position);
            dur.push(s.duration());
            let weight = vertex_weight(params, i, n);
            wi.push(weight);
            wsum += weight;
        }
        Some(QueryCols {
            states,
            disp,
            dvec,
            dur,
            wi,
            wsum,
        })
    }

    /// Number of query segments.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Always false (degenerate queries cannot be constructed).
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// The candidate side of one columnar scoring call: flat slices covering
/// exactly the window's segments (borrowed from a
/// [`tsm_db::StreamFeatures`] column set).
#[derive(Debug, Clone, Copy)]
pub struct WindowCols<'a> {
    /// Per-segment breathing state indices.
    pub states: &'a [u8],
    /// Signed per-segment displacement along the classification axis.
    pub disp: &'a [f64],
    /// Per-segment spatial displacement vectors.
    pub dvec: &'a [Position],
    /// Per-segment durations.
    pub dur: &'a [f64],
}

/// A reusable early-abandoning window scorer.
///
/// [`WindowScorer::score_window`] visits segments most-recent-first
/// (highest `wi`, largest expected contribution) accumulating the weighted
/// numerator, and bails as soon as the partial sum provably exceeds the
/// caller's bound — typically `min(δ, current k-th best distance)`.
/// Surviving windows are re-summed in canonical forward order from the
/// buffered terms, so returned distances are **bit-identical** to
/// [`online_distance`] (property-tested in `tests/matcher_properties.rs`).
#[derive(Debug, Default)]
pub struct WindowScorer {
    terms: Vec<f64>,
}

/// How one candidate window fared against the scorer — instrumentation
/// needs the `None` of [`WindowScorer::score_window`] split into its two
/// causes so `windows_scored == abandoned + completed` reconciles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScoreOutcome {
    /// State orders differ; the window was never scored.
    StateMismatch,
    /// Scoring started but the partial sum proved the distance exceeds
    /// the bound (early abandon).
    Abandoned,
    /// The exact online distance (which may still marginally exceed the
    /// bound — callers re-check against δ).
    Scored(f64),
}

impl WindowScorer {
    /// A scorer with an empty scratch buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scores one candidate window against the query columns.
    ///
    /// Returns `None` when the state orders differ, or when the partial
    /// numerator proves the distance exceeds `bound` (early abandon);
    /// otherwise the exact online distance, which may still exceed `bound`
    /// marginally — callers must re-check against δ.
    pub fn score_window(
        &mut self,
        query: &QueryCols,
        cand: WindowCols<'_>,
        params: &Params,
        ws: f64,
        bound: f64,
    ) -> Option<f64> {
        match self.score_window_outcome(query, cand, params, ws, bound) {
            ScoreOutcome::Scored(d) => Some(d),
            ScoreOutcome::StateMismatch | ScoreOutcome::Abandoned => None,
        }
    }

    /// Like [`WindowScorer::score_window`] but distinguishes the two
    /// rejection causes (for the metrics layer).
    pub fn score_window_outcome(
        &mut self,
        query: &QueryCols,
        cand: WindowCols<'_>,
        params: &Params,
        ws: f64,
        bound: f64,
    ) -> ScoreOutcome {
        if cand.states != query.states.as_slice() {
            return ScoreOutcome::StateMismatch;
        }
        let n = query.states.len();
        debug_assert!(cand.disp.len() == n && cand.dur.len() == n && cand.dvec.len() == n);
        let denom = query.wsum * ws;
        let limit = bound * denom * ABANDON_MARGIN;
        self.terms.clear();
        self.terms.resize(n, 0.0);
        let mut partial = 0.0f64;
        match params.amplitude_metric {
            crate::params::AmplitudeMetric::Axis => {
                for i in (0..n).rev() {
                    let amp_diff = (query.disp[i] - cand.disp[i]).abs();
                    let freq_diff = (query.dur[i] - cand.dur[i]).abs();
                    let term = query.wi[i] * (params.wa * amp_diff + params.wf * freq_diff);
                    self.terms[i] = term;
                    partial += term;
                    if partial > limit {
                        return ScoreOutcome::Abandoned;
                    }
                }
            }
            crate::params::AmplitudeMetric::Spatial => {
                for i in (0..n).rev() {
                    let amp_diff = (query.dvec[i] - cand.dvec[i]).norm();
                    let freq_diff = (query.dur[i] - cand.dur[i]).abs();
                    let term = query.wi[i] * (params.wa * amp_diff + params.wf * freq_diff);
                    self.terms[i] = term;
                    partial += term;
                    if partial > limit {
                        return ScoreOutcome::Abandoned;
                    }
                }
            }
        }
        // Re-sum in canonical forward order: each buffered term was
        // computed with the exact expression of the naive loop, so this
        // reproduces `online_distance` bit for bit.
        let mut num = 0.0f64;
        for &t in &self.terms[..n] {
            num += t;
        }
        ScoreOutcome::Scored(num / denom)
    }
}

/// Definition 2's acceptance test: same state order *and* distance within
/// δ.
pub fn is_similar(
    query: &[Vertex],
    candidate: &[Vertex],
    params: &Params,
    relation: SourceRelation,
) -> bool {
    matches!(online_distance(query, candidate, params, relation), Some(d) if d <= params.delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsm_model::BreathState::*;

    fn cycle(t0: f64, amplitude: f64, period: f64, baseline: f64) -> Vec<Vertex> {
        vec![
            Vertex::new_1d(t0, baseline + amplitude, Exhale),
            Vertex::new_1d(t0 + period * 0.4, baseline, EndOfExhale),
            Vertex::new_1d(t0 + period * 0.6, baseline, Inhale),
            Vertex::new_1d(t0 + period, baseline + amplitude, Exhale),
        ]
    }

    #[test]
    fn identical_sequences_have_zero_distance() {
        let p = Params::default();
        let a = cycle(0.0, 10.0, 4.0, 0.0);
        let d = online_distance(&a, &a, &p, SourceRelation::SameSession).unwrap();
        assert_eq!(d, 0.0);
        assert!(is_similar(&a, &a, &p, SourceRelation::SameSession));
    }

    #[test]
    fn distance_is_symmetric_within_a_relation() {
        let p = Params::default();
        let a = cycle(0.0, 10.0, 4.0, 0.0);
        let b = cycle(100.0, 12.0, 4.5, 2.0);
        let dab = online_distance(&a, &b, &p, SourceRelation::SamePatient).unwrap();
        let dba = online_distance(&b, &a, &p, SourceRelation::SamePatient).unwrap();
        assert!((dab - dba).abs() < 1e-12);
    }

    #[test]
    fn offset_translation_insensitive() {
        let p = Params::default();
        let a = cycle(0.0, 10.0, 4.0, 0.0);
        let b = cycle(50.0, 10.0, 4.0, 25.0); // same shape, huge baseline shift
        let d = online_distance(&a, &b, &p, SourceRelation::SameSession).unwrap();
        assert!(d < 1e-12, "baseline shift leaked into distance: {d}");
    }

    #[test]
    fn state_order_gate() {
        let p = Params::default();
        let a = cycle(0.0, 10.0, 4.0, 0.0);
        let mut b = cycle(0.0, 10.0, 4.0, 0.0);
        b[1].state = Irregular;
        assert_eq!(
            online_distance(&a, &b, &p, SourceRelation::SameSession),
            None
        );
        // Different lengths gate too.
        assert_eq!(
            online_distance(&a, &a[..3], &p, SourceRelation::SameSession),
            None
        );
        // Degenerate windows gate.
        assert_eq!(
            online_distance(&a[..1], &a[..1], &p, SourceRelation::SameSession),
            None
        );
    }

    #[test]
    fn source_weight_orders_the_tiers() {
        let p = Params::default();
        let a = cycle(0.0, 10.0, 4.0, 0.0);
        let b = cycle(0.0, 12.0, 4.2, 0.0);
        let d_sess = online_distance(&a, &b, &p, SourceRelation::SameSession).unwrap();
        let d_pat = online_distance(&a, &b, &p, SourceRelation::SamePatient).unwrap();
        let d_oth = online_distance(&a, &b, &p, SourceRelation::OtherPatient).unwrap();
        assert!(d_sess < d_pat && d_pat < d_oth);
        assert!((d_pat / d_sess - 1.0 / 0.9).abs() < 1e-9);
        assert!((d_oth / d_sess - 1.0 / 0.3).abs() < 1e-9);
    }

    #[test]
    fn amplitude_counts_more_than_frequency() {
        let p = Params::default();
        let a = cycle(0.0, 10.0, 4.0, 0.0);
        // 1 mm of amplitude deviation per segment...
        let amp_dev = cycle(0.0, 11.0, 4.0, 0.0);
        // ...vs 1 s of duration deviation overall.
        let freq_dev = cycle(0.0, 10.0, 5.0, 0.0);
        let da = online_distance(&a, &amp_dev, &p, SourceRelation::SameSession).unwrap();
        let df = online_distance(&a, &freq_dev, &p, SourceRelation::SameSession).unwrap();
        assert!(da > df, "amplitude {da} vs frequency {df}");
    }

    #[test]
    fn recency_weighting_prefers_matching_tails() {
        let p = Params::default();
        // Two cycles; query deviates from candidate A early, from candidate
        // B late, by the same amount.
        let mut q = cycle(0.0, 10.0, 4.0, 0.0);
        q.extend(cycle(4.0, 10.0, 4.0, 0.0).into_iter().skip(1));
        let mut early = q.clone();
        early[0] = Vertex::new_1d(0.0, 13.0, Exhale); // first segment off
        let mut late = q.clone();
        let last = late.len() - 1;
        late[last] = Vertex::new_1d(8.0, 13.0, Exhale); // last segment off
        let de = online_distance(&q, &early, &p, SourceRelation::SameSession).unwrap();
        let dl = online_distance(&q, &late, &p, SourceRelation::SameSession).unwrap();
        assert!(
            dl > de,
            "recent deviation {dl} should cost more than old deviation {de}"
        );
        // Offline, both deviations cost the same.
        let de_off = offline_distance(&q, &early, &p, SourceRelation::SameSession).unwrap();
        let dl_off = offline_distance(&q, &late, &p, SourceRelation::SameSession).unwrap();
        assert!((de_off - dl_off).abs() < 1e-12);
    }

    #[test]
    fn vertex_weight_shape() {
        let p = Params::default();
        let n = 9;
        assert_eq!(vertex_weight(&p, 0, n), 0.8);
        assert_eq!(vertex_weight(&p, n - 1, n), 1.0);
        for i in 1..n {
            assert!(vertex_weight(&p, i, n) > vertex_weight(&p, i - 1, n));
        }
        assert_eq!(vertex_weight(&p, 0, 1), 1.0);
    }

    #[test]
    fn spatial_metric_sees_off_axis_motion() {
        use crate::params::AmplitudeMetric;
        use tsm_model::Position;
        let mk = |lateral: f64| -> Vec<Vertex> {
            vec![
                Vertex::new(0.0, Position::new_2d(10.0, 0.0), Exhale),
                Vertex::new(1.6, Position::new_2d(0.0, lateral), EndOfExhale),
                Vertex::new(2.4, Position::new_2d(0.0, lateral), Inhale),
                Vertex::new(4.0, Position::new_2d(10.0, 0.0), Exhale),
            ]
        };
        let a = mk(0.0);
        let b = mk(6.0); // identical on axis 0, very different laterally
        let axis_params = Params::default();
        let spatial_params = Params {
            amplitude_metric: AmplitudeMetric::Spatial,
            ..Params::default()
        };
        let d_axis = online_distance(&a, &b, &axis_params, SourceRelation::SameSession).unwrap();
        let d_spatial =
            online_distance(&a, &b, &spatial_params, SourceRelation::SameSession).unwrap();
        assert!(d_axis < 1e-12, "axis metric should be blind here: {d_axis}");
        assert!(
            d_spatial > 1.0,
            "spatial metric missed lateral motion: {d_spatial}"
        );
        // For purely 1-D-differing windows the two metrics agree.
        let c = vec![
            Vertex::new(0.0, Position::new_2d(12.0, 0.0), Exhale),
            Vertex::new(1.6, Position::new_2d(0.0, 0.0), EndOfExhale),
            Vertex::new(2.4, Position::new_2d(0.0, 0.0), Inhale),
            Vertex::new(4.0, Position::new_2d(12.0, 0.0), Exhale),
        ];
        let da = online_distance(&a, &c, &axis_params, SourceRelation::SameSession).unwrap();
        let ds = online_distance(&a, &c, &spatial_params, SourceRelation::SameSession).unwrap();
        assert!((da - ds).abs() < 1e-12);
    }

    fn window_cols(vertices: &[Vertex], params: &Params) -> QueryCols {
        QueryCols::build(vertices, params).unwrap()
    }

    #[test]
    fn columnar_score_is_bit_identical_to_online_distance() {
        for params in [
            Params::default(),
            Params {
                amplitude_metric: crate::params::AmplitudeMetric::Spatial,
                ..Params::default()
            },
        ] {
            let q = cycle(0.0, 10.0, 4.0, 0.0);
            let c = cycle(3.0, 11.5, 4.4, 1.0);
            let qc = window_cols(&q, &params);
            let cc = window_cols(&c, &params);
            let mut scorer = WindowScorer::new();
            for relation in [
                SourceRelation::SameSession,
                SourceRelation::SamePatient,
                SourceRelation::OtherPatient,
            ] {
                let naive = online_distance(&q, &c, &params, relation).unwrap();
                let ws = params.ws(relation);
                let cand = WindowCols {
                    states: &cc.states,
                    disp: &cc.disp,
                    dvec: &cc.dvec,
                    dur: &cc.dur,
                };
                let columnar = scorer
                    .score_window(&qc, cand, &params, ws, f64::INFINITY)
                    .unwrap();
                assert_eq!(naive.to_bits(), columnar.to_bits(), "{relation:?}");
            }
        }
    }

    #[test]
    fn columnar_score_gates_state_order_and_abandons() {
        let params = Params::default();
        let q = cycle(0.0, 10.0, 4.0, 0.0);
        let qc = window_cols(&q, &params);
        let mut scorer = WindowScorer::new();
        // Different state order: gated.
        let mut other = cycle(0.0, 10.0, 4.0, 0.0);
        other[1].state = Irregular;
        let oc = window_cols(&other, &params);
        let cand = WindowCols {
            states: &oc.states,
            disp: &oc.disp,
            dvec: &oc.dvec,
            dur: &oc.dur,
        };
        assert_eq!(
            scorer.score_window(&qc, cand, &params, 1.0, f64::INFINITY),
            None
        );
        // A far candidate is abandoned under a tight bound but scored
        // exactly under a loose one.
        let far = cycle(0.0, 40.0, 4.0, 0.0);
        let fc = window_cols(&far, &params);
        let cand = WindowCols {
            states: &fc.states,
            disp: &fc.disp,
            dvec: &fc.dvec,
            dur: &fc.dur,
        };
        assert_eq!(scorer.score_window(&qc, cand, &params, 1.0, 0.5), None);
        let exact = scorer
            .score_window(&qc, cand, &params, 1.0, f64::INFINITY)
            .unwrap();
        let naive = online_distance(&q, &far, &params, SourceRelation::SameSession).unwrap();
        assert_eq!(exact.to_bits(), naive.to_bits());
        // A bound exactly at the distance must NOT abandon (ties score).
        let at_bound = scorer.score_window(&qc, cand, &params, 1.0, exact);
        assert_eq!(at_bound, Some(exact));
    }

    #[test]
    fn normalization_makes_length_comparable() {
        let p = Params::default();
        // One cycle with a fixed per-segment deviation...
        let q1 = cycle(0.0, 10.0, 4.0, 0.0);
        let c1 = cycle(0.0, 11.0, 4.0, 0.0);
        // ...and three cycles with the same per-segment deviation.
        let mut q3 = cycle(0.0, 10.0, 4.0, 0.0);
        q3.extend(cycle(4.0, 10.0, 4.0, 0.0).into_iter().skip(1));
        q3.extend(cycle(8.0, 10.0, 4.0, 0.0).into_iter().skip(1));
        let mut c3 = cycle(0.0, 11.0, 4.0, 0.0);
        c3.extend(cycle(4.0, 11.0, 4.0, 0.0).into_iter().skip(1));
        c3.extend(cycle(8.0, 11.0, 4.0, 0.0).into_iter().skip(1));
        let d1 = offline_distance(&q1, &c1, &p, SourceRelation::SameSession).unwrap();
        let d3 = offline_distance(&q3, &c3, &p, SourceRelation::SameSession).unwrap();
        assert!(
            (d1 - d3).abs() < 1e-9,
            "per-segment normalization broken: {d1} vs {d3}"
        );
    }
}
