//! The parametric knobs of the matching system (paper Table 1).
//!
//! The similarity measure is deliberately *parametric*: "It can be applied
//! in other application domains by adjusting the parameters of wa, wf, wi
//! and ws." This module holds those parameters plus the query-generation
//! and prediction knobs, with constructors for each ablation of Figure 6.

use serde::{Deserialize, Serialize};

/// How per-segment amplitude deviations are measured.
///
/// The paper presents motion in 1-D but stresses the data model "can work
/// for any n-dimensional space"; with multi-dimensional streams the
/// spatial metric compares full displacement *vectors* instead of one
/// axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AmplitudeMetric {
    /// Compare displacements along the classification axis only (the
    /// paper's 1-D exposition).
    #[default]
    Axis,
    /// Compare the Euclidean norm of the displacement-vector difference
    /// across all spatial dimensions.
    Spatial,
}

/// All tunable parameters, defaulting to the paper's Table 1 settings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Weight for amplitude differences (`wa`, Table 1: 1.0). The paper
    /// always keeps `wa >= wf` "to ensure that the amplitude has more
    /// significance than the frequency".
    pub wa: f64,
    /// Weight for frequency (segment-duration) differences (`wf`,
    /// Table 1: 0.25).
    pub wf: f64,
    /// Base of the per-vertex recency weight (`wi`, Table 1: 0.8). The
    /// weight rises linearly from this base at the oldest vertex to 1.0 at
    /// the most recent one; offline analysis sets every vertex weight
    /// to 1.
    pub wi_base: f64,
    /// Source-stream weight for candidates from the same session
    /// (Table 1: 1.0).
    pub ws_same_session: f64,
    /// Source-stream weight for candidates from another session of the
    /// same patient (Table 1: 0.9).
    pub ws_same_patient: f64,
    /// Source-stream weight for candidates from a different patient
    /// (Table 1: 0.3).
    pub ws_other_patient: f64,
    /// Subsequence distance threshold `δ` (Table 1: 8.0). Candidates with
    /// a larger weighted distance are not considered similar.
    pub delta: f64,
    /// Stability threshold `θ` (Table 1: 6.0): a strip with a stability
    /// statistic at or below this counts as stable.
    pub theta: f64,
    /// Minimum query length in breathing cycles (`L_min`; Section 4.1 and
    /// Figure 7b use 2–3).
    pub lmin_cycles: usize,
    /// Maximum query length in breathing cycles (`L_max`; Section 4.1 and
    /// Figure 7b use 8–9).
    pub lmax_cycles: usize,
    /// Number of most-similar subsequences used per query in the stream
    /// distance (`k` of Definition 3; "for example, k can be 10").
    pub k_retrieve: usize,
    /// Minimum retrieved matches required before a prediction is made
    /// ("we predict only if there are a certain number of retrieved
    /// subsequences").
    pub min_matches: usize,
    /// Classification axis of the motion (must match the segmenter's).
    pub axis: usize,
    /// Amplitude metric for multi-dimensional streams.
    pub amplitude_metric: AmplitudeMetric,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            wa: 1.0,
            wf: 0.25,
            wi_base: 0.8,
            ws_same_session: 1.0,
            ws_same_patient: 0.9,
            ws_other_patient: 0.3,
            delta: 8.0,
            theta: 6.0,
            lmin_cycles: 3,
            lmax_cycles: 8,
            k_retrieve: 10,
            min_matches: 3,
            axis: 0,
            amplitude_metric: AmplitudeMetric::Axis,
        }
    }
}

impl Params {
    /// Figure 6's "no weighting" ablation: amplitude and frequency count
    /// equally, every source tier and every vertex weighs 1.
    pub fn no_weighting() -> Self {
        Params {
            wa: 1.0,
            wf: 1.0,
            wi_base: 1.0,
            ws_same_session: 1.0,
            ws_same_patient: 1.0,
            ws_other_patient: 1.0,
            ..Default::default()
        }
    }

    /// Figure 6's "wa, wf only" ablation: tuned amplitude/frequency
    /// weights, but neither stream nor vertex weighting.
    pub fn amp_freq_only() -> Self {
        Params {
            wi_base: 1.0,
            ws_same_session: 1.0,
            ws_same_patient: 1.0,
            ws_other_patient: 1.0,
            ..Default::default()
        }
    }

    /// Figure 6's "+ weighted streams" ablation: wa/wf plus the
    /// source-stream tiers, but flat vertex weights.
    pub fn with_stream_weights() -> Self {
        Params {
            wi_base: 1.0,
            ..Default::default()
        }
    }

    /// Figure 6's "+ weighted line segments" ablation: wa/wf plus recency
    /// vertex weights, but flat stream weights.
    pub fn with_vertex_weights() -> Self {
        Params {
            ws_same_session: 1.0,
            ws_same_patient: 1.0,
            ws_other_patient: 1.0,
            ..Default::default()
        }
    }

    /// Figure 6's "all weighting" configuration — identical to
    /// [`Params::default`].
    pub fn all_weighting() -> Self {
        Self::default()
    }

    /// Minimum query length in segments (3 per cycle).
    pub fn lmin_segments(&self) -> usize {
        self.lmin_cycles * 3
    }

    /// Maximum query length in segments (3 per cycle).
    pub fn lmax_segments(&self) -> usize {
        self.lmax_cycles * 3
    }

    /// The source-stream weight for a provenance relation.
    pub fn ws(&self, relation: tsm_db::SourceRelation) -> f64 {
        match relation {
            tsm_db::SourceRelation::SameSession => self.ws_same_session,
            tsm_db::SourceRelation::SamePatient => self.ws_same_patient,
            tsm_db::SourceRelation::OtherPatient => self.ws_other_patient,
        }
    }

    /// Validates invariants the paper states (wa ≥ wf, weight ordering,
    /// positive thresholds, sane lengths).
    pub fn validate(&self) -> Result<(), String> {
        if self.wa < self.wf {
            return Err(format!(
                "amplitude weight wa={} must be >= frequency weight wf={}",
                self.wa, self.wf
            ));
        }
        if !(0.0..=1.0).contains(&self.wi_base) {
            return Err(format!("wi_base={} must be in [0,1]", self.wi_base));
        }
        if !(self.ws_other_patient <= self.ws_same_patient
            && self.ws_same_patient <= self.ws_same_session)
        {
            return Err("source weights must order other <= same-patient <= same-session".into());
        }
        if self.ws_other_patient <= 0.0 {
            return Err("source weights must be positive".into());
        }
        if self.delta <= 0.0 || self.theta <= 0.0 {
            return Err("thresholds must be positive".into());
        }
        if self.lmin_cycles == 0 || self.lmin_cycles > self.lmax_cycles {
            return Err(format!(
                "query length bounds invalid: {}..{}",
                self.lmin_cycles, self.lmax_cycles
            ));
        }
        if self.k_retrieve == 0 {
            return Err("k_retrieve must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsm_db::SourceRelation;

    #[test]
    fn defaults_match_table_1() {
        let p = Params::default();
        assert_eq!(p.wa, 1.0);
        assert_eq!(p.wf, 0.25);
        assert_eq!(p.wi_base, 0.8);
        assert_eq!(p.ws_same_session, 1.0);
        assert_eq!(p.ws_same_patient, 0.9);
        assert_eq!(p.ws_other_patient, 0.3);
        assert_eq!(p.delta, 8.0);
        assert_eq!(p.theta, 6.0);
        p.validate().unwrap();
    }

    #[test]
    fn ablations_are_valid_and_distinct() {
        for p in [
            Params::no_weighting(),
            Params::amp_freq_only(),
            Params::with_stream_weights(),
            Params::with_vertex_weights(),
            Params::all_weighting(),
        ] {
            p.validate().unwrap();
        }
        assert_ne!(Params::no_weighting(), Params::amp_freq_only());
        assert_eq!(Params::all_weighting(), Params::default());
    }

    #[test]
    fn ws_lookup() {
        let p = Params::default();
        assert_eq!(p.ws(SourceRelation::SameSession), 1.0);
        assert_eq!(p.ws(SourceRelation::SamePatient), 0.9);
        assert_eq!(p.ws(SourceRelation::OtherPatient), 0.3);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let bad = Params {
            wa: 0.1,
            wf: 0.5,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = Params {
            ws_other_patient: 2.0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = Params {
            lmin_cycles: 9,
            lmax_cycles: 3,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = Params {
            delta: 0.0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn segment_conversions() {
        let p = Params::default();
        assert_eq!(p.lmin_segments(), 9);
        assert_eq!(p.lmax_segments(), 24);
    }
}
