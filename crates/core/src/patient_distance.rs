//! Patient similarity (paper Definition 4) and cohort distance matrices.
//!
//! "The distance between two patients is the average distance between two
//! streams, one from the first patient and the other from the second
//! patient." Patient distances feed clustering (Section 5.3), which in
//! turn feeds correlation discovery and cluster-restricted prediction.

use crate::cluster::DistanceMatrix;
use crate::params::Params;
use crate::stream_distance::{stream_distance, StreamDistanceConfig};
use tsm_db::{PatientId, StreamStore};

/// The Definition-4 patient distance: the mean of all cross-stream
/// distances between the two patients' streams. For a patient against
/// themselves, distinct stream pairs are used (the diagonal of Figure 8c).
/// Returns `None` when no stream pair produces a distance (e.g. streams
/// too short).
pub fn patient_distance(
    store: &StreamStore,
    a: PatientId,
    b: PatientId,
    params: &Params,
    cfg: &StreamDistanceConfig,
) -> Option<f64> {
    let streams_a = store.streams_of(a);
    let streams_b = store.streams_of(b);
    let mut total = 0.0;
    let mut count = 0usize;
    for &ra in &streams_a {
        for &rb in &streams_b {
            if ra == rb {
                continue; // self-vs-self stream pairs are degenerate
            }
            let (sa, sb) = (store.stream(ra)?, store.stream(rb)?);
            let relation = store.relation(ra, rb)?;
            if let Some(d) = stream_distance(&sa, &sb, relation, params, cfg) {
                total += d;
                count += 1;
            }
        }
    }
    (count > 0).then(|| total / count as f64)
}

/// Builds the full symmetric patient-distance matrix for a cohort,
/// fanning the (patient-pair) work out over `threads` workers with
/// `crossbeam` scoped threads. Pairs with no defined distance are filled
/// with the largest observed distance (so clustering still works).
pub fn patient_distance_matrix(
    store: &StreamStore,
    params: &Params,
    cfg: &StreamDistanceConfig,
    threads: usize,
) -> DistanceMatrix {
    let patients = store.patients();
    let n = patients.len();
    let mut pairs = Vec::new();
    for i in 0..n {
        for j in i..n {
            pairs.push((i, j));
        }
    }

    let threads = threads.max(1);
    let chunk = pairs.len().div_ceil(threads);
    let mut results: Vec<Option<f64>> = vec![None; pairs.len()];

    let scope_result = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (t, chunk_pairs) in pairs.chunks(chunk).enumerate() {
            let store = store.clone();
            let patients = &patients;
            handles.push((
                t,
                chunk_pairs,
                scope.spawn(move |_| {
                    chunk_pairs
                        .iter()
                        .map(|&(i, j)| {
                            patient_distance(&store, patients[i], patients[j], params, cfg)
                        })
                        .collect::<Vec<_>>()
                }),
            ));
        }
        for (t, chunk_pairs, h) in handles {
            // A panicked worker loses only its chunk: recompute it here.
            let chunk_results = h.join().unwrap_or_else(|_| {
                chunk_pairs
                    .iter()
                    .map(|&(i, j)| patient_distance(store, patients[i], patients[j], params, cfg))
                    .collect()
            });
            let base = t * chunk;
            results[base..base + chunk_results.len()].copy_from_slice(&chunk_results);
        }
    });
    if scope_result.is_err() {
        // Scoped-thread machinery itself failed: fall back to computing
        // every pair on this thread.
        for (slot, &(i, j)) in results.iter_mut().zip(&pairs) {
            *slot = patient_distance(store, patients[i], patients[j], params, cfg);
        }
    }

    let max_seen = results
        .iter()
        .flatten()
        .cloned()
        .fold(0.0f64, f64::max)
        .max(1.0);
    let mut dm = DistanceMatrix::new(n);
    for (&(i, j), &d) in pairs.iter().zip(&results) {
        let v = if i == j {
            0.0
        } else {
            d.unwrap_or(max_seen * 1.5)
        };
        dm.set(i, j, v);
    }
    dm
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsm_db::PatientAttributes;
    use tsm_model::{BreathState::*, PlrTrajectory, Vertex};

    fn plr(n: usize, amplitude: f64, period: f64, wobble: f64) -> PlrTrajectory {
        let mut v = Vec::new();
        let mut t = 0.0;
        for i in 0..n {
            let a = amplitude * (1.0 + wobble * ((i % 3) as f64 - 1.0));
            v.push(Vertex::new_1d(t, a, Exhale));
            v.push(Vertex::new_1d(t + period * 0.4, 0.0, EndOfExhale));
            v.push(Vertex::new_1d(t + period * 0.6, 0.0, Inhale));
            t += period;
        }
        v.push(Vertex::new_1d(t, amplitude, Exhale));
        PlrTrajectory::from_vertices(v).unwrap()
    }

    /// Three patients: two deep-slow breathers, one shallow-fast.
    fn setup() -> (StreamStore, Vec<PatientId>) {
        let store = StreamStore::new();
        let specs = [(15.0, 5.0), (14.0, 4.8), (6.0, 3.0)];
        let mut ids = Vec::new();
        for (amp, per) in specs {
            let p = store.add_patient(PatientAttributes::new());
            store.add_stream(p, 0, plr(20, amp, per, 0.02), 0);
            store.add_stream(p, 1, plr(20, amp * 1.03, per * 0.98, 0.02), 0);
            ids.push(p);
        }
        (store, ids)
    }

    fn params() -> Params {
        Params {
            k_retrieve: 5,
            ..Params::default()
        }
    }

    fn cfg() -> StreamDistanceConfig {
        StreamDistanceConfig {
            len_segments: 6,
            stride: 2,
        }
    }

    #[test]
    fn self_distance_smaller_than_cross_distance() {
        let (store, ids) = setup();
        let p = params();
        let c = cfg();
        let d_self = patient_distance(&store, ids[0], ids[0], &p, &c).unwrap();
        let d_like = patient_distance(&store, ids[0], ids[1], &p, &c).unwrap();
        let d_unlike = patient_distance(&store, ids[0], ids[2], &p, &c).unwrap();
        assert!(d_self < d_like, "self {d_self} vs like {d_like}");
        assert!(d_like < d_unlike, "like {d_like} vs unlike {d_unlike}");
    }

    #[test]
    fn distance_is_symmetric() {
        let (store, ids) = setup();
        let p = params();
        let c = cfg();
        let ab = patient_distance(&store, ids[0], ids[1], &p, &c).unwrap();
        let ba = patient_distance(&store, ids[1], ids[0], &p, &c).unwrap();
        assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn matrix_agrees_with_pointwise_distances() {
        let (store, ids) = setup();
        let p = params();
        let c = cfg();
        let dm = patient_distance_matrix(&store, &p, &c, 2);
        assert_eq!(dm.len(), 3);
        for i in 0..3 {
            assert_eq!(dm.get(i, i), 0.0);
            for j in (i + 1)..3 {
                let d = patient_distance(&store, ids[i], ids[j], &p, &c).unwrap();
                assert!((dm.get(i, j) - d).abs() < 1e-12);
                assert_eq!(dm.get(i, j), dm.get(j, i));
            }
        }
    }

    #[test]
    fn single_threaded_matches_parallel() {
        let (store, _) = setup();
        let p = params();
        let c = cfg();
        let dm1 = patient_distance_matrix(&store, &p, &c, 1);
        let dm4 = patient_distance_matrix(&store, &p, &c, 4);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(dm1.get(i, j), dm4.get(i, j));
            }
        }
    }
}
