//! Zero-cost-when-disabled instrumentation for the online pipeline.
//!
//! The engine's three hot layers — the columnar matcher, the online
//! segmenter and the session runtime — account their work through a
//! [`MetricsRegistry`] handle. A disabled registry (the default) is a
//! `None` inside an `Option<Arc<_>>`: every record call is a branch on a
//! pointer and nothing else — no allocation, no atomics, no clock reads.
//! An enabled registry is a fixed block of atomic counters plus a few
//! fixed-bucket histograms, so recording never allocates either; hot
//! loops accumulate into a plain [`SearchTally`] and flush once per
//! search.
//!
//! Several invariants tie the counters together (checked by
//! [`MetricsSnapshot::check_invariants`] and the test suite):
//!
//! * `match.windows_scored == match.windows_abandoned + match.windows_completed`
//! * `match.batch_lanes_abandoned <= match.windows_abandoned`
//! * `match.batch_lanes_abandoned + match.f32_prune_rescans <=
//!   min(match.windows_scored, 8 · match.batch_groups_scored)`
//! * `cache.hits + cache.misses == cache.lookups`
//! * `cache.rebuilds == cache.misses + cache.daemon_rebuilds`
//! * `cohort.sessions_failed <= cohort.sessions`
//! * `session.predictions_served + session.predictions_abstained == session.ticks`
//! * `session.abstained_unhealthy <= session.predictions_abstained`
//! * `session.health_recovered <= session.health_recovering <= session.health_degraded`
//! * `segment.resyncs <= segment.smoother_resets`
//! * `serve.rejected <= serve.requests`
//! * salvage stream counters imply `store.salvage_loads > 0`
//!
//! [`MetricsSnapshot`] is a point-in-time copy: diffable (`later.diff
//! (&earlier)` yields the work done in between) and mergeable across
//! sessions or workers. Counter names ending in `_hwm` are high-water
//! gauges: they merge by `max` and a diff keeps the later value.

use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Every counter the pipeline maintains. The enum is the index into the
/// registry's atomic block, so adding a counter is adding a variant plus
/// its name below.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Top-level searches issued against the matcher.
    Searches,
    /// Candidate windows handed to the scorer with a matching state order.
    WindowsScored,
    /// Scored windows cut short by early abandoning.
    WindowsAbandoned,
    /// Scored windows whose exact distance was computed.
    WindowsCompleted,
    /// Candidate windows rejected by the state-order gate before scoring.
    WindowsStateMismatch,
    /// Entries in the signature bucket before any band filtering
    /// (first `FeatureIndex` tier).
    IndexBucketCandidates,
    /// Entries surviving the amplitude band (second tier).
    IndexAmpBandCandidates,
    /// Entries surviving the duration band too (what the pruned scorer
    /// actually visits).
    IndexDurBandCandidates,
    /// Index lookups through the `IndexCache`.
    CacheLookups,
    /// Lookups served from the cache.
    CacheHits,
    /// Lookups that had to (re)build an index.
    CacheMisses,
    /// Index builds performed (== misses + daemon rebuilds; kept separate
    /// so the cache's own rebuild counter and the registry can be
    /// cross-checked).
    CacheRebuilds,
    /// Raw samples accepted by the segmenter.
    SegmenterSamples,
    /// Non-finite samples rejected at ingest.
    SamplesRejected,
    /// PLR vertices emitted.
    VerticesEmitted,
    /// Emitted vertices whose state differs from the previous vertex.
    StateTransitions,
    /// Times the preprocessing (smoothing) chain was reset, e.g. after a
    /// timestamp regression.
    SmootherResets,
    /// Prediction ticks fired by session runtimes.
    SessionTicks,
    /// Ticks that produced a prediction.
    PredictionsServed,
    /// Ticks where the predictor abstained.
    PredictionsAbstained,
    /// Sessions replayed by cohort runtimes.
    CohortSessions,
    /// Sessions that ended with an error instead of completing.
    CohortSessionsFailed,
    /// High-water mark of events pending in any session channel
    /// (max-merged gauge, see the module docs).
    CohortBacklogHwm,
    /// Segmenter resyncs triggered by the ingest guard (gap or
    /// backwards time). Every resync also resets the smoother, so
    /// `segment.resyncs <= segment.smoother_resets`.
    SegmenterResyncs,
    /// Duplicate-timestamp samples dropped by the ingest guard.
    DuplicatesDropped,
    /// Distinct stuck-sensor runs detected by the ingest guard.
    StuckRuns,
    /// Transitions into `SessionHealth::Degraded`.
    HealthDegraded,
    /// Transitions into `SessionHealth::Recovering`.
    HealthRecovering,
    /// Transitions back to `SessionHealth::Healthy` after recovery.
    HealthRecovered,
    /// Abstentions forced by session health (a subset of
    /// `session.predictions_abstained`).
    AbstainedUnhealthy,
    /// Recoverable per-sample faults the cohort supervisor absorbed
    /// instead of failing the session.
    CohortFaultsAbsorbed,
    /// Store loads that went through the salvage path.
    SalvageLoads,
    /// Streams recovered across all salvage loads.
    SalvageStreamsRecovered,
    /// Streams lost (expected minus recovered) across salvage loads.
    SalvageStreamsLost,
    /// Lane groups the batched f32 kernel scored (groups with at least
    /// one state-matched lane).
    BatchGroupsScored,
    /// Lanes the f32 tier pruned admissibly (counted into
    /// `match.windows_abandoned` as well — the lane *was* the abandon).
    BatchLanesAbandoned,
    /// f32-tier survivors re-scored by the exact f64 scorer.
    F32PruneRescans,
    /// Index rebuilds performed by the maintenance worker (refresh of a
    /// stale entry off the search path), a subset of `cache.rebuilds`.
    CacheDaemonRebuilds,
    /// HTTP requests the serve front-end answered (every response
    /// written, including parse failures and requests shed by admission
    /// control).
    ServeRequests,
    /// Requests shed by admission control or input validation (4xx/5xx
    /// responses), a subset of `serve.requests`.
    ServeRejected,
    /// Request body bytes the serve front-end accepted.
    ServeBytesIn,
    /// Response body bytes the serve front-end wrote.
    ServeBytesOut,
    /// Records appended to the write-ahead log.
    WalAppends,
    /// WAL appends that fsynced before acknowledging (the RPO = 0
    /// contract; a subset of `wal.appends`).
    WalFsyncs,
    /// WAL records applied during crash recovery.
    WalReplayedRecords,
    /// Crash-recovery passes performed.
    WalRecoveries,
    /// Streams captured in published snapshot images.
    SnapshotRecords,
    /// Snapshot checkpoints published.
    SnapshotCheckpoints,
    /// Recoveries that truncated a torn WAL tail (a subset of
    /// `wal.recoveries`).
    RecoveryTruncatedTail,
}

const COUNTER_COUNT: usize = Counter::RecoveryTruncatedTail as usize + 1;

const COUNTER_NAMES: [&str; COUNTER_COUNT] = [
    "match.searches",
    "match.windows_scored",
    "match.windows_abandoned",
    "match.windows_completed",
    "match.windows_state_mismatch",
    "index.bucket_candidates",
    "index.amp_band_candidates",
    "index.dur_band_candidates",
    "cache.lookups",
    "cache.hits",
    "cache.misses",
    "cache.rebuilds",
    "segment.samples",
    "segment.samples_rejected",
    "segment.vertices_emitted",
    "segment.state_transitions",
    "segment.smoother_resets",
    "session.ticks",
    "session.predictions_served",
    "session.predictions_abstained",
    "cohort.sessions",
    "cohort.sessions_failed",
    "cohort.backlog_hwm",
    "segment.resyncs",
    "segment.duplicates_dropped",
    "segment.stuck_runs",
    "session.health_degraded",
    "session.health_recovering",
    "session.health_recovered",
    "session.abstained_unhealthy",
    "cohort.faults_absorbed",
    "store.salvage_loads",
    "store.salvage_streams_recovered",
    "store.salvage_streams_lost",
    "match.batch_groups_scored",
    "match.batch_lanes_abandoned",
    "match.f32_prune_rescans",
    "cache.daemon_rebuilds",
    "serve.requests",
    "serve.rejected",
    "serve.bytes_in",
    "serve.bytes_out",
    "wal.appends",
    "wal.fsyncs",
    "wal.replayed_records",
    "wal.recoveries",
    "snapshot.records",
    "snapshot.checkpoints",
    "recovery.truncated_tail",
];

impl Counter {
    /// The snapshot key of this counter.
    pub fn name(self) -> &'static str {
        COUNTER_NAMES[self as usize]
    }
}

/// The latency/value histograms the pipeline maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// Wall time of one prediction tick (segment + query + search + vote).
    TickLatency,
    /// Wall time of fanning one tick out to a single consumer.
    ConsumerDispatch,
    /// Wall time of one whole matcher search.
    SearchLatency,
    /// Wall time of one HTTP request in the serve front-end (parse
    /// through response write).
    ServeLatency,
}

const HIST_COUNT: usize = Hist::ServeLatency as usize + 1;

const HIST_NAMES: [&str; HIST_COUNT] = [
    "session.tick_latency_ns",
    "session.consumer_dispatch_ns",
    "match.search_latency_ns",
    "serve.request_latency_ns",
];

impl Hist {
    /// The snapshot key of this histogram.
    pub fn name(self) -> &'static str {
        HIST_NAMES[self as usize]
    }
}

/// Number of buckets per histogram. Bucket `i` counts values in
/// `[256 << (i-1), 256 << i)` nanoseconds (bucket 0 holds everything
/// below 256 ns, the last bucket everything above ~2 s).
pub const HIST_BUCKETS: usize = 24;

fn bucket_index(ns: u64) -> usize {
    let shifted = ns >> 8;
    if shifted == 0 {
        0
    } else {
        ((64 - shifted.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

#[derive(Debug)]
struct HistInner {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl HistInner {
    fn new() -> Self {
        HistInner {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn observe(&self, v: u64) {
        // Relaxed throughout: monotone statistics counters; snapshots
        // tolerate a count/sum/bucket skew of in-flight observations.
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed); // Relaxed: see above.
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed); // Relaxed: see above.
    }
}

#[derive(Debug)]
struct Inner {
    counters: [AtomicU64; COUNTER_COUNT],
    hists: [HistInner; HIST_COUNT],
}

/// Per-search scratch tally: hot loops bump these plain integers and the
/// search flushes them into the registry once, so the scoring loop never
/// touches an atomic. Cheap enough to maintain unconditionally — the
/// enabled/disabled branch happens only at flush time.
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchTally {
    /// Windows passed to the scorer (state order matched).
    pub windows_scored: u64,
    /// Windows cut short by early abandoning.
    pub windows_abandoned: u64,
    /// Windows whose exact distance was computed.
    pub windows_completed: u64,
    /// Windows rejected by the state-order gate.
    pub windows_state_mismatch: u64,
    /// Signature-bucket entries considered (pruned/indexed paths).
    pub bucket_candidates: u64,
    /// Entries surviving the amplitude band.
    pub amp_band_candidates: u64,
    /// Entries surviving the duration band too.
    pub dur_band_candidates: u64,
    /// Lane groups the batched kernel scored (≥ 1 state-matched lane).
    pub batch_groups_scored: u64,
    /// Lanes the f32 tier pruned (each also counts as a scored+abandoned
    /// window, so the scalar balance equation still holds).
    pub batch_lanes_abandoned: u64,
    /// f32-tier survivors handed to the exact f64 rescan.
    pub f32_prune_rescans: u64,
}

impl SearchTally {
    /// Folds another tally (e.g. a parallel worker's) into this one. In
    /// debug builds the incoming tally and the merged result are both
    /// checked for reconciliation, so a lost or double-counted worker
    /// tally is caught at the join point.
    pub fn merge(&mut self, other: &SearchTally) {
        crate::invariants::tally_reconciled(other);
        self.windows_scored += other.windows_scored;
        self.windows_abandoned += other.windows_abandoned;
        self.windows_completed += other.windows_completed;
        self.windows_state_mismatch += other.windows_state_mismatch;
        self.bucket_candidates += other.bucket_candidates;
        self.amp_band_candidates += other.amp_band_candidates;
        self.dur_band_candidates += other.dur_band_candidates;
        self.batch_groups_scored += other.batch_groups_scored;
        self.batch_lanes_abandoned += other.batch_lanes_abandoned;
        self.f32_prune_rescans += other.f32_prune_rescans;
        crate::invariants::tally_reconciled(self);
    }
}

/// A cloneable handle to the instrumentation block. Disabled by default;
/// every clone observes the same counters.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Option<Arc<Inner>>,
}

impl MetricsRegistry {
    /// A registry that records. Allocates its (fixed-size) counter block
    /// once, here; recording never allocates.
    pub fn enabled() -> Self {
        MetricsRegistry {
            inner: Some(Arc::new(Inner {
                counters: std::array::from_fn(|_| AtomicU64::new(0)),
                hists: std::array::from_fn(|_| HistInner::new()),
            })),
        }
    }

    /// A registry that drops everything (the default).
    pub fn disabled() -> Self {
        MetricsRegistry::default()
    }

    /// Whether this handle records.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        if let Some(inner) = &self.inner {
            if n != 0 {
                // Relaxed: monotone counter; never orders other memory.
                inner.counters[c as usize].fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Increments a counter by one.
    #[inline]
    pub fn incr(&self, c: Counter) {
        if let Some(inner) = &self.inner {
            // Relaxed: monotone counter; never orders other memory.
            inner.counters[c as usize].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Raises a high-water gauge to at least `v`.
    #[inline]
    pub fn record_max(&self, c: Counter, v: u64) {
        if let Some(inner) = &self.inner {
            // Relaxed: max-merge gauge; commutative, order-insensitive.
            inner.counters[c as usize].fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Records one observation (in nanoseconds) into a histogram.
    #[inline]
    pub fn observe_ns(&self, h: Hist, ns: u64) {
        if let Some(inner) = &self.inner {
            inner.hists[h as usize].observe(ns);
        }
    }

    /// Starts a timer — `None` when disabled, so the disabled path never
    /// reads the clock.
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        // lint:allow(no-instant-now-in-hot-path): this *is* the metrics
        // timing layer every other module is required to route through.
        self.inner.as_ref().map(|_| Instant::now())
    }

    /// Completes a timer started with [`MetricsRegistry::start`].
    #[inline]
    pub fn observe_since(&self, h: Hist, started: Option<Instant>) {
        if let Some(t0) = started {
            self.observe_ns(h, t0.elapsed().as_nanos() as u64);
        }
    }

    /// Flushes a per-search tally into the counters. Debug builds check
    /// the tally reconciles (scored = abandoned + completed, narrowing
    /// candidate funnel) before it is folded into the registry.
    pub fn record_search(&self, t: &SearchTally) {
        crate::invariants::tally_reconciled(t);
        if self.inner.is_none() {
            return;
        }
        self.add(Counter::WindowsScored, t.windows_scored);
        self.add(Counter::WindowsAbandoned, t.windows_abandoned);
        self.add(Counter::WindowsCompleted, t.windows_completed);
        self.add(Counter::WindowsStateMismatch, t.windows_state_mismatch);
        self.add(Counter::IndexBucketCandidates, t.bucket_candidates);
        self.add(Counter::IndexAmpBandCandidates, t.amp_band_candidates);
        self.add(Counter::IndexDurBandCandidates, t.dur_band_candidates);
        self.add(Counter::BatchGroupsScored, t.batch_groups_scored);
        self.add(Counter::BatchLanesAbandoned, t.batch_lanes_abandoned);
        self.add(Counter::F32PruneRescans, t.f32_prune_rescans);
    }

    /// Folds a snapshot (typically a shard registry's interval `diff`)
    /// into this registry: counters add, `_hwm` gauges raise, histograms
    /// add bucket-wise. This is the registry-side of the snapshot
    /// monoid — `parent.absorb(&delta)` is equivalent to merging the
    /// delta into every future snapshot of `parent`. Unknown names (from
    /// a newer build's snapshot) are ignored. No-op when disabled.
    pub fn absorb(&self, delta: &MetricsSnapshot) {
        let Some(inner) = &self.inner else {
            return;
        };
        for (name, &v) in &delta.counters {
            if v == 0 {
                continue;
            }
            let Some(i) = COUNTER_NAMES.iter().position(|n| n == name) else {
                continue;
            };
            if is_hwm(name) {
                // Relaxed: max-merge gauge; commutative, order-insensitive.
                inner.counters[i].fetch_max(v, Ordering::Relaxed);
            } else {
                // Relaxed: monotone counter; never orders other memory.
                inner.counters[i].fetch_add(v, Ordering::Relaxed);
            }
        }
        for (name, h) in &delta.histograms {
            let Some(i) = HIST_NAMES.iter().position(|n| n == name) else {
                continue;
            };
            let mine = &inner.hists[i];
            // Relaxed throughout: monotone statistics (see HistInner).
            mine.count.fetch_add(h.count, Ordering::Relaxed);
            mine.sum.fetch_add(h.sum, Ordering::Relaxed); // Relaxed: see above.
            for (b, &n) in h.buckets.iter().enumerate().take(HIST_BUCKETS) {
                if n != 0 {
                    // Relaxed: monotone statistics (see above).
                    mine.buckets[b].fetch_add(n, Ordering::Relaxed);
                }
            }
        }
    }

    /// A point-in-time copy of every counter and histogram. A disabled
    /// registry snapshots as empty.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.inner else {
            return MetricsSnapshot::default();
        };
        // Relaxed throughout: snapshots are advisory statistics taken
        // while writers run; cross-counter consistency is reconciled at
        // quiescence (see MetricsSnapshot::check_invariants), not here.
        let mut counters = BTreeMap::new();
        for (i, a) in inner.counters.iter().enumerate() {
            // Relaxed: advisory snapshot (see above).
            counters.insert(COUNTER_NAMES[i].to_string(), a.load(Ordering::Relaxed));
        }
        let mut histograms = BTreeMap::new();
        for (i, h) in inner.hists.iter().enumerate() {
            histograms.insert(
                HIST_NAMES[i].to_string(),
                HistogramSnapshot {
                    // Relaxed: same advisory-snapshot contract as above.
                    count: h.count.load(Ordering::Relaxed),
                    sum: h.sum.load(Ordering::Relaxed), // Relaxed: see above.
                    buckets: h
                        .buckets
                        .iter()
                        // Relaxed: advisory snapshot (see above).
                        .map(|b| b.load(Ordering::Relaxed))
                        .collect(),
                },
            );
        }
        MetricsSnapshot {
            counters,
            histograms,
        }
    }
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values (nanoseconds for the latency
    /// histograms).
    pub sum: u64,
    /// Per-bucket observation counts (see [`HIST_BUCKETS`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let n = self.buckets.len().max(other.buckets.len());
        let at = |v: &[u64], i: usize| v.get(i).copied().unwrap_or(0);
        HistogramSnapshot {
            count: self.count + other.count,
            sum: self.sum + other.sum,
            buckets: (0..n)
                .map(|i| at(&self.buckets, i) + at(&other.buckets, i))
                .collect(),
        }
    }

    fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let at = |v: &[u64], i: usize| v.get(i).copied().unwrap_or(0);
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            buckets: (0..self.buckets.len())
                .map(|i| at(&self.buckets, i).saturating_sub(at(&earlier.buckets, i)))
                .collect(),
        }
    }

    /// Mean observed value, or 0 with no observations.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

fn is_hwm(name: &str) -> bool {
    name.ends_with("_hwm")
}

/// A diffable, mergeable copy of the registry at one point in time.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize)]
pub struct MetricsSnapshot {
    /// Counter values by name. Names ending in `_hwm` are high-water
    /// gauges (merge by max).
    pub counters: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// True when nothing was recorded (also the disabled-registry
    /// snapshot).
    pub fn is_empty(&self) -> bool {
        self.counters.values().all(|&v| v == 0) && self.histograms.values().all(|h| h.count == 0)
    }

    /// A counter by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Combines two snapshots: counters add (gauges take the max),
    /// histograms add bucket-wise. Associative and commutative.
    pub fn merge(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = self.clone();
        for (k, &v) in &other.counters {
            let slot = out.counters.entry(k.clone()).or_insert(0);
            *slot = if is_hwm(k) { (*slot).max(v) } else { *slot + v };
        }
        for (k, h) in &other.histograms {
            let merged = match out.histograms.get(k) {
                Some(mine) => mine.merge(h),
                None => h.clone(),
            };
            out.histograms.insert(k.clone(), merged);
        }
        out
    }

    /// The work recorded between `earlier` and `self` (both from the same
    /// registry): counters subtract (saturating; gauges keep the later
    /// value), histograms subtract bucket-wise.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let empty_h = HistogramSnapshot::default();
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, &v)| {
                    let before = earlier.counter(k);
                    let d = if is_hwm(k) {
                        v
                    } else {
                        v.saturating_sub(before)
                    };
                    (k.clone(), d)
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| {
                    let before = earlier.histograms.get(k).unwrap_or(&empty_h);
                    (k.clone(), h.diff(before))
                })
                .collect(),
        }
    }

    /// Checks the counter invariants the instrumentation guarantees.
    /// Returns a description of the first violation, if any.
    pub fn check_invariants(&self) -> Result<(), String> {
        let scored = self.counter("match.windows_scored");
        let abandoned = self.counter("match.windows_abandoned");
        let completed = self.counter("match.windows_completed");
        if scored != abandoned + completed {
            return Err(format!(
                "windows_scored ({scored}) != abandoned ({abandoned}) + completed ({completed})"
            ));
        }
        let groups = self.counter("match.batch_groups_scored");
        let lanes_abandoned = self.counter("match.batch_lanes_abandoned");
        let rescans = self.counter("match.f32_prune_rescans");
        if lanes_abandoned > abandoned {
            return Err(format!(
                "batch_lanes_abandoned ({lanes_abandoned}) > windows_abandoned ({abandoned})"
            ));
        }
        if lanes_abandoned + rescans > scored {
            return Err(format!(
                "batched lanes ({lanes_abandoned}) + rescans ({rescans}) > windows_scored ({scored})"
            ));
        }
        if lanes_abandoned + rescans > 8 * groups {
            return Err(format!(
                "batched lanes ({lanes_abandoned}) + rescans ({rescans}) exceed \
                 8 x batch_groups_scored ({groups})"
            ));
        }
        let lookups = self.counter("cache.lookups");
        let hits = self.counter("cache.hits");
        let misses = self.counter("cache.misses");
        if hits + misses != lookups {
            return Err(format!(
                "cache hits ({hits}) + misses ({misses}) != lookups ({lookups})"
            ));
        }
        let rebuilds = self.counter("cache.rebuilds");
        let daemon_rebuilds = self.counter("cache.daemon_rebuilds");
        if rebuilds != misses + daemon_rebuilds {
            return Err(format!(
                "cache rebuilds ({rebuilds}) != misses ({misses}) + \
                 daemon_rebuilds ({daemon_rebuilds})"
            ));
        }
        let cohort_sessions = self.counter("cohort.sessions");
        let cohort_failed = self.counter("cohort.sessions_failed");
        if cohort_failed > cohort_sessions {
            return Err(format!(
                "cohort sessions_failed ({cohort_failed}) > sessions ({cohort_sessions})"
            ));
        }
        let ticks = self.counter("session.ticks");
        let served = self.counter("session.predictions_served");
        let abstained = self.counter("session.predictions_abstained");
        if served + abstained != ticks {
            return Err(format!(
                "predictions served ({served}) + abstained ({abstained}) != ticks ({ticks})"
            ));
        }
        let unhealthy = self.counter("session.abstained_unhealthy");
        if unhealthy > abstained {
            return Err(format!(
                "abstained_unhealthy ({unhealthy}) > predictions_abstained ({abstained})"
            ));
        }
        let degraded = self.counter("session.health_degraded");
        let recovering = self.counter("session.health_recovering");
        let recovered = self.counter("session.health_recovered");
        if recovering > degraded {
            return Err(format!(
                "health_recovering ({recovering}) > health_degraded ({degraded})"
            ));
        }
        if recovered > recovering {
            return Err(format!(
                "health_recovered ({recovered}) > health_recovering ({recovering})"
            ));
        }
        let resyncs = self.counter("segment.resyncs");
        let smoother_resets = self.counter("segment.smoother_resets");
        if resyncs > smoother_resets {
            return Err(format!(
                "segment resyncs ({resyncs}) > smoother_resets ({smoother_resets})"
            ));
        }
        let serve_requests = self.counter("serve.requests");
        let serve_rejected = self.counter("serve.rejected");
        if serve_rejected > serve_requests {
            return Err(format!(
                "serve rejected ({serve_rejected}) > requests ({serve_requests})"
            ));
        }
        let salvage_loads = self.counter("store.salvage_loads");
        let salvaged = self.counter("store.salvage_streams_recovered");
        let lost = self.counter("store.salvage_streams_lost");
        if salvage_loads == 0 && salvaged + lost > 0 {
            return Err(format!(
                "salvage streams recorded ({salvaged} + {lost}) without a salvage load"
            ));
        }
        let wal_appends = self.counter("wal.appends");
        let wal_fsyncs = self.counter("wal.fsyncs");
        if wal_fsyncs > wal_appends {
            return Err(format!(
                "wal fsyncs ({wal_fsyncs}) > appends ({wal_appends})"
            ));
        }
        let recoveries = self.counter("wal.recoveries");
        let replayed = self.counter("wal.replayed_records");
        let truncated = self.counter("recovery.truncated_tail");
        if recoveries == 0 && replayed + truncated > 0 {
            return Err(format!(
                "wal replay activity ({replayed} replayed, {truncated} truncations) without a \
                 recovery pass"
            ));
        }
        if truncated > recoveries {
            return Err(format!(
                "truncated tails ({truncated}) > recovery passes ({recoveries})"
            ));
        }
        let checkpoints = self.counter("snapshot.checkpoints");
        let snapshot_records = self.counter("snapshot.records");
        if checkpoints == 0 && snapshot_records > 0 {
            return Err(format!(
                "snapshot records ({snapshot_records}) without a checkpoint"
            ));
        }
        Ok(())
    }

    /// Renders the snapshot as a JSON document (hand-written — the
    /// vendored serde is a no-op stand-in). Keys are escaped through
    /// [`crate::json::escape_into`]: the built-in counter names are tame,
    /// but merged snapshots can carry arbitrary keys, and `/metrics`
    /// must never emit invalid JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str("\n    \"");
            crate::json::escape_into(&mut s, k);
            s.push_str(&format!("\": {v}"));
        }
        s.push_str("\n  },\n  \"histograms\": {");
        first = true;
        for (k, h) in &self.histograms {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str("\n    \"");
            crate::json::escape_into(&mut s, k);
            let buckets: Vec<String> = h.buckets.iter().map(|b| b.to_string()).collect();
            s.push_str(&format!(
                "\": {{ \"count\": {}, \"sum\": {}, \"buckets\": [{}] }}",
                h.count,
                h.sum,
                buckets.join(", ")
            ));
        }
        s.push_str("\n  }\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let m = MetricsRegistry::disabled();
        assert!(!m.is_enabled());
        m.incr(Counter::Searches);
        m.add(Counter::WindowsScored, 10);
        m.record_max(Counter::CohortBacklogHwm, 7);
        m.observe_ns(Hist::TickLatency, 1000);
        assert!(m.start().is_none());
        let snap = m.snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.counter("match.searches"), 0);
    }

    #[test]
    fn enabled_registry_counts_and_shares() {
        let m = MetricsRegistry::enabled();
        let clone = m.clone();
        m.incr(Counter::Searches);
        clone.add(Counter::Searches, 2);
        clone.record_max(Counter::CohortBacklogHwm, 5);
        clone.record_max(Counter::CohortBacklogHwm, 3);
        m.observe_ns(Hist::TickLatency, 300);
        m.observe_ns(Hist::TickLatency, 100_000);
        let snap = m.snapshot();
        assert_eq!(snap.counter("match.searches"), 3);
        assert_eq!(snap.counter("cohort.backlog_hwm"), 5);
        let h = &snap.histograms["session.tick_latency_ns"];
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 100_300);
        assert_eq!(h.buckets.iter().sum::<u64>(), 2);
    }

    #[test]
    fn bucket_indexing_is_monotone_and_bounded() {
        let mut prev = 0;
        for shift in 0..64 {
            let ix = bucket_index(1u64 << shift);
            assert!(ix >= prev && ix < HIST_BUCKETS);
            prev = ix;
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(255), 0);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn snapshot_diff_isolates_an_interval() {
        let m = MetricsRegistry::enabled();
        m.add(Counter::WindowsScored, 5);
        m.record_max(Counter::CohortBacklogHwm, 4);
        let before = m.snapshot();
        m.add(Counter::WindowsScored, 7);
        m.observe_ns(Hist::SearchLatency, 512);
        let after = m.snapshot();
        let d = after.diff(&before);
        assert_eq!(d.counter("match.windows_scored"), 7);
        // Gauges keep the later value.
        assert_eq!(d.counter("cohort.backlog_hwm"), 4);
        assert_eq!(d.histograms["match.search_latency_ns"].count, 1);
    }

    #[test]
    fn absorb_folds_a_shard_interval_into_the_parent() {
        let parent = MetricsRegistry::enabled();
        parent.add(Counter::Searches, 2);
        parent.record_max(Counter::CohortBacklogHwm, 3);
        parent.observe_ns(Hist::SearchLatency, 100);
        let shard = MetricsRegistry::enabled();
        shard.add(Counter::Searches, 5);
        shard.record_max(Counter::CohortBacklogHwm, 7);
        shard.observe_ns(Hist::SearchLatency, 900);
        shard.observe_ns(Hist::SearchLatency, 1_000_000);
        parent.absorb(&shard.snapshot());
        let snap = parent.snapshot();
        // Counters add, gauges max-merge, histograms add bucket-wise —
        // exactly the snapshot-level merge.
        assert_eq!(snap.counter("match.searches"), 7);
        assert_eq!(snap.counter("cohort.backlog_hwm"), 7);
        let h = &snap.histograms["match.search_latency_ns"];
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 1_001_000);
        assert_eq!(h.buckets.iter().sum::<u64>(), 3);
        // absorb(diff) == snapshot merge of the two registries.
        let merged = MetricsRegistry::enabled();
        merged.absorb(&snap);
        assert_eq!(merged.snapshot(), snap);
        // Disabled parents ignore the fold.
        let disabled = MetricsRegistry::disabled();
        disabled.absorb(&snap);
        assert!(disabled.snapshot().is_empty());
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let m = MetricsRegistry::enabled();
        m.incr(Counter::Searches);
        m.observe_ns(Hist::TickLatency, 999);
        let json = m.snapshot().to_json();
        assert!(json.contains("\"match.searches\": 1"));
        assert!(json.contains("\"session.tick_latency_ns\""));
        assert!(json.contains("\"buckets\": ["));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_rendering_escapes_hostile_keys() {
        // Built-in counter names are tame, but snapshots are a public
        // monoid: merged-in keys can contain anything. The renderer must
        // never let a key break out of its string literal.
        let hostile = "evil\"key\\with\nnewline\tand\u{01}control";
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert(hostile.to_string(), 7);
        snap.counters.insert("plain.key".to_string(), 1);
        snap.histograms.insert(
            hostile.to_string(),
            HistogramSnapshot {
                count: 2,
                sum: 10,
                buckets: vec![2],
            },
        );
        let json = snap.to_json();
        crate::json::validate(&json).expect("escaped snapshot must parse");
        assert!(json.contains("evil\\\"key\\\\with\\nnewline\\tand\\u0001control"));
        assert!(!json.contains(hostile), "raw hostile key leaked through");
    }

    #[test]
    fn json_rendering_of_live_registry_parses() {
        let m = MetricsRegistry::enabled();
        m.incr(Counter::Searches);
        m.incr(Counter::ServeRequests);
        m.observe_ns(Hist::ServeLatency, 12_345);
        crate::json::validate(&m.snapshot().to_json()).expect("snapshot JSON must parse");
    }

    #[test]
    fn serve_rejected_exceeding_requests_violates_invariants() {
        let m = MetricsRegistry::enabled();
        m.add(Counter::ServeRequests, 2);
        m.add(Counter::ServeRejected, 2);
        assert!(m.snapshot().check_invariants().is_ok());
        m.incr(Counter::ServeRejected);
        assert!(m.snapshot().check_invariants().is_err());
    }

    #[test]
    fn invariants_detect_violation() {
        let m = MetricsRegistry::enabled();
        m.add(Counter::WindowsScored, 3);
        m.add(Counter::WindowsAbandoned, 1);
        m.add(Counter::WindowsCompleted, 2);
        assert!(m.snapshot().check_invariants().is_ok());
        m.add(Counter::WindowsScored, 1);
        assert!(m.snapshot().check_invariants().is_err());
    }
}
