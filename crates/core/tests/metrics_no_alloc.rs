//! Proof that a *disabled* metrics registry is free: recording into it
//! performs zero heap allocations. This file deliberately contains a
//! single test — the counting allocator is process-global, and a
//! concurrent test in the same binary would pollute the count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use tsm_core::metrics::{Counter, Hist, MetricsRegistry, SearchTally};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn disabled_registry_records_without_allocating() {
    let metrics = MetricsRegistry::disabled();
    let tally = SearchTally {
        windows_scored: 10,
        windows_abandoned: 4,
        windows_completed: 6,
        windows_state_mismatch: 2,
        bucket_candidates: 20,
        amp_band_candidates: 15,
        dur_band_candidates: 12,
        batch_groups_scored: 2,
        batch_lanes_abandoned: 3,
        f32_prune_rescans: 1,
    };

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..1000 {
        metrics.incr(Counter::Searches);
        metrics.add(Counter::WindowsScored, 17);
        metrics.record_max(Counter::CohortBacklogHwm, 42);
        metrics.observe_ns(Hist::TickLatency, 12_345);
        let started = metrics.start();
        assert!(started.is_none(), "disabled start() must not read a clock");
        metrics.observe_since(Hist::SearchLatency, started);
        metrics.record_search(&tally);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "disabled metrics path allocated {} times",
        after - before
    );

    // Sanity check on the instrument itself: an enabled registry *does*
    // allocate (the shared state), so the counter is actually wired up.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let enabled = MetricsRegistry::enabled();
    enabled.incr(Counter::Searches);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert!(after > before, "counting allocator not engaged");
}
