//! Chaos soak: a fixed seed matrix of fault plans through the cohort
//! runtime. The CI stage runs this test; `tsm chaos` is the same soak on
//! the command line.
//!
//! Pass criteria, per the fault model in DESIGN.md:
//!
//! * no panic anywhere, every session runs to completion;
//! * recoverable faults never terminate a session — the supervisor
//!   absorbs them and the health machine recovers to `Healthy`;
//! * metrics snapshots reconcile after the soak.

use std::sync::Arc;
use tsm_core::metrics::MetricsRegistry;
use tsm_core::session::{CohortRuntime, SessionHealth, SessionSpec};
use tsm_core::{CachedMatcher, Matcher, Params};
use tsm_db::{PatientAttributes, StreamStore};
use tsm_model::{segment_signal, PlrTrajectory, Sample, SegmenterConfig};
use tsm_signal::{
    BreathingParams, FaultInjector, FaultKind, FaultPlan, NoiseParams, SignalGenerator,
};

const SOAK_SEED: u64 = 0xC4A05;
const PLANS: usize = 8;

fn reference_store(seed: u64) -> StreamStore {
    let store = StreamStore::new();
    for p in 0..4u64 {
        let pid = store.add_patient(PatientAttributes::new());
        let samples = SignalGenerator::new(BreathingParams::default(), seed ^ p)
            .with_noise(NoiseParams::typical())
            .generate(120.0);
        let vertices = segment_signal(&samples, SegmenterConfig::default());
        let plr = PlrTrajectory::from_vertices(vertices).unwrap();
        store.add_stream(pid, 0, plr, samples.len());
    }
    store
}

fn live_signal(seed: u64, duration: f64) -> Vec<Sample> {
    SignalGenerator::new(BreathingParams::default(), seed)
        .with_noise(NoiseParams::typical())
        .generate(duration)
}

fn soak_runtime(store: StreamStore, metrics: &MetricsRegistry, threads: usize) -> CohortRuntime {
    let params = Params {
        min_matches: 1,
        ..Params::default()
    };
    let engine = Arc::new(CachedMatcher::new(
        Matcher::new(store, params).with_metrics(metrics.clone()),
    ));
    CohortRuntime::with_engine(engine).with_threads(threads)
}

/// The seed matrix CI soaks on: eight random plans, reproducible forever.
#[test]
fn seeded_fault_matrix_soaks_clean() {
    let store = reference_store(SOAK_SEED);
    let patients = store.patients();
    let specs: Vec<SessionSpec> = (0..PLANS)
        .map(|i| {
            let plan = FaultPlan::random(SOAK_SEED + i as u64);
            assert!(!plan.is_empty(), "random plans schedule at least one event");
            SessionSpec {
                patient: patients[i % patients.len()],
                session: 1,
                samples: FaultInjector::new(&plan)
                    .apply(&live_signal(SOAK_SEED + 1000 + i as u64, 60.0)),
            }
        })
        .collect();

    let metrics = MetricsRegistry::enabled();
    let report = soak_runtime(store, &metrics, 4).replay(&specs);

    assert_eq!(report.sessions.len(), PLANS);
    assert_eq!(
        report.fatal_sessions(),
        0,
        "injected faults must not be fatal"
    );
    let mut degraded = 0usize;
    for (i, r) in report.sessions.iter().enumerate() {
        assert!(r.complete, "plan {i} did not complete");
        let faulted = r.recovered_faults > 0 || r.resyncs > 0;
        if faulted {
            degraded += 1;
            assert_eq!(
                r.health,
                SessionHealth::Healthy,
                "plan {i} ended {:?} without recovering",
                r.health
            );
            assert!(r.degraded_but_complete());
        }
    }
    assert!(
        degraded >= PLANS / 2,
        "the seed matrix must actually exercise degradation ({degraded}/{PLANS} degraded)"
    );
    assert!(report.total_predictions() > 0);
    metrics
        .snapshot()
        .check_invariants()
        .expect("metrics must reconcile after the soak");
}

/// Every recoverable fault category, injected alone and concentrated,
/// leaves the session complete, recovered, and error-free.
#[test]
fn each_recoverable_fault_kind_is_survivable() {
    let kinds: Vec<(&str, FaultKind)> = vec![
        ("dropout", FaultKind::Dropout { samples: 80 }),
        ("duplicate", FaultKind::Duplicate { copies: 5 }),
        ("out-of-order", FaultKind::OutOfOrder { distance: 4 }),
        ("clock-jump-fwd", FaultKind::ClockJump { offset_s: 4.0 }),
        ("clock-jump-back", FaultKind::ClockJump { offset_s: -2.5 }),
        (
            "clock-skew",
            FaultKind::ClockSkew {
                factor: 2.0,
                samples: 60,
            },
        ),
        ("stuck", FaultKind::StuckSensor { samples: 120 }),
        (
            "spike",
            FaultKind::SpikeBurst {
                magnitude_mm: 12.0,
                samples: 6,
            },
        ),
        ("nan", FaultKind::NanBurst { samples: 10 }),
    ];
    let store = reference_store(SOAK_SEED ^ 0xFF);
    let patients = store.patients();
    let specs: Vec<SessionSpec> = kinds
        .iter()
        .enumerate()
        .map(|(i, (_, kind))| {
            let plan = FaultPlan::empty().with(700, kind.clone());
            SessionSpec {
                patient: patients[i % patients.len()],
                session: 1,
                samples: FaultInjector::new(&plan)
                    .apply(&live_signal(SOAK_SEED + 2000 + i as u64, 60.0)),
            }
        })
        .collect();

    let metrics = MetricsRegistry::enabled();
    let report = soak_runtime(store, &metrics, 3).replay(&specs);

    for ((name, _), r) in kinds.iter().zip(&report.sessions) {
        assert!(r.error.is_none(), "{name}: fatal error {:?}", r.error);
        assert!(r.complete, "{name}: session did not complete");
        assert_eq!(
            r.health,
            SessionHealth::Healthy,
            "{name}: ended {:?} without recovering",
            r.health
        );
    }
    metrics.snapshot().check_invariants().unwrap();
}
