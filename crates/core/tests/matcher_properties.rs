//! Property tests of the matcher and predictor over simulated stores.

use proptest::prelude::*;
use std::collections::BTreeMap;
use tsm_core::batch::ScoringMode;
use tsm_core::matcher::{Matcher, QuerySubseq, SearchOptions};
use tsm_core::metrics::{MetricsRegistry, MetricsSnapshot};
use tsm_core::predict::{predict_position, AlignMode};
use tsm_core::Params;
use tsm_db::{PatientAttributes, StateOrderIndex, StreamStore, SubseqRef};
use tsm_model::{segment_signal, PlrTrajectory, SegmenterConfig};
use tsm_signal::{BreathingParams, SignalGenerator};

/// Builds a small store of 2 patients × 2 streams with the given
/// parameters, returning the store and the first stream's id.
fn build_store(amp: f64, period: f64, seed: u64) -> (StreamStore, tsm_db::StreamId) {
    let store = StreamStore::new();
    let mut first = None;
    for p in 0..2u64 {
        let pid = store.add_patient(PatientAttributes::new());
        for s in 0..2u64 {
            let params = BreathingParams {
                amplitude_mm: amp * (1.0 + 0.1 * p as f64),
                period_s: period,
                ..Default::default()
            };
            let samples = SignalGenerator::new(params, seed * 97 + p * 13 + s).generate(60.0);
            let vertices = segment_signal(&samples, SegmenterConfig::clean());
            if let Ok(plr) = PlrTrajectory::from_vertices(vertices) {
                let id = store.add_stream(pid, s as u32, plr, samples.len());
                first.get_or_insert(id);
            }
        }
    }
    (store, first.expect("at least one stream"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Matcher postconditions: sorted by distance, within delta, state
    /// orders identical to the query, self-overlap excluded.
    #[test]
    fn matcher_postconditions(
        amp in 6.0f64..18.0,
        period in 3.0f64..5.5,
        seed in 1u64..500,
        start in 0usize..10,
    ) {
        let (store, id) = build_store(amp, period, seed);
        let params = Params::default();
        let matcher = Matcher::new(store.clone(), params.clone());
        let Some(view) = store.resolve(SubseqRef::new(id, start, 9)) else {
            return Ok(());
        };
        let query = QuerySubseq::from_view(&view);
        let matches = matcher.find_matches(&query);
        let q_states: Vec<_> = query.states();
        let q_first = query.vertices.first().unwrap().time;
        let q_last = query.vertices.last().unwrap().time;
        for w in matches.windows(2) {
            prop_assert!(w[0].distance <= w[1].distance);
        }
        for m in &matches {
            prop_assert!(m.distance <= params.delta);
            prop_assert!(m.distance >= 0.0);
            let v = store.resolve(m.subseq).unwrap();
            let c_states: Vec<_> = v.states().collect();
            prop_assert_eq!(&c_states, &q_states);
            if m.subseq.stream == id {
                // No overlap with the query's own window.
                prop_assert!(
                    v.last_vertex().time <= q_first || v.first_vertex().time >= q_last
                );
            }
        }
    }

    /// Both accelerated searches (state-order index and the lower-bound
    /// pruned feature index) agree with the scan on simulated stores, for
    /// every query cut and threshold.
    #[test]
    fn indexed_and_pruned_searches_equal_scan(
        amp in 6.0f64..18.0,
        seed in 1u64..500,
        start in 0usize..8,
        len in 3usize..12,
        delta in 0.2f64..10.0,
    ) {
        let (store, id) = build_store(amp, 4.0, seed);
        let params = Params::default();
        let matcher = Matcher::new(store.clone(), params);
        let index = StateOrderIndex::build(&store, len);
        let feature_index = tsm_db::FeatureIndex::build(&store, len, 0);
        let Some(view) = store.resolve(SubseqRef::new(id, start, len)) else {
            return Ok(());
        };
        let query = QuerySubseq::from_view(&view);
        let opts = SearchOptions {
            delta_override: Some(delta),
            ..Default::default()
        };
        let naive = matcher.find_matches_naive(&query, &opts);
        let scan = matcher.find_matches_with(&query, &opts);
        let indexed = matcher.find_matches_indexed(&query, &index, &opts);
        let pruned = matcher.find_matches_pruned(&query, &feature_index, &opts);
        prop_assert_eq!(&naive, &scan);
        prop_assert_eq!(&scan, &indexed);
        prop_assert_eq!(&scan, &pruned);
    }

    /// The tentpole invariant: every engine variant — columnar scan,
    /// state-order indexed, feature-pruned and parallel — returns *exactly*
    /// the naive vertex-walking reference's ordered top-k: same windows,
    /// bit-identical distances (MatchResult's `PartialEq` compares f64
    /// equality), same order. Exercised across query cuts, k, δ and
    /// patient restrictions.
    #[test]
    fn all_variants_return_identical_ordered_topk(
        amp in 6.0f64..18.0,
        seed in 1u64..500,
        start in 0usize..8,
        len in 3usize..12,
        k in 1usize..12,
        delta in 0.3f64..10.0,
        threads in 2usize..5,
        restrict in proptest::bool::ANY,
    ) {
        let (store, id) = build_store(amp, 4.0, seed);
        let params = Params::default();
        let matcher = Matcher::new(store.clone(), params);
        let index = StateOrderIndex::build(&store, len);
        let feature_index = tsm_db::FeatureIndex::build(&store, len, 0);
        let Some(view) = store.resolve(SubseqRef::new(id, start, len)) else {
            return Ok(());
        };
        let query = QuerySubseq::from_view(&view);
        let opts = SearchOptions {
            top_k: Some(k),
            delta_override: Some(delta),
            restrict_patients: restrict.then(|| {
                store.patients().into_iter().take(1).collect()
            }),
            ..Default::default()
        };
        let naive = matcher.find_matches_naive(&query, &opts);
        prop_assert!(naive.len() <= k);
        let scan = matcher.find_matches_with(&query, &opts);
        let indexed = matcher.find_matches_indexed(&query, &index, &opts);
        let pruned = matcher.find_matches_pruned(&query, &feature_index, &opts);
        let parallel = matcher.find_matches_parallel(&query, &opts, threads);
        prop_assert_eq!(&naive, &scan);
        prop_assert_eq!(&naive, &indexed);
        prop_assert_eq!(&naive, &pruned);
        prop_assert_eq!(&naive, &parallel);
        // Instrumentation must be pure observation: a metrics-enabled
        // matcher returns the bit-identical ordered top-k on every
        // variant, and its counters reconcile.
        let metrics = MetricsRegistry::enabled();
        let instrumented = Matcher::new(store.clone(), Params::default())
            .with_metrics(metrics.clone());
        prop_assert_eq!(&naive, &instrumented.find_matches_with(&query, &opts));
        prop_assert_eq!(&naive, &instrumented.find_matches_pruned(&query, &feature_index, &opts));
        prop_assert_eq!(&naive, &instrumented.find_matches_parallel(&query, &opts, threads));
        let snap = metrics.snapshot();
        prop_assert!(snap.check_invariants().is_ok(), "{:?}", snap.check_invariants());
        prop_assert_eq!(snap.counter("match.searches"), 3);
        // The top-k is a prefix of the unbounded result.
        let unbounded = matcher.find_matches_with(&query, &SearchOptions {
            top_k: None,
            ..opts.clone()
        });
        prop_assert_eq!(&unbounded[..naive.len().min(unbounded.len())], &naive[..]);
    }

    /// Predictions are always finite and inside (a generous expansion of)
    /// the motion envelope.
    #[test]
    fn predictions_stay_in_the_envelope(
        amp in 6.0f64..18.0,
        seed in 1u64..500,
        dt in 0.0f64..0.5,
    ) {
        let (store, id) = build_store(amp, 4.0, seed);
        let params = Params { min_matches: 1, ..Params::default() };
        let matcher = Matcher::new(store.clone(), params.clone());
        let stream = store.stream(id).unwrap();
        let nseg = stream.plr.num_segments();
        prop_assume!(nseg > 15);
        let view = store.resolve(SubseqRef::new(id, nseg / 2, 9)).unwrap();
        let query = QuerySubseq::from_view(&view);
        let matches = matcher.find_matches(&query);
        if let Some(p) = predict_position(&store, &query, &matches, dt, &params, AlignMode::default()) {
            prop_assert!(p.is_finite());
            let lo = stream.plr.vertices().iter().map(|v| v.position[0]).fold(f64::INFINITY, f64::min);
            let hi = stream.plr.vertices().iter().map(|v| v.position[0]).fold(f64::NEG_INFINITY, f64::max);
            let slack = (hi - lo) * 0.5 + 1.0;
            prop_assert!(
                p[0] >= lo - slack && p[0] <= hi + slack,
                "prediction {} outside envelope [{lo}, {hi}]",
                p[0]
            );
        }
    }

    /// The vectorized f32 tier is invisible in results: forcing
    /// `ScoringMode::Batched` returns the bit-identical ordered top-k as
    /// forcing `ScoringMode::Scalar` — which itself equals the naive
    /// reference — on all four engine variants, across query cuts, k, δ
    /// and thread counts. This is the lane-group admissibility proof at
    /// the API boundary: a pruned lane may only ever be a window whose
    /// exact distance exceeds the bound.
    #[test]
    fn batched_scoring_is_bit_identical_to_scalar(
        amp in 6.0f64..18.0,
        seed in 1u64..500,
        start in 0usize..8,
        len in 3usize..12,
        k in 1usize..12,
        delta in 0.3f64..10.0,
        threads in 2usize..5,
    ) {
        let (store, id) = build_store(amp, 4.0, seed);
        let matcher = Matcher::new(store.clone(), Params::default());
        let index = StateOrderIndex::build(&store, len);
        let feature_index = tsm_db::FeatureIndex::build(&store, len, 0);
        let Some(view) = store.resolve(SubseqRef::new(id, start, len)) else {
            return Ok(());
        };
        let query = QuerySubseq::from_view(&view);
        let base = SearchOptions {
            top_k: Some(k),
            delta_override: Some(delta),
            ..Default::default()
        };
        let scalar = SearchOptions { scoring: ScoringMode::Scalar, ..base.clone() };
        let batched = SearchOptions { scoring: ScoringMode::Batched, ..base.clone() };
        let naive = matcher.find_matches_naive(&query, &base);
        prop_assert_eq!(&naive, &matcher.find_matches_with(&query, &scalar));
        prop_assert_eq!(&naive, &matcher.find_matches_with(&query, &batched));
        prop_assert_eq!(&naive, &matcher.find_matches_indexed(&query, &index, &batched));
        prop_assert_eq!(&naive, &matcher.find_matches_pruned(&query, &feature_index, &batched));
        prop_assert_eq!(&naive, &matcher.find_matches_parallel(&query, &batched, threads));
        // Unbounded (no top-k) as well: the bound never tightens below δ,
        // so the f32 tier prunes on δ alone.
        let all_scalar = matcher.find_matches_with(&query, &SearchOptions {
            top_k: None, ..scalar.clone()
        });
        let all_batched = matcher.find_matches_with(&query, &SearchOptions {
            top_k: None, ..batched.clone()
        });
        prop_assert_eq!(&all_scalar, &all_batched);
    }

    /// Direct admissibility of the f32 lower-bound tier on random window
    /// groups: a lane the kernel prunes at bound `b` always has exact f64
    /// distance strictly greater than `b` (verified against the exact
    /// scalar scorer), for consecutive and gathered lane layouts.
    #[test]
    fn f32_tier_never_prunes_an_admissible_window(
        amp in 6.0f64..18.0,
        seed in 1u64..500,
        start in 0usize..8,
        len in 3usize..10,
        bound in 0.05f64..6.0,
    ) {
        use tsm_core::batch::{BatchQuery, BatchScorer, LaneOutcome, LANES};
        use tsm_core::similarity::{QueryCols, ScoreOutcome, WindowCols, WindowScorer};

        let (store, id) = build_store(amp, 4.0, seed);
        let params = Params::default();
        let Some(view) = store.resolve(SubseqRef::new(id, start, len)) else {
            return Ok(());
        };
        let query = QuerySubseq::from_view(&view);
        let Some(cols) = QueryCols::build(&query.vertices, &params) else {
            return Ok(());
        };
        let n = cols.len();
        let Some(bq) = BatchQuery::build(&cols, &params) else {
            return Ok(());
        };
        let mut kernel = BatchScorer::new();
        let mut exact = WindowScorer::new();
        let features = store.segment_features(params.axis);
        for sf in features.streams() {
            if !sf.mirror32.finite || sf.num_segments() < n {
                continue;
            }
            let total = sf.num_segments() - n + 1;
            let matched: Vec<usize> = {
                let mask = kernel.match_mask(&bq, sf);
                prop_assert_eq!(mask.len(), total);
                for (j, &m) in mask.iter().enumerate() {
                    prop_assert_eq!(
                        m == 0,
                        sf.states[j..j + n] == cols.states[..],
                        "gate disagreement: stream {:?} start {}",
                        sf.meta.id, j,
                    );
                }
                (0..total).filter(|&j| mask[j] == 0).collect()
            };
            for chunk in matched.chunks(LANES) {
                let group = kernel.score_starts(&bq, sf, chunk, 1.0, bound);
                for (l, &w) in chunk.iter().enumerate() {
                    if !matches!(group.lanes[l], LaneOutcome::Pruned) {
                        continue;
                    }
                    let cand = WindowCols {
                        states: &sf.states[w..w + n],
                        disp: &sf.disp[w..w + n],
                        dvec: &sf.dvec[w..w + n],
                        dur: &sf.dur[w..w + n],
                    };
                    let refutable = match exact.score_window_outcome(
                        &cols, cand, &params, 1.0, bound,
                    ) {
                        ScoreOutcome::Scored(d) => d > bound,
                        ScoreOutcome::Abandoned => true,
                        ScoreOutcome::StateMismatch => false,
                    };
                    prop_assert!(
                        refutable,
                        "inadmissible f32 prune: stream {:?} start {} bound {}",
                        sf.meta.id, w, bound,
                    );
                }
            }
        }
    }

    /// Tightening delta only ever shrinks the match set (monotonicity),
    /// and the shrunken set is a prefix of the larger one.
    #[test]
    fn delta_monotonicity(
        amp in 6.0f64..18.0,
        seed in 1u64..500,
    ) {
        let (store, id) = build_store(amp, 4.0, seed);
        let params = Params::default();
        let matcher = Matcher::new(store.clone(), params);
        let Some(view) = store.resolve(SubseqRef::new(id, 3, 9)) else {
            return Ok(());
        };
        let query = QuerySubseq::from_view(&view);
        let loose = matcher.find_matches_with(&query, &SearchOptions {
            delta_override: Some(8.0),
            ..Default::default()
        });
        let tight = matcher.find_matches_with(&query, &SearchOptions {
            delta_override: Some(1.0),
            ..Default::default()
        });
        prop_assert!(tight.len() <= loose.len());
        prop_assert_eq!(&loose[..tight.len()], &tight[..]);
    }
}

/// An arbitrary snapshot mixing additive counters, `_hwm` gauges and a
/// histogram — the algebra must hold for any combination of present and
/// absent keys.
fn snapshot_strategy() -> impl Strategy<Value = MetricsSnapshot> {
    const KEYS: [&str; 6] = [
        "match.searches",
        "match.windows_scored",
        "cache.lookups",
        "session.ticks",
        "cohort.backlog_hwm",
        "queue.depth_hwm",
    ];
    (
        proptest::collection::vec(proptest::bool::ANY, 6),
        proptest::collection::vec(0u64..1_000_000_000, 6),
        proptest::bool::ANY,
        0u64..1000,
        0u64..1_000_000,
        proptest::collection::vec(0u64..1000, 0..4),
    )
        .prop_map(|(present, vals, has_hist, count, sum, buckets)| {
            let mut counters = BTreeMap::new();
            for i in 0..KEYS.len() {
                if present[i] {
                    counters.insert(KEYS[i].to_string(), vals[i]);
                }
            }
            let mut histograms = BTreeMap::new();
            if has_hist {
                histograms.insert(
                    "session.tick_latency_ns".to_string(),
                    tsm_core::metrics::HistogramSnapshot {
                        count,
                        sum,
                        buckets,
                    },
                );
            }
            MetricsSnapshot {
                counters,
                histograms,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Snapshot merge is a commutative, associative monoid operation (the
    /// `_hwm` gauges use max, which is too), so per-worker snapshots can
    /// be combined in any grouping and order.
    #[test]
    fn snapshot_merge_is_associative_and_commutative(
        a in snapshot_strategy(),
        b in snapshot_strategy(),
        c in snapshot_strategy(),
    ) {
        prop_assert_eq!(a.merge(&b), b.merge(&a));
        prop_assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        // The empty snapshot is the identity.
        let empty = MetricsSnapshot::default();
        prop_assert_eq!(a.merge(&empty), a.clone());
    }

    /// Diffing a merge against one operand recovers the other operand on
    /// every additive key; `_hwm` gauges keep the merged maximum (an
    /// interval has no meaningful high-water delta).
    #[test]
    fn snapshot_diff_undoes_merge_on_additive_keys(
        a in snapshot_strategy(),
        b in snapshot_strategy(),
    ) {
        let merged = a.merge(&b);
        let round = merged.diff(&a);
        for k in merged.counters.keys() {
            if k.ends_with("_hwm") {
                prop_assert_eq!(round.counter(k), a.counter(k).max(b.counter(k)));
            } else {
                prop_assert_eq!(round.counter(k), b.counter(k), "additive key {}", k);
            }
        }
        for (k, h) in &merged.histograms {
            let rh = round.histograms.get(k).expect("diff keeps keys");
            let bh = b.histograms.get(k).cloned().unwrap_or_default();
            prop_assert_eq!(rh.count, bh.count, "histogram {} count", k);
            prop_assert_eq!(rh.sum, bh.sum, "histogram {} sum", k);
            prop_assert!(h.count >= rh.count);
        }
    }
}
