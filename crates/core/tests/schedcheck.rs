//! Deterministic schedule-checker models of the shared-store runtime's
//! lock-free protocols (see `vendor/schedcheck`).
//!
//! Three protocols are modelled and exhaustively checked under the
//! C11-style acquire/release memory model:
//!
//! 1. **Store version counter → index cache** (`StreamStore::version` /
//!    `IndexCache::index_for`): a writer publishes new stream data with a
//!    `Release` version bump; a cache builder consumes the counter with
//!    `Acquire` before reading the data and tags what it caches; a server
//!    thread that observes the cache tag must observe data at least as
//!    fresh as the tag claims.
//! 2. **Per-worker `SearchTally` flush at the parallel join**
//!    (`Matcher::find_matches_parallel` / `MetricsRegistry::record_search`):
//!    workers bump relaxed statistics counters and then publish completion
//!    with `Release`; a reader that `Acquire`-observes every worker done
//!    must see a reconciled tally (`scored == abandoned + completed`).
//! 3. **`SessionHandle` bounded command channel + pending gauge**
//!    (`SessionHandle::send` / the session worker loop): a caller counts a
//!    command into the `pending` gauge *before* publishing it on the
//!    bounded channel; the worker decrements after consuming. The gauge
//!    must never run ahead of the queue (the decrement would wrap it past
//!    zero), and a delivered reply must imply a visible outcome.
//!
//! (The serve-layer admission-control shed path has its own model in
//! `crates/serve/tests/schedcheck_serve.rs`.)
//!
//! Each sound model is paired with a deliberately broken variant (the
//! exact `Relaxed` downgrade the lint rule `explicit-atomic-ordering`
//! exists to make reviewable) and the checker is required to find a
//! violating interleaving — proving the harness has teeth, not just that
//! the good protocol passes.

use schedcheck::{Model, Ordering, Thread};

/// Builds the three-thread version-counter model.
///
/// Locations: `DATA` (the stream table, collapsed to one cell), `VERSION`
/// (the store's atomic counter), `CACHE_DATA`/`CACHE_TAG` (the index
/// cache's entry, tag = observed version + 1 so "never published" is
/// distinguishable from "published at version 0").
///
/// `bump_ord` is the writer's ordering for the version bump and
/// `publish_ord` the builder's ordering for the cache-tag store — the two
/// release halves of the protocol's two acquire/release pairs.
fn version_protocol(bump_ord: Ordering, publish_ord: Ordering) -> Model {
    let mut m = Model::new();
    let data = m.loc("DATA");
    let version = m.loc("VERSION");
    let cache_data = m.loc("CACHE_DATA");
    let cache_tag = m.loc("CACHE_TAG");

    // Writer: StreamStore::try_add_stream — mutate the table, then bump
    // the version counter to publish.
    let mut writer = Thread::new("writer");
    writer
        .store(data, Ordering::Relaxed, |_| 1)
        .fetch_add(version, bump_ord, 0, |_| 1);
    m.add(writer);

    // Builder: IndexCache::index_for — read the version (Acquire), build
    // from the data, publish the built index tagged with that version.
    let mut builder = Thread::new("builder");
    builder
        .load(version, Ordering::Acquire, 0)
        .load(data, Ordering::Relaxed, 1)
        .store(cache_data, Ordering::Relaxed, |r| r[1])
        .store(cache_tag, publish_ord, |r| r[0] + 1);
    m.add(builder);

    // Server: a later lookup that hits the cache. Observing tag == 2
    // means "built after seeing version 1", which must imply the cached
    // index reflects the version-1 data.
    let mut server = Thread::new("server");
    server
        .load(cache_tag, Ordering::Acquire, 0)
        .load(cache_data, Ordering::Relaxed, 1)
        .assert_that("tag at v1 implies fresh cache", |r| r[0] != 2 || r[1] == 1);
    m.add(server);
    m
}

#[test]
fn version_protocol_release_acquire_is_sound() {
    let rep = version_protocol(Ordering::Release, Ordering::Release).check();
    assert!(!rep.capped, "model too large to check exhaustively");
    assert!(rep.executions > 0);
    if let Some(v) = rep.violation {
        panic!(
            "sound protocol violated `{}`:\n  {}",
            v.assertion,
            v.trace.join("\n  ")
        );
    }
}

#[test]
fn version_protocol_relaxed_bump_is_caught() {
    // The exact bug the Release upgrade of `StreamStore::version` fixed:
    // with a Relaxed bump the builder can observe version 1 but build
    // from the pre-insert table, caching a stale index tagged fresh.
    let rep = version_protocol(Ordering::Relaxed, Ordering::Release).check();
    assert!(!rep.capped, "model too large to check exhaustively");
    let v = rep.violation.expect("relaxed version bump must be caught");
    assert!(v.assertion.starts_with("tag at v1 implies fresh cache"));
}

#[test]
fn version_protocol_relaxed_cache_publish_is_caught() {
    // Break the second pair instead: a Relaxed cache-tag publish lets the
    // server observe the tag before the cached index contents.
    let rep = version_protocol(Ordering::Release, Ordering::Relaxed).check();
    assert!(!rep.capped, "model too large to check exhaustively");
    let v = rep.violation.expect("relaxed cache publish must be caught");
    assert!(v.assertion.starts_with("tag at v1 implies fresh cache"));
}

/// Builds the tally-flush model: two parallel search workers fold their
/// per-search `SearchTally` into the shared metrics counters with relaxed
/// `fetch_add`s (exactly how `MetricsRegistry::add` behaves), then
/// publish completion; a reader that observes both workers done must see
/// a reconciled tally. `done_ord` is the workers' completion-store
/// ordering — the join edge crossbeam's scope join provides in the real
/// code.
fn tally_flush(done_ord: Ordering) -> Model {
    let mut m = Model::new();
    let scored = m.loc("SCORED");
    let abandoned = m.loc("ABANDONED");
    let completed = m.loc("COMPLETED");
    let done = [m.loc("DONE_0"), m.loc("DONE_1")];

    for (i, flag) in done.iter().enumerate() {
        // Each worker scored two windows: one abandoned, one completed.
        let mut worker = Thread::new(&format!("worker-{i}"));
        worker
            .fetch_add(scored, Ordering::Relaxed, 0, |_| 2)
            .fetch_add(abandoned, Ordering::Relaxed, 0, |_| 1)
            .fetch_add(completed, Ordering::Relaxed, 0, |_| 1)
            .store(*flag, done_ord, |_| 1);
        m.add(worker);
    }

    let mut reader = Thread::new("reader");
    reader
        .load(done[0], Ordering::Acquire, 0)
        .load(done[1], Ordering::Acquire, 1)
        .if_else(
            |r| r[0] == 1 && r[1] == 1,
            |t| {
                t.load(scored, Ordering::Relaxed, 2)
                    .load(abandoned, Ordering::Relaxed, 3)
                    .load(completed, Ordering::Relaxed, 4)
                    .assert_that("flushed tally reconciles", |r| r[2] == r[3] + r[4]);
            },
            |_| {},
        );
    m.add(reader);
    m
}

#[test]
fn tally_flush_release_acquire_is_sound() {
    let rep = tally_flush(Ordering::Release).check();
    assert!(!rep.capped, "model too large to check exhaustively");
    assert!(rep.executions > 0);
    if let Some(v) = rep.violation {
        panic!(
            "sound tally flush violated `{}`:\n  {}",
            v.assertion,
            v.trace.join("\n  ")
        );
    }
}

#[test]
fn tally_flush_relaxed_done_flag_is_caught() {
    // Without the release/acquire join edge the reader can see both
    // workers "done" while their counter increments are still in flight —
    // an unreconciled snapshot.
    let rep = tally_flush(Ordering::Relaxed).check();
    assert!(!rep.capped, "model too large to check exhaustively");
    let v = rep.violation.expect("relaxed done flags must be caught");
    assert!(v.assertion.starts_with("flushed tally reconciles"));
}

/// Builds the `SessionHandle` command-channel model.
///
/// Locations: `PENDING` (the handle's pending-command gauge), `CMD` (the
/// bounded command channel, collapsed to one occupied/empty slot),
/// `OUTCOME` (the worker-owned result the command produces), `REPLY` (the
/// per-command capacity-1 reply channel).
///
/// `gauge_before_send` selects whether the caller counts the command into
/// the gauge before or after publishing it — `SessionHandle::send`
/// deliberately increments first, because the worker's decrement races a
/// post-send increment and would wrap the gauge past zero. `reply_ord` is
/// the worker's ordering for the reply publish, the release half of the
/// pair that makes the command's outcome visible to the caller.
fn handle_command_channel(gauge_before_send: bool, reply_ord: Ordering) -> Model {
    let mut m = Model::new();
    let pending = m.loc("PENDING");
    let cmd = m.loc("CMD");
    let outcome = m.loc("OUTCOME");
    let reply = m.loc("REPLY");

    // Caller: SessionHandle::send — gauge bump and channel publish, in
    // the order under test. The try_send itself is the Release edge
    // (channel send synchronizes-with the worker's recv).
    let mut caller = Thread::new("caller");
    if gauge_before_send {
        caller
            .fetch_add(pending, Ordering::Relaxed, 0, |_| 1)
            .store(cmd, Ordering::Release, |_| 1);
    } else {
        caller
            .store(cmd, Ordering::Release, |_| 1)
            .fetch_add(pending, Ordering::Relaxed, 0, |_| 1);
    }
    m.add(caller);

    // Worker: the session worker loop — consume the command, decrement
    // the gauge, run it, publish the reply. The gauge it decrements must
    // already count the command it just received. `u64::MAX` is the
    // two's-complement decrement (fetch_sub), as wrapping fetch_add.
    let mut worker = Thread::new("worker");
    worker.load(cmd, Ordering::Acquire, 0).if_else(
        |r| r[0] == 1,
        |t| {
            t.fetch_add(pending, Ordering::Relaxed, 1, |_| u64::MAX)
                .assert_that("pending gauge covers the queued command", |r| r[1] >= 1)
                .store(outcome, Ordering::Relaxed, |_| 7)
                .store(reply, reply_ord, |_| 1);
        },
        |_| {},
    );
    m.add(worker);

    // Requester: the caller's blocking recv on the reply channel. A
    // delivered reply must carry a visible outcome.
    let mut requester = Thread::new("requester");
    requester
        .load(reply, Ordering::Acquire, 0)
        .load(outcome, Ordering::Relaxed, 1)
        .assert_that("reply implies outcome", |r| r[0] != 1 || r[1] == 7);
    m.add(requester);
    m
}

#[test]
fn handle_command_channel_is_sound() {
    let rep = handle_command_channel(true, Ordering::Release).check();
    assert!(!rep.capped, "model too large to check exhaustively");
    assert!(rep.executions > 0);
    if let Some(v) = rep.violation {
        panic!(
            "sound command channel violated `{}`:\n  {}",
            v.assertion,
            v.trace.join("\n  ")
        );
    }
}

#[test]
fn handle_gauge_after_send_is_caught() {
    // The exact race `SessionHandle::send` orders against: publish the
    // command first and the worker can consume it and decrement a gauge
    // that was never incremented, wrapping it past zero.
    let rep = handle_command_channel(false, Ordering::Release).check();
    assert!(!rep.capped, "model too large to check exhaustively");
    let v = rep.violation.expect("post-send gauge bump must be caught");
    assert!(v
        .assertion
        .starts_with("pending gauge covers the queued command"));
}

#[test]
fn handle_relaxed_reply_publish_is_caught() {
    // Downgrade the reply publish and the requester can observe the
    // reply before the outcome it is supposed to deliver.
    let rep = handle_command_channel(true, Ordering::Relaxed).check();
    assert!(!rep.capped, "model too large to check exhaustively");
    let v = rep.violation.expect("relaxed reply publish must be caught");
    assert!(v.assertion.starts_with("reply implies outcome"));
}
