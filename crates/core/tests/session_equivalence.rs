//! Sharded ≡ unsharded: the sharding refactor changes scheduling and
//! cache ownership, never results. Every scenario here replays one
//! fixed-seed cohort — clean sessions, a gap-faulted session (resync +
//! health machine) and a poisoned session (absorbed recoverable fault) —
//! through the unsharded runtime (serial and parallel) and through
//! `shards ∈ {1, 2, 4}`, and requires bit-identical per-session
//! `SessionReport`s: same ticks, same predictions, same health
//! transitions, same resync and fault accounting.
//!
//! This file is the CI sharded-soak stage's target (debug build, fixed
//! seeds): `cargo test -p tsm-core --test session_equivalence`.

use tsm_core::prelude::*;
use tsm_db::{PatientAttributes, PatientId, StreamStore};
use tsm_model::{segment_signal, PlrTrajectory, Sample, SegmenterConfig};
use tsm_signal::{BreathingParams, SignalGenerator};

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn live_samples(seed: u64, duration: f64) -> Vec<Sample> {
    SignalGenerator::new(BreathingParams::default(), seed).generate(duration)
}

/// A store with `n` patients, each holding one 120 s base stream.
fn seeded_store(n: u32, seed: u64) -> (StreamStore, Vec<PatientId>) {
    let store = StreamStore::new();
    let patients: Vec<PatientId> = (0..n)
        .map(|i| {
            let patient = store.add_patient(PatientAttributes::new());
            let samples = SignalGenerator::new(BreathingParams::default(), seed + u64::from(i))
                .generate(120.0);
            let vertices = segment_signal(&samples, SegmenterConfig::clean());
            let plr = PlrTrajectory::from_vertices(vertices).unwrap();
            store.add_stream(patient, 0, plr, samples.len());
            patient
        })
        .collect();
    (store, patients)
}

/// The fixed-seed scenario cohort: clean, gap-faulted and poisoned
/// sessions spread over several patients.
fn scenario_specs(patients: &[PatientId], seed: u64) -> Vec<SessionSpec> {
    let mut specs = Vec::new();
    for (i, &patient) in patients.iter().enumerate() {
        for session in 1..=3u32 {
            let spec_seed = seed + (i as u64) * 10 + u64::from(session);
            let mut samples = live_samples(spec_seed, 30.0);
            match session {
                // Session 2 of every patient: a 5 s acquisition dropout
                // halfway — the ingest guard resyncs, the session
                // degrades, then recovers.
                2 => {
                    let mid = samples.len() / 2;
                    for s in &mut samples[mid..] {
                        s.time += 5.0;
                    }
                }
                // Session 3 of the first patient: one NaN sample — a
                // recoverable fault the supervisor absorbs.
                3 if i == 0 => {
                    let mid = samples.len() / 2;
                    samples[mid] = Sample::new_1d(samples[mid].time, f64::NAN);
                }
                _ => {}
            }
            specs.push(SessionSpec {
                patient,
                session,
                samples,
            });
        }
    }
    specs
}

fn runtime(store: &StreamStore) -> CohortRuntime {
    let params = Params {
        min_matches: 1,
        ..Params::default()
    };
    CohortRuntime::new(store.clone(), params)
        .unwrap()
        .with_segmenter(SegmenterConfig::clean())
}

#[test]
fn sharded_replay_is_bit_identical_to_unsharded() {
    let (store, patients) = seeded_store(3, 70);
    let specs = scenario_specs(&patients, 100);
    let baseline = runtime(&store).replay(&specs);

    // The scenarios actually exercise the fault machinery.
    assert!(baseline.sessions.iter().all(|s| s.complete));
    assert!(baseline.sessions.iter().any(|s| s.resyncs > 0));
    assert!(baseline.sessions.iter().any(|s| s.recovered_faults > 0));
    assert!(baseline.total_predictions() > 0);

    // Parallel unsharded: same reports.
    let parallel = runtime(&store).with_threads(4).replay(&specs);
    assert_eq!(baseline.sessions, parallel.sessions);

    for shards in SHARD_COUNTS {
        let sharded = runtime(&store).with_shards(shards).replay(&specs);
        assert_eq!(
            baseline.sessions, sharded.sessions,
            "shards={shards} diverged from the unsharded replay"
        );
        if shards > 1 {
            // Attribution covers every session exactly once, on its
            // routed home shard.
            let router = ShardRouter::new(shards);
            let mut seen: Vec<usize> = Vec::new();
            for shard in &sharded.shards {
                for &i in &shard.sessions {
                    assert_eq!(
                        router.route(specs[i].patient, specs[i].session),
                        shard.shard
                    );
                    seen.push(i);
                }
            }
            seen.sort_unstable();
            assert_eq!(seen, (0..specs.len()).collect::<Vec<_>>());
        }
    }
}

#[test]
fn repeated_sharded_replays_are_stable() {
    // Shard engines persist across replays (warm caches); placement and
    // reports must not drift between calls on the same runtime.
    let (store, patients) = seeded_store(2, 74);
    let specs = scenario_specs(&patients, 140);
    let rt = runtime(&store).with_shards(4);
    let first = rt.replay(&specs);
    let second = rt.replay(&specs);
    assert_eq!(first.sessions, second.sessions);
    for (a, b) in first.shards.iter().zip(&second.shards) {
        assert_eq!(a.shard, b.shard);
        assert_eq!(a.sessions, b.sessions, "placement drifted between replays");
        // The first replay built each shard's indexes; the second runs
        // entirely on warm caches.
        assert_eq!(b.rebuilds, 0, "shard {} rebuilt on a warm replay", b.shard);
    }
}

#[test]
fn placement_is_a_pure_function_of_identity() {
    // Property sweep: the route depends only on (patient, session,
    // shard count) — never on the rest of the cohort, the order specs
    // arrive in, or which router instance computes it. Mid-cohort pool
    // resizing is unrepresentable (ShardRouter has no mutator), so the
    // only way to re-home sessions is to build a new runtime.
    for shards in SHARD_COUNTS {
        let router = ShardRouter::new(shards);
        assert_eq!(router.shards(), shards.max(1));
        for p in 0..200u32 {
            for s in 0..6u32 {
                let home = router.route(PatientId(p), s);
                assert!(home < shards.max(1));
                assert_eq!(home, ShardRouter::new(shards).route(PatientId(p), s));
            }
        }
    }

    // Replay-level check: the same session keeps its home shard whether
    // it replays inside the full cohort or a subset.
    let (store, patients) = seeded_store(2, 78);
    let specs = scenario_specs(&patients, 180);
    let rt = runtime(&store).with_shards(4);
    let full = rt.replay(&specs);
    let subset: Vec<SessionSpec> = specs.iter().skip(2).cloned().collect();
    let partial = rt.replay(&subset);
    let home = |report: &CohortReport, patient: PatientId, session: u32, specs: &[SessionSpec]| {
        report
            .shards
            .iter()
            .find(|sh| {
                sh.sessions
                    .iter()
                    .any(|&i| specs[i].patient == patient && specs[i].session == session)
            })
            .map(|sh| sh.shard)
    };
    for spec in &subset {
        assert_eq!(
            home(&full, spec.patient, spec.session, &specs),
            home(&partial, spec.patient, spec.session, &subset),
            "session ({:?}, {}) re-homed between cohorts",
            spec.patient,
            spec.session
        );
    }
}

#[test]
fn more_shards_than_sessions_keeps_empty_shards_sane() {
    use std::sync::Arc;
    use tsm_core::index_cache::CachedMatcher;
    use tsm_core::matcher::Matcher;
    use tsm_core::metrics::MetricsRegistry;

    let (store, patients) = seeded_store(2, 86);
    // Three sessions over eight shards: most shards receive nothing.
    let specs: Vec<SessionSpec> = scenario_specs(&patients, 260).into_iter().take(3).collect();
    let baseline = runtime(&store).replay(&specs);

    let params = Params {
        min_matches: 1,
        ..Params::default()
    };
    let metrics = MetricsRegistry::enabled();
    let engine = Arc::new(CachedMatcher::new(
        Matcher::new(store.clone(), params).with_metrics(metrics.clone()),
    ));
    let rt = CohortRuntime::with_engine(engine)
        .with_segmenter(SegmenterConfig::clean())
        .with_shards(8);
    let sharded = rt.replay(&specs);

    // Per-session reports are unchanged by the pathological shard count.
    assert_eq!(baseline.sessions, sharded.sessions);

    // The attribution table has one row per shard, covers every session
    // exactly once on its routed home, and the zero-session rows are
    // real, sane entries — not artifacts or omissions.
    assert_eq!(sharded.shards.len(), 8);
    assert!(
        sharded.shards.iter().any(|s| s.sessions.is_empty()),
        "3 sessions over 8 shards must leave empty shards"
    );
    let router = ShardRouter::new(8);
    let mut seen: Vec<usize> = Vec::new();
    for row in &sharded.shards {
        for &i in &row.sessions {
            assert_eq!(router.route(specs[i].patient, specs[i].session), row.shard);
            seen.push(i);
        }
        if row.sessions.is_empty() {
            assert_eq!(
                row.rebuilds, 0,
                "idle shard {} rebuilt its index",
                row.shard
            );
        }
    }
    seen.sort_unstable();
    assert_eq!(seen, (0..specs.len()).collect::<Vec<_>>());

    // The absorb merge folded idle shard registries into the parent
    // without breaking the ledger.
    let snapshot = rt.engine().metrics().snapshot();
    if let Err(msg) = snapshot.check_invariants() {
        panic!("absorbed snapshot does not reconcile: {msg}");
    }
    assert!(snapshot.counter("cohort.sessions") >= specs.len() as u64);

    // An empty cohort over many shards is a no-op, not a hang: a full
    // attribution table of empty rows and no sessions.
    let empty = rt.replay(&[]);
    assert!(empty.sessions.is_empty());
    assert_eq!(empty.shards.len(), 8);
    assert!(empty.shards.iter().all(|s| s.sessions.is_empty()));
}

#[test]
fn fault_budget_exhaustion_is_identical_across_shard_counts() {
    let (store, patients) = seeded_store(2, 82);
    let mut specs = scenario_specs(&patients, 220);
    // Poison one extra session so a zero budget fails it immediately.
    let mid = specs[0].samples.len() / 3;
    let t = specs[0].samples[mid].time;
    specs[0].samples[mid] = Sample::new_1d(t, f64::NAN);
    let zero_budget = DegradationPolicy {
        fault_budget: 0,
        ..DegradationPolicy::default()
    };
    let baseline = runtime(&store).with_policy(zero_budget).replay(&specs);
    let failed = baseline.fatal_sessions();
    assert!(failed >= 1, "no session exhausted the zero budget");
    assert!(baseline.sessions[0].error.is_some());
    assert!(!baseline.sessions[0].complete);
    assert_eq!(baseline.sessions[0].health, SessionHealth::Degraded);
    for shards in SHARD_COUNTS {
        let sharded = runtime(&store)
            .with_policy(zero_budget)
            .with_shards(shards)
            .replay(&specs);
        assert_eq!(
            baseline.sessions, sharded.sessions,
            "shards={shards}: fault-budget semantics diverged"
        );
        assert_eq!(sharded.fatal_sessions(), failed);
    }
}
