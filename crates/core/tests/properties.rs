//! Property-based tests of the matching core's invariants.

use proptest::prelude::*;
use tsm_core::prelude::*;
use tsm_core::query::fixed_query;
use tsm_db::SourceRelation;
use tsm_model::{BreathState, Vertex};

/// Strategy: a random regular PLR window of `cycles` breathing cycles with
/// per-cycle amplitude/duration wobble.
fn plr_window(max_cycles: usize) -> impl Strategy<Value = Vec<Vertex>> {
    (
        2usize..=max_cycles,
        proptest::collection::vec((4.0f64..20.0, 2.5f64..6.0), max_cycles),
        0.0f64..30.0, // baseline
    )
        .prop_map(|(cycles, specs, baseline)| {
            let mut v = Vec::new();
            let mut t = 0.0;
            for (amp, period) in specs.iter().take(cycles) {
                v.push(Vertex::new_1d(t, baseline + amp, BreathState::Exhale));
                v.push(Vertex::new_1d(
                    t + period * 0.4,
                    baseline,
                    BreathState::EndOfExhale,
                ));
                v.push(Vertex::new_1d(
                    t + period * 0.6,
                    baseline,
                    BreathState::Inhale,
                ));
                t += period;
            }
            v.push(Vertex::new_1d(
                t,
                baseline + specs[0].0,
                BreathState::Exhale,
            ));
            v
        })
}

/// Two windows with the same cycle count (so their state orders match).
fn window_pair() -> impl Strategy<Value = (Vec<Vertex>, Vec<Vertex>)> {
    (2usize..=4).prop_flat_map(|cycles| {
        let a = plr_window(cycles).prop_filter("cycle count", move |v| v.len() == cycles * 3 + 1);
        let b = plr_window(cycles).prop_filter("cycle count", move |v| v.len() == cycles * 3 + 1);
        (a, b)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// d(Q, Q) = 0, d >= 0, and d is symmetric within one relation tier.
    #[test]
    fn distance_identity_symmetry_nonnegativity((a, b) in window_pair()) {
        let p = Params::default();
        let rel = SourceRelation::SamePatient;
        let daa = online_distance(&a, &a, &p, rel).unwrap();
        prop_assert!(daa.abs() < 1e-12);
        if let Some(dab) = online_distance(&a, &b, &p, rel) {
            let dba = online_distance(&b, &a, &p, rel).unwrap();
            prop_assert!(dab >= 0.0);
            prop_assert!((dab - dba).abs() < 1e-9);
        }
    }

    /// Offline distance equals online distance when the vertex-weight base
    /// is 1 (flat weights).
    #[test]
    fn offline_equals_flat_online((a, b) in window_pair()) {
        let p = Params { wi_base: 1.0, ..Params::default() };
        let rel = SourceRelation::SameSession;
        let on = online_distance(&a, &b, &p, rel);
        let off = offline_distance(&a, &b, &p, rel);
        match (on, off) {
            (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-9),
            (None, None) => {}
            _ => prop_assert!(false, "gate divergence"),
        }
    }

    /// Baseline shifts never change the distance (offset-translation
    /// insensitivity).
    #[test]
    fn offset_translation_invariance((a, b) in window_pair(), shift in -50.0f64..50.0) {
        let p = Params::default();
        let rel = SourceRelation::SameSession;
        let shifted: Vec<Vertex> = b
            .iter()
            .map(|v| Vertex::new_1d(v.time, v.position[0] + shift, v.state))
            .collect();
        let d0 = online_distance(&a, &b, &p, rel);
        let d1 = online_distance(&a, &shifted, &p, rel);
        match (d0, d1) {
            (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-9),
            (None, None) => {}
            _ => prop_assert!(false, "gate divergence"),
        }
    }

    /// Source tiers order every distance: same-session <= same-patient <=
    /// other-patient, with the exact ws ratios.
    #[test]
    fn source_tiers_scale_distances((a, b) in window_pair()) {
        let p = Params::default();
        if let Some(ds) = online_distance(&a, &b, &p, SourceRelation::SameSession) {
            let dp = online_distance(&a, &b, &p, SourceRelation::SamePatient).unwrap();
            let do_ = online_distance(&a, &b, &p, SourceRelation::OtherPatient).unwrap();
            prop_assert!(ds <= dp + 1e-12 && dp <= do_ + 1e-12);
            if ds > 1e-9 {
                prop_assert!((dp / ds - 1.0 / 0.9).abs() < 1e-6);
                prop_assert!((do_ / ds - 1.0 / 0.3).abs() < 1e-6);
            }
        }
    }

    /// Vertex weights are within [wi_base, 1] and non-decreasing towards
    /// the end of the query.
    #[test]
    fn vertex_weights_bounded_monotone(n in 2usize..30, base in 0.0f64..1.0) {
        let p = Params { wi_base: base, ..Params::default() };
        let mut prev = 0.0;
        for i in 0..n {
            let w = vertex_weight(&p, i, n);
            prop_assert!(w >= base - 1e-12 && w <= 1.0 + 1e-12);
            prop_assert!(w >= prev - 1e-12);
            prev = w;
        }
        prop_assert!((vertex_weight(&p, n - 1, n) - 1.0).abs() < 1e-12);
    }

    /// Dynamic queries always cover the most recent motion and respect
    /// the length bounds.
    #[test]
    fn query_bounds(buffer in plr_window(14), theta in 0.05f64..20.0) {
        let p = Params { theta, lmin_cycles: 2, lmax_cycles: 6, ..Params::default() };
        prop_assume!(buffer.len() > p.lmin_segments());
        if let Some(q) = generate_query(&buffer, &p) {
            prop_assert!(q.len >= p.lmin_segments());
            prop_assert!(q.len <= p.lmax_segments());
            prop_assert_eq!(q.start + q.len, buffer.len() - 1);
        }
    }

    /// Fixed-length queries also end at the most recent vertex.
    #[test]
    fn fixed_query_bounds(buffer in plr_window(10), len in 1usize..40) {
        match fixed_query(&buffer, len) {
            Some(q) => {
                prop_assert_eq!(q.len, len);
                prop_assert_eq!(q.start + q.len, buffer.len() - 1);
            }
            None => prop_assert!(len == 0 || len > buffer.len() - 1),
        }
    }

    /// Stability is invariant under uniform time+amplitude scaling (up to
    /// the epsilon guards) and IRR relabelling never decreases it.
    #[test]
    fn stability_scale_and_irr(buffer in plr_window(8), scale in 1.2f64..3.0) {
        let p = Params::default();
        let base = stability(&buffer, &p);
        let scaled: Vec<Vertex> = buffer
            .iter()
            .map(|v| Vertex::new_1d(v.time * scale, v.position[0] * scale, v.state))
            .collect();
        let s = stability(&scaled, &p);
        prop_assert!((s - base).abs() <= 0.4 * base.max(0.5), "{base} vs {s}");

        // Relabelling a segment IRR in a *perfectly regular* window must
        // add at least the wa penalty. (In a wobbly window the relabelled
        // segment also leaves its state group, which can reduce that
        // group's deviations, so monotonicity only holds for regular
        // windows.)
        let regular: Vec<Vertex> = {
            let n_cycles = (buffer.len() - 1) / 3;
            let mut v = Vec::new();
            for c in 0..n_cycles {
                let t = c as f64 * 4.0;
                v.push(Vertex::new_1d(t, 10.0, BreathState::Exhale));
                v.push(Vertex::new_1d(t + 1.5, 0.0, BreathState::EndOfExhale));
                v.push(Vertex::new_1d(t + 2.5, 0.0, BreathState::Inhale));
            }
            v.push(Vertex::new_1d(n_cycles as f64 * 4.0, 10.0, BreathState::Exhale));
            v
        };
        if regular.len() >= 5 {
            let s_reg = stability(&regular, &p);
            let mut irr = regular.clone();
            let mid = irr.len() / 2;
            irr[mid].state = BreathState::Irregular;
            prop_assert!(stability(&irr, &p) >= s_reg + p.wa - 1e-9);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Clustering outputs are structurally valid whatever the distances.
    #[test]
    fn clustering_structural_validity(
        coords in proptest::collection::vec(0.0f64..100.0, 4..24),
        k in 1usize..5,
    ) {
        let n = coords.len();
        let dm = DistanceMatrix::from_fn(n, |i, j| (coords[i] - coords[j]).abs());
        for labels in [k_medoids(&dm, k, 30), agglomerative(&dm, k)] {
            prop_assert_eq!(labels.len(), n);
            let kk = k.min(n);
            prop_assert!(labels.iter().all(|&l| l < kk));
            // Every label in 0..max is used (no gaps).
            let used = labels.iter().copied().collect::<std::collections::HashSet<_>>();
            prop_assert_eq!(used.len(), kk.min(used.len()).max(1).min(kk));
            let s = silhouette(&dm, &labels);
            prop_assert!((-1.0..=1.0).contains(&s), "silhouette {}", s);
        }
    }

    /// ARI is 1 for identical partitions, bounded by 1, and invariant to
    /// label permutation.
    #[test]
    fn ari_properties(labels in proptest::collection::vec(0usize..4, 4..30)) {
        use tsm_core::cluster::adjusted_rand_index;
        let ari = adjusted_rand_index(&labels, &labels);
        prop_assert!((ari - 1.0).abs() < 1e-9);
        let permuted: Vec<usize> = labels.iter().map(|&l| (l + 1) % 4).collect();
        let ari_p = adjusted_rand_index(&labels, &permuted);
        prop_assert!((ari_p - 1.0).abs() < 1e-9);
    }
}
