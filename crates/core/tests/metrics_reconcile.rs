//! End-to-end reconciliation of the metrics layer: drive real searches
//! and a real cohort replay through an *enabled* registry and prove the
//! counters add up —
//!
//! * `match.windows_scored == match.windows_abandoned + match.windows_completed`
//! * `cache.hits + cache.misses == cache.lookups`
//! * served + abstained predictions == ticks
//!
//! and that snapshots diff cleanly across an interval.

use std::sync::Arc;
use tsm_core::metrics::MetricsRegistry;
use tsm_core::session::{CohortRuntime, SessionConfig, SessionRuntime, SessionSpec};
use tsm_core::{CachedMatcher, Matcher, Params, QuerySubseq, SearchOptions};
use tsm_db::{PatientAttributes, PatientId, StreamStore, SubseqRef};
use tsm_model::{segment_signal, PlrTrajectory, Sample, SegmenterConfig};
use tsm_signal::{BreathingParams, SignalGenerator};

fn seeded_store(seed: u64) -> (StreamStore, PatientId) {
    let store = StreamStore::new();
    let patient = store.add_patient(PatientAttributes::new());
    let samples = SignalGenerator::new(BreathingParams::default(), seed).generate(120.0);
    let vertices = segment_signal(&samples, SegmenterConfig::clean());
    let plr = PlrTrajectory::from_vertices(vertices).unwrap();
    store.add_stream(patient, 0, plr, samples.len());
    (store, patient)
}

fn live_samples(seed: u64, duration: f64) -> Vec<Sample> {
    SignalGenerator::new(BreathingParams::default(), seed).generate(duration)
}

#[test]
fn matcher_counters_reconcile_across_all_variants() {
    let (store, _) = seeded_store(61);
    let metrics = MetricsRegistry::enabled();
    let cached = CachedMatcher::new(
        Matcher::new(store.clone(), Params::default()).with_metrics(metrics.clone()),
    );
    let view = store
        .resolve(SubseqRef::new(tsm_db::StreamId(0), 0, 9))
        .unwrap();
    let query = QuerySubseq::from_view(&view);
    let opts = SearchOptions::default();

    // Exercise the cached/pruned path, the plain scan and the parallel
    // scan against the same registry.
    cached.find_matches(&query, &opts);
    cached.find_matches(&query, &opts);
    cached.matcher().find_matches_with(&query, &opts);
    cached.matcher().find_matches_parallel(&query, &opts, 3);

    let snap = metrics.snapshot();
    snap.check_invariants().expect("counters reconcile");
    assert_eq!(snap.counter("match.searches"), 4);
    assert!(snap.counter("match.windows_scored") > 0);
    assert_eq!(
        snap.counter("match.windows_scored"),
        snap.counter("match.windows_abandoned") + snap.counter("match.windows_completed")
    );
    // Two cached searches of the same length: one miss, one hit.
    assert_eq!(snap.counter("cache.lookups"), 2);
    assert_eq!(snap.counter("cache.hits"), 1);
    assert_eq!(snap.counter("cache.misses"), 1);
    assert_eq!(
        snap.counter("cache.hits") + snap.counter("cache.misses"),
        snap.counter("cache.lookups")
    );
    assert_eq!(snap.counter("cache.rebuilds"), 1);
    // The pruned path reported its band funnel.
    assert!(snap.counter("index.bucket_candidates") >= snap.counter("index.amp_band_candidates"));
    assert!(snap.counter("index.amp_band_candidates") >= snap.counter("index.dur_band_candidates"));
    // Search latency histogram observed exactly the cached searches.
    assert_eq!(
        snap.histograms
            .get("match.search_latency_ns")
            .map(|h| h.count)
            .unwrap_or(0),
        2
    );
}

#[test]
fn session_replay_counters_reconcile_and_diff() {
    let (store, patient) = seeded_store(62);
    let params = Params {
        min_matches: 1,
        ..Params::default()
    };
    let metrics = MetricsRegistry::enabled();
    let engine = Arc::new(CachedMatcher::new(
        Matcher::new(store.into_shared(), params).with_metrics(metrics.clone()),
    ));
    let runtime = CohortRuntime::with_engine(engine)
        .with_segmenter(SegmenterConfig::clean())
        .with_threads(2);
    let specs: Vec<SessionSpec> = (0..2)
        .map(|i| SessionSpec {
            patient,
            session: i + 1,
            samples: live_samples(63 + i as u64, 40.0),
        })
        .collect();

    let before = metrics.snapshot();
    let report = runtime.replay(&specs);
    let after = metrics.snapshot();
    let interval = after.diff(&before);

    after.check_invariants().expect("counters reconcile");
    interval
        .check_invariants()
        .expect("diffed counters reconcile");

    let total_samples: u64 = specs.iter().map(|s| s.samples.len() as u64).sum();
    assert_eq!(interval.counter("segment.samples"), total_samples);
    assert_eq!(interval.counter("segment.samples_rejected"), 0);
    assert_eq!(interval.counter("cohort.sessions"), 2);
    assert_eq!(interval.counter("cohort.sessions_failed"), 0);
    assert_eq!(
        interval.counter("session.ticks"),
        report.total_ticks() as u64
    );
    assert_eq!(
        interval.counter("session.predictions_served"),
        report.total_predictions() as u64
    );
    assert_eq!(
        interval.counter("session.predictions_served")
            + interval.counter("session.predictions_abstained"),
        interval.counter("session.ticks")
    );
    // Every session emitted vertices, and the backlog high-water mark is
    // bounded by the busiest session's event count.
    assert!(interval.counter("segment.vertices_emitted") > 0);
    assert!(interval.counter("segment.state_transitions") > 0);
    let max_events = report
        .sessions
        .iter()
        .map(|s| s.ticks.len() as u64 + 1)
        .max()
        .unwrap();
    assert_eq!(interval.counter("cohort.backlog_hwm"), max_events);
    // The tick latency histogram saw exactly the ticks.
    assert_eq!(
        interval
            .histograms
            .get("session.tick_latency_ns")
            .map(|h| h.count)
            .unwrap_or(0),
        report.total_ticks() as u64
    );
}

/// Regression: BENCH_pipeline captures showed `cohort.sessions: 0` while
/// four directly-driven sessions ran and produced predictions — the
/// counter was only bumped on the `CohortRuntime::replay` path. Session
/// starts are now counted at runtime construction, so *every* driving
/// style (direct `SessionRuntime`, replay, sharded replay) reconciles
/// against the sessions that actually ran.
#[test]
fn directly_driven_sessions_count_into_cohort_sessions() {
    let (store, patient) = seeded_store(64);
    let params = Params {
        min_matches: 1,
        ..Params::default()
    };
    let metrics = MetricsRegistry::enabled();
    let engine = Arc::new(CachedMatcher::new(
        Matcher::new(store.into_shared(), params).with_metrics(metrics.clone()),
    ));
    let sessions_run = 4u64;
    for i in 0..sessions_run {
        let config = SessionConfig::new(patient, i as u32 + 1)
            .with_segmenter(SegmenterConfig::clean())
            .with_cadence(30);
        let mut runtime = SessionRuntime::with_engine(engine.clone(), config)
            .unwrap()
            .with_consumer(Box::new(tsm_core::session::PredictionLog::new()));
        for &s in &live_samples(65 + i, 20.0) {
            runtime.push(s).unwrap();
        }
        runtime.finish();
    }
    let snap = metrics.snapshot();
    snap.check_invariants().expect("counters reconcile");
    assert_eq!(snap.counter("cohort.sessions"), sessions_run);
    assert!(snap.counter("session.ticks") > 0);
}

/// The sharded replay records into per-shard registries and folds them
/// back into the parent at the end — the parent interval must reconcile
/// exactly like an unsharded one.
#[test]
fn sharded_replay_counters_reconcile_on_the_parent_registry() {
    let (store, patient) = seeded_store(66);
    let params = Params {
        min_matches: 1,
        ..Params::default()
    };
    let metrics = MetricsRegistry::enabled();
    let engine = Arc::new(CachedMatcher::new(
        Matcher::new(store.into_shared(), params).with_metrics(metrics.clone()),
    ));
    let runtime = CohortRuntime::with_engine(engine)
        .with_segmenter(SegmenterConfig::clean())
        .with_shards(2);
    let specs: Vec<SessionSpec> = (0..4)
        .map(|i| SessionSpec {
            patient,
            session: i + 1,
            samples: live_samples(67 + i as u64, 30.0),
        })
        .collect();

    let before = metrics.snapshot();
    let report = runtime.replay(&specs);
    let interval = metrics.snapshot().diff(&before);

    interval
        .check_invariants()
        .expect("absorbed shard counters reconcile");
    assert_eq!(
        interval.counter("cohort.sessions"),
        report.sessions.len() as u64
    );
    assert_eq!(interval.counter("cohort.sessions_failed"), 0);
    assert_eq!(
        interval.counter("session.ticks"),
        report.total_ticks() as u64
    );
    assert_eq!(
        interval.counter("session.predictions_served"),
        report.total_predictions() as u64
    );
    let total_samples: u64 = specs.iter().map(|s| s.samples.len() as u64).sum();
    assert_eq!(interval.counter("segment.samples"), total_samples);
    let max_events = report
        .sessions
        .iter()
        .map(|s| s.ticks.len() as u64 + 1)
        .max()
        .unwrap();
    assert_eq!(interval.counter("cohort.backlog_hwm"), max_events);
}
