//! Property tests of the gating and tracking simulations.

use proptest::prelude::*;
use tsm_core::gating::{last_observed_policy, oracle_policy, simulate_gating, GatingWindow};
use tsm_core::tracking::{last_observed_aim, oracle_aim, simulate_tracking};
use tsm_model::{BreathState::*, PlrTrajectory, Vertex};

/// A regular trajectory with the given amplitude/period/dwell level.
fn trajectory(cycles: usize, amplitude: f64, period: f64, dwell: f64) -> PlrTrajectory {
    let mut v = Vec::new();
    let mut t = 0.0;
    for _ in 0..cycles {
        v.push(Vertex::new_1d(t, dwell + amplitude, Exhale));
        v.push(Vertex::new_1d(t + period * 0.4, dwell, EndOfExhale));
        v.push(Vertex::new_1d(t + period * 0.65, dwell, Inhale));
        t += period;
    }
    v.push(Vertex::new_1d(t, dwell + amplitude, Exhale));
    PlrTrajectory::from_vertices(v).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The oracle gating policy is always perfect; stats are proper
    /// probabilities; the F1 is within bounds.
    #[test]
    fn oracle_gating_is_perfect(
        amplitude in 5.0f64..20.0,
        period in 3.0f64..6.0,
        dwell in -5.0f64..5.0,
        width in 2.0f64..6.0,
    ) {
        let plr = trajectory(12, amplitude, period, dwell);
        let w = GatingWindow::at_exhale_end(&plr, 0, width);
        let stats = simulate_gating(
            &plr, 0, w, period, plr.end_time() - period, 0.02,
            oracle_policy(&plr, 0, w),
        );
        prop_assert!((stats.precision - 1.0).abs() < 1e-9);
        prop_assert!((stats.recall - 1.0).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&stats.duty_cycle));
        prop_assert!((stats.f1() - 1.0).abs() < 1e-9);
        // The window center sits at the dwell level.
        prop_assert!((w.center - dwell).abs() < 0.5);
    }

    /// More latency never helps the last-observed gating policy (F1 is
    /// non-increasing, modulo tiny tick-quantization noise).
    #[test]
    fn latency_monotonically_degrades_gating(
        amplitude in 6.0f64..20.0,
        period in 3.0f64..6.0,
    ) {
        let plr = trajectory(12, amplitude, period, 0.0);
        let w = GatingWindow::at_exhale_end(&plr, 0, 3.0);
        let f1 = |latency: f64| {
            simulate_gating(
                &plr, 0, w, period, plr.end_time() - period, 0.02,
                last_observed_policy(&plr, 0, w, latency),
            )
            .f1()
        };
        let mut prev = f1(0.0);
        prop_assert!((prev - 1.0).abs() < 1e-9);
        for latency in [0.1, 0.2, 0.3, 0.5] {
            let cur = f1(latency);
            prop_assert!(cur <= prev + 0.02, "latency {latency}: F1 {cur} > {prev}");
            prev = cur;
        }
    }

    /// Tracking errors: the oracle is exact; last-observed error scales
    /// with latency and never exceeds the motion range; the percentile
    /// ordering mean <= p95 <= max always holds.
    #[test]
    fn tracking_error_structure(
        amplitude in 5.0f64..20.0,
        period in 3.0f64..6.0,
        latency in 0.05f64..0.5,
    ) {
        let plr = trajectory(12, amplitude, period, 0.0);
        let (t0, t1) = (period, plr.end_time() - period);
        let oracle = simulate_tracking(&plr, 0, t0, t1, 0.02, oracle_aim(&plr));
        prop_assert!(oracle.max_error < 1e-9);
        let lagged = simulate_tracking(&plr, 0, t0, t1, 0.02, last_observed_aim(&plr, latency));
        prop_assert!(lagged.mean_error > 0.0);
        prop_assert!(lagged.mean_error <= lagged.rms_error + 1e-12);
        prop_assert!(lagged.rms_error <= lagged.p95_error + lagged.mean_error);
        prop_assert!(lagged.mean_error <= lagged.p95_error + 1e-12);
        prop_assert!(lagged.p95_error <= lagged.max_error + 1e-12);
        prop_assert!(lagged.max_error <= amplitude + 1e-9);
        // Error is bounded by peak speed x latency.
        let peak_speed = amplitude / (period * 0.25);
        prop_assert!(
            lagged.max_error <= peak_speed * latency + 1e-6,
            "max {} exceeds speed bound {}",
            lagged.max_error,
            peak_speed * latency
        );
    }

    /// Gating windows behave like intervals: containment is symmetric
    /// around the center and monotone in width.
    #[test]
    fn window_geometry(center in -20.0f64..20.0, width in 0.5f64..10.0, x in -30.0f64..30.0) {
        let w = GatingWindow { center, width };
        prop_assert_eq!(w.contains(x), (x - center).abs() <= width * 0.5);
        let wider = GatingWindow { center, width: width * 2.0 };
        if w.contains(x) {
            prop_assert!(wider.contains(x));
        }
    }
}
