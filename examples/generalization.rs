//! Generalization: the four-step framework on non-respiratory domains
//! (paper Section 6).
//!
//! The same finite-state PLR machinery segments a robot-arm actuator
//! trace, a tide-gauge series and a heartbeat displacement signal — only
//! the [`tsm_core::framework::DomainProfile`] changes. For the actuator,
//! subsequence matching then flags the injected faults as irregular
//! segments.
//!
//! Run with: `cargo run --release -p tsm-examples --bin generalization`

use tsm_core::framework::DomainProfile;
use tsm_core::matcher::{Matcher, QuerySubseq};
use tsm_core::predict::{predict_position, AlignMode};
use tsm_core::query::generate_query;
use tsm_db::{PatientAttributes, StreamStore};
use tsm_examples::state_histogram;
use tsm_model::{segment_signal, BreathState, PlrTrajectory, Sample};
use tsm_signal::generalize::{
    actuator_signal, heartbeat_signal, tide_signal, ActuatorParams, HeartbeatParams, TideParams,
};

fn report(profile: &DomainProfile, samples: &[Sample], time_unit: &str) {
    println!("== {} ==", profile.name);
    let vertices = segment_signal(samples, profile.segmenter.clone());
    let hist = state_histogram(&vertices);
    println!(
        "  {} samples -> {} PLR vertices",
        samples.len(),
        vertices.len()
    );
    for state in BreathState::ALL {
        println!(
            "  {:<18} {} segments",
            profile.state_name(state),
            hist[state.index()]
        );
    }
    if vertices.len() >= 2 {
        let span = vertices.last().expect("non-empty").time - vertices[0].time;
        let cycles = hist[0].min(hist[2]);
        if cycles > 0 {
            println!(
                "  ~{:.2} {time_unit} per cycle over {:.1} {time_unit}",
                span / cycles as f64,
                span
            );
        }
    }
    println!();
}

fn main() {
    println!("The paper's framework, unchanged, on three other structured domains:\n");

    // Mechanical actuator with injected faults.
    let actuator = DomainProfile::actuator();
    let a_params = ActuatorParams {
        fault_rate: 0.05,
        ..Default::default()
    };
    let a_samples = actuator_signal(a_params, 11, 120.0);
    report(&actuator, &a_samples, "s");
    let vertices = segment_signal(&a_samples, actuator.segmenter.clone());
    let faults = vertices
        .iter()
        .filter(|v| v.state == BreathState::Irregular)
        .count();
    println!(
        "  fault detection: {} segments flagged '{}' (faults were injected at ~5%/cycle)\n",
        faults,
        actuator.state_name(BreathState::Irregular)
    );

    // Tides (time unit: hours) — including water-level *forecasting* by
    // subsequence matching: last month's tides in the store, predict the
    // level 2 h ahead during the current fortnight.
    let tide = DomainProfile::tide();
    let t_samples = tide_signal(TideParams::default(), 12, 14.0 * 24.0);
    report(&tide, &t_samples, "h");

    let history = tide_signal(TideParams::default(), 13, 30.0 * 24.0);
    let store = StreamStore::new();
    let site = store.add_patient(PatientAttributes::new()); // the "patient" is a tide gauge
    let hist_plr = PlrTrajectory::from_vertices(segment_signal(&history, tide.segmenter.clone()))
        .expect("valid PLR");
    store.add_stream(site, 0, hist_plr, history.len());
    let live = PlrTrajectory::from_vertices(segment_signal(&t_samples, tide.segmenter.clone()))
        .expect("valid PLR");

    let params = tide.params.clone();
    let matcher = Matcher::new(store.clone(), params.clone());
    let horizon_h = 2.0;
    let mut err_matched = 0.0;
    let mut err_last = 0.0;
    let mut n = 0usize;
    for cut in (12..live.num_vertices() - 4).step_by(3) {
        let buffer = &live.vertices()[..cut];
        let Some(outcome) = generate_query(buffer, &params) else {
            continue;
        };
        let query = QuerySubseq::new(outcome.vertices(buffer).to_vec()).with_origin(site, 1);
        let matches = matcher.find_matches(&query);
        let t_last = query.vertices.last().expect("non-empty").time;
        if let Some(p) = predict_position(
            &store,
            &query,
            &matches,
            horizon_h,
            &params,
            AlignMode::default(),
        ) {
            let truth = live.position_at(t_last + horizon_h)[0];
            err_matched += (p[0] - truth).abs();
            err_last += (live.position_at(t_last)[0] - truth).abs();
            n += 1;
        }
    }
    if n > 0 {
        println!("  forecasting the water level {horizon_h:.0} h ahead ({n} forecasts):");
        println!(
            "    matched prediction {:.3} m mean error vs persistence {:.3} m",
            err_matched / n as f64,
            err_last / n as f64
        );
        println!();
    }

    // Heartbeat (100 Hz).
    let heart = DomainProfile::heartbeat();
    let h_samples = heartbeat_signal(HeartbeatParams::default(), 13, 60.0);
    report(&heart, &h_samples, "s");

    println!("Same code path every time: model -> online segmentation -> states -> matching.");
}
