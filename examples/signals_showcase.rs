//! Signals showcase: the Figure 3 phenomena, synthesized.
//!
//! Renders the complex tumor-motion effects the paper's Figure 3
//! illustrates — (a) amplitude and frequency changes, (b) baseline
//! shifts, (c) cardiac motion, (d) cardiac motion plus spike noise — and
//! an irregular-breathing episode reel, as ASCII plots.
//!
//! Run with: `cargo run --release -p tsm-examples --bin signals_showcase`

use tsm_examples::ascii_plot;
use tsm_signal::{BreathingParams, EpisodePlan, NoiseParams, SignalGenerator};

fn show(
    title: &str,
    params: BreathingParams,
    noise: NoiseParams,
    episodes: EpisodePlan,
    seed: u64,
) {
    println!("--- {title} ---");
    let mut generator = SignalGenerator::new(params, seed)
        .with_noise(noise)
        .with_episodes(episodes);
    let samples = generator.generate(40.0);
    print!("{}", ascii_plot(&samples, 9, 76));
    println!();
}

fn main() {
    show(
        "Figure 3a: amplitude and frequency changes",
        BreathingParams {
            amplitude_jitter: 0.25,
            period_jitter: 0.18,
            baseline_walk_mm: 0.0,
            ..Default::default()
        },
        NoiseParams::clean(),
        EpisodePlan::none(),
        1,
    );
    show(
        "Figure 3b: baseline shift on top of amplitude/frequency changes",
        BreathingParams {
            amplitude_jitter: 0.15,
            period_jitter: 0.10,
            baseline_walk_mm: 1.2,
            baseline_trend_mm_per_min: 6.0,
            ..Default::default()
        },
        NoiseParams::clean(),
        EpisodePlan::none(),
        2,
    );
    show(
        "Figure 3c: cardiac motion",
        BreathingParams::default(),
        NoiseParams {
            cardiac_amplitude_mm: 1.2,
            white_sd_mm: 0.0,
            spike_rate_hz: 0.0,
            ..NoiseParams::typical()
        },
        EpisodePlan::none(),
        3,
    );
    show(
        "Figure 3d: cardiac motion + spike noise",
        BreathingParams::default(),
        NoiseParams {
            cardiac_amplitude_mm: 1.2,
            spike_rate_hz: 0.5,
            spike_magnitude_mm: 8.0,
            ..NoiseParams::typical()
        },
        EpisodePlan::none(),
        4,
    );
    show(
        "Irregular breathing: frequent episodes (coughs, holds, deep breaths)",
        BreathingParams::default(),
        NoiseParams::typical(),
        EpisodePlan::frequent(),
        5,
    );
    println!("(the segmenter's job is to produce clean EX/EOE/IN labels from all of the above;");
    println!(" run the quickstart example to see the resulting PLR)");
}
