//! Shared helpers for the example binaries: ASCII plotting and small
//! store-building utilities.

use tsm_db::{PatientAttributes, PatientId, StreamStore};
use tsm_model::{segment_signal, PlrTrajectory, Sample, SegmenterConfig, Vertex};

/// Renders a 1-D signal as a rough ASCII plot (`height` rows, one column
/// per `stride` samples) — enough to eyeball the Figure 3/4 phenomena in
/// a terminal.
pub fn ascii_plot(samples: &[Sample], height: usize, width: usize) -> String {
    if samples.is_empty() || height < 2 || width < 2 {
        return String::new();
    }
    let ys: Vec<f64> = samples.iter().map(|s| s.position[0]).collect();
    let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-9);
    let stride = (samples.len() / width).max(1);
    let cols: Vec<usize> = ys
        .chunks(stride)
        .map(|chunk| {
            let mean = chunk.iter().sum::<f64>() / chunk.len() as f64;
            (((mean - lo) / span) * (height - 1) as f64).round() as usize
        })
        .collect();
    let mut grid = vec![vec![' '; cols.len()]; height];
    for (x, &row) in cols.iter().enumerate() {
        grid[height - 1 - row][x] = '*';
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{hi:7.1} |")
        } else if i == height - 1 {
            format!("{lo:7.1} |")
        } else {
            "        |".to_string()
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out
}

/// Renders a PLR's states as a compact strip aligned with the same
/// horizontal scale as [`ascii_plot`].
pub fn state_strip(plr: &PlrTrajectory, samples: &[Sample], width: usize) -> String {
    if samples.is_empty() || width < 2 {
        return String::new();
    }
    let stride = (samples.len() / width).max(1);
    let mut out = String::from("states  |");
    for chunk in samples.chunks(stride) {
        let mid = chunk[chunk.len() / 2].time;
        let ch = match plr.state_at(mid) {
            tsm_model::BreathState::Exhale => 'E',
            tsm_model::BreathState::EndOfExhale => '_',
            tsm_model::BreathState::Inhale => 'I',
            tsm_model::BreathState::Irregular => '!',
        };
        out.push(ch);
    }
    out.push('\n');
    out
}

/// Segments `samples` and stores them as a stream of `patient`.
pub fn store_stream(
    store: &StreamStore,
    patient: PatientId,
    session: u32,
    samples: &[Sample],
    config: &SegmenterConfig,
) -> Option<tsm_db::StreamId> {
    let vertices = segment_signal(samples, config.clone());
    let plr = PlrTrajectory::from_vertices(vertices).ok()?;
    Some(store.add_stream(patient, session, plr, samples.len()))
}

/// Creates a patient with the given attribute pairs.
pub fn add_patient(store: &StreamStore, attrs: &[(&str, &str)]) -> PatientId {
    let attributes: PatientAttributes = attrs
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    store.add_patient(attributes)
}

/// Counts segments per state in a vertex list.
pub fn state_histogram(vertices: &[Vertex]) -> [usize; 4] {
    let mut h = [0usize; 4];
    if vertices.len() < 2 {
        return h;
    }
    for v in &vertices[..vertices.len() - 1] {
        h[v.state.index()] += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsm_model::BreathState::*;

    #[test]
    fn ascii_plot_shapes() {
        let samples: Vec<Sample> = (0..100)
            .map(|i| Sample::new_1d(i as f64, (i as f64 * 0.2).sin()))
            .collect();
        let plot = ascii_plot(&samples, 8, 40);
        let lines: Vec<&str> = plot.lines().collect();
        assert_eq!(lines.len(), 8);
        assert!(plot.contains('*'));
        // Degenerate requests return nothing rather than panicking.
        assert!(ascii_plot(&[], 8, 40).is_empty());
        assert!(ascii_plot(&samples, 1, 40).is_empty());
        assert!(ascii_plot(&samples, 8, 1).is_empty());
    }

    #[test]
    fn state_histogram_counts_segments_not_vertices() {
        let v = vec![
            Vertex::new_1d(0.0, 10.0, Exhale),
            Vertex::new_1d(1.0, 0.0, EndOfExhale),
            Vertex::new_1d(2.0, 0.0, Inhale),
            Vertex::new_1d(3.0, 10.0, Exhale), // terminal: not a segment
        ];
        assert_eq!(state_histogram(&v), [1, 1, 1, 0]);
        assert_eq!(state_histogram(&[]), [0, 0, 0, 0]);
        assert_eq!(state_histogram(&v[..1]), [0, 0, 0, 0]);
    }

    #[test]
    fn state_strip_marks_states() {
        let plr = tsm_model::PlrTrajectory::from_vertices(vec![
            Vertex::new_1d(0.0, 10.0, Exhale),
            Vertex::new_1d(5.0, 0.0, EndOfExhale),
            Vertex::new_1d(10.0, 0.0, Inhale),
            Vertex::new_1d(15.0, 10.0, Exhale),
        ])
        .unwrap();
        let samples: Vec<Sample> = (0..150)
            .map(|i| Sample::new_1d(i as f64 * 0.1, 0.0))
            .collect();
        let strip = state_strip(&plr, &samples, 30);
        assert!(strip.contains('E'));
        assert!(strip.contains('_'));
        assert!(strip.contains('I'));
    }
}
