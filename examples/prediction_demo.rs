//! Prediction demo: a full image-guided treatment session.
//!
//! A patient has two historical sessions in the database (plus streams
//! from two other patients). A third session is replayed live through
//! [`tsm_core::pipeline::OnlinePredictor`]; at one-second intervals the
//! system predicts the tumor position 100/200/300 ms ahead — the latency
//! window of Figure 1 — and the errors are compared against treating at
//! the last observed position.
//!
//! Run with: `cargo run --release -p tsm-examples --bin prediction_demo`

use tsm_core::pipeline::OnlinePredictor;
use tsm_core::Params;
use tsm_db::StreamStore;
use tsm_examples::{add_patient, store_stream};
use tsm_model::{segment_signal, PlrTrajectory, SegmenterConfig};
use tsm_signal::{BreathingParams, EpisodePlan, NoiseParams, SignalGenerator};

fn main() {
    let seg_config = SegmenterConfig::default();
    let store = StreamStore::new();

    // --- Historical data -----------------------------------------------
    let our_patient = add_patient(&store, &[("name", "patient A")]);
    let patient_params = BreathingParams {
        amplitude_mm: 14.0,
        period_s: 4.2,
        ..Default::default()
    };
    for session in 0..2u32 {
        let mut generator = SignalGenerator::new(patient_params, 100 + session as u64)
            .with_noise(NoiseParams::typical())
            .with_episodes(EpisodePlan::occasional());
        let samples = generator.generate(150.0);
        store_stream(&store, our_patient, session, &samples, &seg_config);
    }
    // Two other patients with different breathing.
    for (i, (amp, per)) in [(7.0, 3.0), (18.0, 5.3)].iter().enumerate() {
        let other = add_patient(&store, &[("name", "other")]);
        let p = BreathingParams {
            amplitude_mm: *amp,
            period_s: *per,
            ..Default::default()
        };
        let mut generator =
            SignalGenerator::new(p, 200 + i as u64).with_noise(NoiseParams::typical());
        let samples = generator.generate(150.0);
        store_stream(&store, other, 0, &samples, &seg_config);
    }
    println!(
        "store: {} patients, {} streams, {} vertices\n",
        store.num_patients(),
        store.num_streams(),
        store.total_vertices()
    );

    // --- Live session ---------------------------------------------------
    let params = Params::default();
    let mut predictor = OnlinePredictor::new(
        store.clone(),
        params.clone(),
        seg_config.clone(),
        our_patient,
        2,
    )
    .expect("default parameters are valid");
    let mut generator = SignalGenerator::new(patient_params, 300)
        .with_noise(NoiseParams::typical())
        .with_episodes(EpisodePlan::occasional());
    let live_samples = generator.generate(120.0);
    let truth = {
        let v = segment_signal(&live_samples, seg_config.clone());
        PlrTrajectory::from_vertices(v).expect("valid PLR")
    };

    let dts = [0.1, 0.2, 0.3];
    let mut err = [0.0f64; 3];
    let mut naive_err = [0.0f64; 3];
    let mut n = [0usize; 3];
    let mut abstained = 0usize;
    for (i, &s) in live_samples.iter().enumerate() {
        predictor.push(s).expect("finite sample");
        if i % 30 != 0 || i < 300 {
            continue;
        }
        let Some(last) = predictor.live_vertices().last() else {
            continue;
        };
        let t_last = last.time;
        let mut any = false;
        for (k, &dt) in dts.iter().enumerate() {
            if let Some(outcome) = predictor.predict(dt) {
                let truth_pos = truth.position_at(t_last + dt)[0];
                err[k] += (outcome.position[0] - truth_pos).abs();
                naive_err[k] += (last.position[0] - truth_pos).abs();
                n[k] += 1;
                any = true;
            }
        }
        if !any {
            abstained += 1;
        }
    }

    println!("latency   matched prediction   last-position baseline");
    println!("-------   ------------------   -----------------------");
    for (k, &dt) in dts.iter().enumerate() {
        if n[k] == 0 {
            println!("{:>4.0} ms   (no predictions)", dt * 1000.0);
            continue;
        }
        println!(
            "{:>4.0} ms   {:>10.3} mm        {:>10.3} mm   ({} predictions)",
            dt * 1000.0,
            err[k] / n[k] as f64,
            naive_err[k] / n[k] as f64,
            n[k]
        );
    }
    println!("\nabstained at {abstained} prediction points (irregular motion or no close matches)");

    // Persist the session for future treatments.
    let id = predictor
        .finish_into_store()
        .expect("session produced a stream");
    println!(
        "session persisted as stream {id}; store now has {} streams",
        store.num_streams()
    );
}
