//! Drift monitor demo: catching baseline shift during a session.
//!
//! Matching is offset-insensitive by design, so baseline drift (the
//! paper's Figure 3b) never disturbs retrieval — but a gating window
//! placed at the start of a session silently mis-targets as the
//! exhale-end level wanders. This demo replays two live sessions — one
//! stable breather, one drifter — through the segmenter with a
//! [`tsm_core::drift::DriftMonitor`] watching the closed vertices, and
//! shows the alarm firing only for the drifter, together with what the
//! drift costs an unadjusted gating window.
//!
//! Run with: `cargo run --release -p tsm-examples --bin drift_monitor`

use tsm_core::drift::{DriftConfig, DriftMonitor};
use tsm_core::gating::{oracle_policy, simulate_gating, GatingWindow};
use tsm_model::{segment_signal, OnlineSegmenter, PlrTrajectory, SegmenterConfig};
use tsm_signal::{BreathingParams, NoiseParams, SignalGenerator};

fn run_session(name: &str, params: BreathingParams, seed: u64) {
    println!("== {name} ==");
    let mut generator = SignalGenerator::new(params, seed).with_noise(NoiseParams::typical());
    let samples = generator.generate(180.0);

    let mut segmenter = OnlineSegmenter::new(SegmenterConfig::default());
    let mut monitor = DriftMonitor::new(DriftConfig::default(), 0);
    let mut alarm_at: Option<f64> = None;
    for &s in &samples {
        for v in segmenter.push(s).expect("finite sample") {
            monitor.push(&v);
            if alarm_at.is_none() {
                if let Some(r) = monitor.report() {
                    if r.alarm {
                        alarm_at = Some(v.time);
                        println!(
                            "  ALARM at t = {:.0} s: exhale-end level {:.1} -> {:.1} mm ({:+.1} mm, trend {:+.2} mm/min)",
                            v.time,
                            r.reference_mm,
                            r.recent_mm,
                            r.shift_mm(),
                            r.trend_mm_per_min
                        );
                    }
                }
            }
        }
    }
    if alarm_at.is_none() {
        if let Some(r) = monitor.report() {
            println!(
                "  no alarm: shift {:+.2} mm, trend {:+.2} mm/min over {} exhale-ends",
                r.shift_mm(),
                r.trend_mm_per_min,
                r.observations
            );
        }
    }

    // What drift costs a gating window placed at the session start and
    // never adjusted: precision measures how much beam-on time actually
    // hits the (moving) target region.
    let truth = PlrTrajectory::from_vertices(segment_signal(&samples, SegmenterConfig::default()))
        .expect("valid PLR");
    let early = PlrTrajectory::from_vertices(
        truth
            .vertices()
            .iter()
            .take_while(|v| v.time < 40.0)
            .copied()
            .collect(),
    )
    .expect("valid prefix");
    let initial_window = GatingWindow::at_exhale_end(&early, 0, 4.0);
    let true_window = GatingWindow::at_exhale_end(&truth, 0, 4.0);
    let stats = simulate_gating(
        &truth,
        0,
        true_window, // score against where the tumor actually dwells
        40.0,
        truth.end_time() - 2.0,
        1.0 / 30.0,
        oracle_policy(&truth, 0, initial_window), // gate on the stale window
    );
    println!(
        "  gating with the session-start window: precision {:.2}, recall {:.2} (stale by {:+.1} mm)",
        stats.precision,
        stats.recall,
        true_window.center - initial_window.center
    );
    println!();
}

fn main() {
    run_session("stable breather", BreathingParams::default(), 41);
    run_session(
        "baseline drifter",
        BreathingParams {
            baseline_trend_mm_per_min: 2.5,
            baseline_walk_mm: 0.4,
            ..Default::default()
        },
        42,
    );
    println!("(the monitor flags the drifter minutes before the stale gating window");
    println!(" has lost most of its precision — time to re-localize the target)");
}
