//! Distance zoo: every similarity measure in the repository on the same
//! pair of breathing windows, with accuracy intuition and timings.
//!
//! Shows hands-on why the paper builds its own measure: Euclidean-family
//! distances need resampling and are phase-brittle; DTW is robust but
//! three orders of magnitude slower; LCSS needs a discretization
//! threshold; the weighted PLR distance reads 9 segments, respects the
//! state order, and knows about provenance.
//!
//! Run with: `cargo run --release -p tsm-examples --bin distance_zoo`

use std::time::Instant;
use tsm_baselines::{dtw_distance, lcss_distance, resample_window, window_euclidean, DftWindow};
use tsm_core::similarity::online_distance;
use tsm_core::Params;
use tsm_db::SourceRelation;
use tsm_model::{segment_signal, SegmenterConfig, Vertex};
use tsm_signal::{BreathingParams, NoiseParams, SignalGenerator};

/// A 3-cycle window cut from a fresh simulated stream.
fn window(seed: u64, amplitude: f64, period: f64) -> Vec<Vertex> {
    let params = BreathingParams {
        amplitude_mm: amplitude,
        period_s: period,
        ..Default::default()
    };
    let samples = SignalGenerator::new(params, seed)
        .with_noise(NoiseParams::typical())
        .generate(60.0);
    let vertices = segment_signal(&samples, SegmenterConfig::default());
    vertices[3..13.min(vertices.len())].to_vec()
}

fn timed<T>(f: impl Fn() -> T) -> (T, f64) {
    // Warm up, then measure a small batch for stable numbers.
    let _ = f();
    let started = Instant::now();
    let reps = 50;
    let mut last = None;
    for _ in 0..reps {
        last = Some(f());
    }
    (
        last.unwrap(),
        started.elapsed().as_secs_f64() * 1e6 / reps as f64,
    )
}

fn main() {
    let q = window(1, 12.0, 4.0);
    let similar = window(2, 12.5, 4.1);
    let different = window(3, 5.0, 2.9);
    let params = Params::default();
    let rel = SourceRelation::SamePatient;

    println!("query: 3 breathing cycles (~12 mm, 4.0 s)");
    println!("candidate A: similar patient (~12.5 mm, 4.1 s)");
    println!("candidate B: different patient (~5 mm, 2.9 s)\n");

    println!(
        "{:<28} {:>10} {:>10} {:>12}",
        "measure", "d(q, A)", "d(q, B)", "time/call"
    );
    println!("{}", "-".repeat(64));

    // Weighted PLR (the paper's measure).
    let (da, t) = timed(|| online_distance(&q, &similar, &params, rel));
    let (db, _) = timed(|| online_distance(&q, &different, &params, rel));
    let fmt = |d: Option<f64>| {
        d.map(|x| format!("{x:.3}"))
            .unwrap_or_else(|| "gate".into())
    };
    println!(
        "{:<28} {:>10} {:>10} {:>9.1} us",
        "weighted PLR (paper)",
        fmt(da),
        fmt(db),
        t
    );

    // Euclidean on resampled windows.
    let (da, t) = timed(|| window_euclidean(&q, &similar, 0, 32, 0.8));
    let (db, _) = timed(|| window_euclidean(&q, &different, 0, 32, 0.8));
    println!(
        "{:<28} {:>10} {:>10} {:>9.1} us",
        "weighted Euclidean (32pt)",
        fmt(da),
        fmt(db),
        t
    );

    // DFT lower bound (the GEMINI filter).
    let (d, t) = timed(|| {
        let a = DftWindow::build(&q, 0, 64, 4)?;
        let b = DftWindow::build(&similar, 0, 64, 4)?;
        a.lower_bound(&b)
    });
    let (d2, _) = timed(|| {
        let a = DftWindow::build(&q, 0, 64, 4)?;
        let b = DftWindow::build(&different, 0, 64, 4)?;
        a.lower_bound(&b)
    });
    println!(
        "{:<28} {:>10} {:>10} {:>9.1} us",
        "DFT lower bound (4 coeff)",
        fmt(d),
        fmt(d2),
        t
    );

    // DTW on raw-rate vectors.
    let qa = resample_window(&q, 0, 360);
    let sa = resample_window(&similar, 0, 360);
    let dfa = resample_window(&different, 0, 360);
    let (d, t) = timed(|| dtw_distance(&qa, &sa, Some(30)));
    let (d2, _) = timed(|| dtw_distance(&qa, &dfa, Some(30)));
    println!(
        "{:<28} {:>10} {:>10} {:>9.1} us",
        "DTW (raw rate, band 30)",
        fmt(d),
        fmt(d2),
        t
    );

    // LCSS.
    let (d, t) = timed(|| lcss_distance(&qa, &sa, 1.0, Some(30)));
    let (d2, _) = timed(|| lcss_distance(&qa, &dfa, 1.0, Some(30)));
    println!(
        "{:<28} {:>10} {:>10} {:>9.1} us",
        "LCSS (eps 1 mm, band 30)",
        fmt(d),
        fmt(d2),
        t
    );

    println!("\nEvery measure separates A from B; the differences are cost (the paper");
    println!("needs thousands of candidate comparisons inside a 33 ms frame budget)");
    println!("and semantics (only the PLR measure refuses mismatched state orders).");
}
