//! Gating demo: the paper's Figure 1 scenario, quantified.
//!
//! A gated treatment delivers the beam only when the tumor sits in a
//! window at the end-of-exhale position. The imaging/control chain lags
//! by 100–300 ms, so the gate decision must be made on stale
//! information. This demo compares three gating policies on the same
//! breathing trace:
//!
//! * **oracle** — zero latency (the "ideal treatment" of Figure 1);
//! * **last observed** — gate on the position from `latency` ago (the
//!   "real treatment" of Figure 1);
//! * **matched prediction** — gate on the subsequence-matching
//!   prediction of the current position.
//!
//! Run with: `cargo run --release -p tsm-examples --bin gating_demo`

use tsm_core::gating::{
    last_observed_policy, oracle_policy, predicted_policy, simulate_gating, GatingWindow,
};
use tsm_core::matcher::{Matcher, QuerySubseq};
use tsm_core::predict::{predict_position_anchored, AlignMode};
use tsm_core::query::generate_query;
use tsm_core::Params;
use tsm_db::StreamStore;
use tsm_examples::{add_patient, store_stream};
use tsm_model::{segment_signal, PlrTrajectory, SegmenterConfig};
use tsm_signal::{BreathingParams, NoiseParams, SignalGenerator};

fn main() {
    let seg_config = SegmenterConfig::default();
    let store = StreamStore::new();
    let patient = add_patient(&store, &[("name", "patient A")]);
    let breathing = BreathingParams::default();

    // Two historical sessions.
    for session in 0..2u32 {
        let mut generator = SignalGenerator::new(breathing, 400 + session as u64)
            .with_noise(NoiseParams::typical());
        let samples = generator.generate(150.0);
        store_stream(&store, patient, session, &samples, &seg_config);
    }

    // The live session trace (known in full here so the truth can be
    // scored; the policies only see their causal slice of it).
    let mut generator = SignalGenerator::new(breathing, 500).with_noise(NoiseParams::typical());
    let live_samples = generator.generate(120.0);
    let truth = PlrTrajectory::from_vertices(segment_signal(&live_samples, seg_config.clone()))
        .expect("valid PLR");

    let window = GatingWindow::at_exhale_end(&truth, 0, 4.0);
    println!(
        "gating window: center {:.2} mm (end-of-exhale), width {:.1} mm",
        window.center, window.width
    );

    let params = Params::default();
    let matcher = Matcher::new(store.clone(), params.clone());
    let (t0, t1, tick) = (20.0, 115.0, 1.0 / 30.0);

    println!("\nlatency   policy           duty   precision  recall  F1");
    println!("-------   --------------   -----  ---------  ------  -----");
    for latency in [0.1, 0.2, 0.3] {
        // Oracle (latency-independent, printed once per row group for
        // reference).
        let oracle = simulate_gating(
            &truth,
            0,
            window,
            t0,
            t1,
            tick,
            oracle_policy(&truth, 0, window),
        );
        let last = simulate_gating(
            &truth,
            0,
            window,
            t0,
            t1,
            tick,
            last_observed_policy(&truth, 0, window, latency),
        );

        // Matched prediction: at decision time t the system has the raw
        // observation from t - latency plus the PLR buffer up to there.
        // The matched subsequences supply the displacement over the
        // latency window, anchored on that fresh observation.
        let policy = predicted_policy(window, 0, |t| {
            let cutoff = t - latency;
            let upto = truth
                .vertices()
                .iter()
                .take_while(|v| v.time <= cutoff)
                .count();
            let live = &truth.vertices()[..upto];
            let outcome = generate_query(live, &params)?;
            let query = QuerySubseq::new(outcome.vertices(live).to_vec()).with_origin(patient, 2);
            let matches = matcher.find_matches(&query);
            let t_last = query.vertices.last()?.time;
            let anchor = truth.position_at(cutoff);
            predict_position_anchored(
                &store,
                &query,
                &matches,
                cutoff - t_last,
                anchor,
                t - t_last,
                &params,
                AlignMode::default(),
            )
        });
        let predicted = simulate_gating(&truth, 0, window, t0, t1, tick, policy);

        let ms = (latency * 1000.0) as u64;
        println!(
            "{ms:>4} ms   oracle           {:.2}   {:.3}      {:.3}   {:.3}",
            oracle.duty_cycle,
            oracle.precision,
            oracle.recall,
            oracle.f1()
        );
        println!(
            "          last observed    {:.2}   {:.3}      {:.3}   {:.3}",
            last.duty_cycle,
            last.precision,
            last.recall,
            last.f1()
        );
        println!(
            "          matched predict  {:.2}   {:.3}      {:.3}   {:.3}",
            predicted.duty_cycle,
            predicted.precision,
            predicted.recall,
            predicted.f1()
        );
    }
    println!("\n(precision < 1 irradiates healthy tissue; recall < 1 prolongs treatment —");
    println!(" prediction should recover most of the F1 the latency destroyed)");
}
