//! Quickstart: the whole pipeline in one screen.
//!
//! 1. Simulate a breathing signal (with cardiac + spike noise).
//! 2. Segment it online into a state-labelled PLR (paper Figure 4c).
//! 3. Store it, cut a query from the recent motion, match, and predict.
//!
//! Run with: `cargo run --release -p tsm-examples --bin quickstart`

use tsm_core::matcher::{Matcher, QuerySubseq};
use tsm_core::predict::{predict_position, AlignMode};
use tsm_core::query::generate_query;
use tsm_core::Params;
use tsm_db::StreamStore;
use tsm_examples::{add_patient, ascii_plot, state_histogram, state_strip};
use tsm_model::{segment_signal, PlrTrajectory, SegmenterConfig};
use tsm_signal::{BreathingParams, NoiseParams, SignalGenerator};

fn main() {
    // --- 1. Simulate --------------------------------------------------
    let params = BreathingParams::default();
    let mut generator = SignalGenerator::new(params, 2026).with_noise(NoiseParams::typical());
    let samples = generator.generate(120.0);
    println!(
        "simulated {:.0} s of breathing at {} Hz ({} samples)\n",
        120.0,
        params.sample_hz,
        samples.len()
    );
    let window = &samples[0..(20.0 * params.sample_hz) as usize];
    println!("first 20 s of the raw signal:");
    print!("{}", ascii_plot(window, 10, 72));

    // --- 2. Segment ---------------------------------------------------
    let seg_config = SegmenterConfig::default();
    let vertices = segment_signal(&samples, seg_config.clone());
    let hist = state_histogram(&vertices);
    let plr = PlrTrajectory::from_vertices(vertices).expect("valid PLR");
    println!(
        "\nPLR: {} vertices for {} raw samples ({:.0}x compression)",
        plr.num_vertices(),
        samples.len(),
        samples.len() as f64 / plr.num_vertices() as f64
    );
    println!(
        "segments by state: EX={} EOE={} IN={} IRR={}",
        hist[0], hist[1], hist[2], hist[3]
    );
    println!("\nstate labels under the same 20 s window (E=exhale, _=end-of-exhale, I=inhale, !=irregular):");
    print!("{}", state_strip(&plr, window, 72));

    // --- 3. Store, query, match, predict --------------------------------
    let store = StreamStore::new();
    let patient = add_patient(&store, &[("tumor_site", "LungLowerLobe")]);
    store.add_stream(patient, 0, plr, samples.len());

    // A new treatment session of the same patient is now running: fresh
    // signal, same breathing pattern. Keep the last 20 s aside so the
    // predictions below can be scored against what actually happened.
    let mut generator2 = SignalGenerator::new(params, 2027).with_noise(NoiseParams::typical());
    let live_samples = generator2.generate(80.0);
    let live_plr =
        PlrTrajectory::from_vertices(segment_signal(&live_samples, seg_config)).expect("valid PLR");
    let live = &live_plr.vertices()[..live_plr.num_vertices() - 8];

    let match_params = Params {
        min_matches: 1,
        ..Params::default()
    };
    let outcome = generate_query(live, &match_params).expect("stream long enough for a query");
    println!(
        "\ndynamic query: {} segments ({} cycles), stability strip {} (stable = {})",
        outcome.len,
        outcome.len / 3,
        if outcome.strip_stability.is_finite() {
            format!("{:.2}", outcome.strip_stability)
        } else {
            "inf".into()
        },
        outcome.stable
    );

    let query = QuerySubseq::new(outcome.vertices(live).to_vec()).with_origin(patient, 1); // pretend this is a new session
    let matcher = Matcher::new(store.clone(), match_params.clone());
    let matches = matcher.find_matches(&query);
    println!(
        "retrieved {} similar subsequences (delta = {})",
        matches.len(),
        match_params.delta
    );
    for m in matches.iter().take(5) {
        println!(
            "  {:?} start={} distance={:.3} ws={}",
            m.subseq.stream, m.subseq.start, m.distance, m.ws
        );
    }

    let t_last = query.vertices.last().expect("non-empty").time;
    println!("\npredictions from the current time t = {t_last:.2} s:");
    for dt_ms in [100u64, 200, 300] {
        let dt = dt_ms as f64 / 1000.0;
        match predict_position(
            &store,
            &query,
            &matches,
            dt,
            &match_params,
            AlignMode::FirstVertex,
        ) {
            Some(p) => {
                let truth = live_plr.position_at(t_last + dt);
                println!(
                    "  t+{dt_ms:3} ms: predicted {:7.3} mm, PLR truth {:7.3} mm, error {:.3} mm",
                    p[0],
                    truth[0],
                    (p[0] - truth[0]).abs()
                );
            }
            None => println!("  t+{dt_ms:3} ms: abstained (not enough matches)"),
        }
    }
}
