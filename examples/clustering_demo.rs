//! Clustering demo: offline analysis of a synthetic cohort.
//!
//! Generates a 16-patient cohort drawn from four latent breathing
//! phenotypes, computes Definition-4 patient distances, clusters with
//! k-medoids, and checks (a) whether the latent phenotypes are recovered
//! and (b) which recorded attributes correlate with the clusters —
//! the Section 5.3 applications.
//!
//! Run with: `cargo run --release -p tsm-examples --bin clustering_demo`

use tsm_core::cluster::{adjusted_rand_index, k_medoids, silhouette};
use tsm_core::correlate::discover_correlations;
use tsm_core::patient_distance::patient_distance_matrix;
use tsm_core::stream_distance::StreamDistanceConfig;
use tsm_core::Params;
use tsm_db::{PatientAttributes, StreamStore};
use tsm_examples::store_stream;
use tsm_model::SegmenterConfig;
use tsm_signal::{CohortConfig, SyntheticCohort};

fn main() {
    let cohort = SyntheticCohort::generate(CohortConfig {
        n_patients: 16,
        sessions_per_patient: 2,
        streams_per_session: 2,
        stream_duration_s: 100.0,
        dim: 1,
        seed: 0xC1,
    });
    println!(
        "cohort: {} patients, {} raw samples",
        cohort.patients.len(),
        cohort.total_samples()
    );

    // Ingest.
    let store = StreamStore::new();
    let seg_config = SegmenterConfig::default();
    for p in &cohort.patients {
        let mut attrs = PatientAttributes::new();
        attrs.insert("age".into(), p.profile.age.to_string());
        attrs.insert("sex".into(), format!("{:?}", p.profile.sex));
        attrs.insert("tumor_site".into(), format!("{:?}", p.profile.tumor_site));
        attrs.insert(
            "tumor_size_mm".into(),
            format!("{:.1}", p.profile.tumor_size_mm),
        );
        let pid = store.add_patient(attrs);
        for (six, session) in p.sessions.iter().enumerate() {
            for raw in &session.streams {
                store_stream(&store, pid, six as u32, raw, &seg_config);
            }
        }
    }

    // Patient distance matrix (Definition 4 over Definition 3).
    println!("computing patient distances ...");
    let params = Params::default();
    let sdc = StreamDistanceConfig {
        len_segments: 9,
        stride: 3,
    };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let dm = patient_distance_matrix(&store, &params, &sdc, threads);

    // Cluster and evaluate against the latent phenotypes.
    let labels = k_medoids(&dm, 4, 100);
    let truth = cohort.phenotype_labels();
    println!("\npatient  cluster  latent phenotype");
    for (i, p) in cohort.patients.iter().enumerate() {
        println!("  P{i:<5} {:<8} {:?}", labels[i], p.profile.phenotype);
    }
    println!(
        "\nadjusted Rand index vs latent phenotypes: {:.3}",
        adjusted_rand_index(&labels, &truth)
    );
    println!("mean silhouette: {:.3}", silhouette(&dm, &labels));

    // Correlation discovery.
    let attrs: Vec<_> = store
        .patients()
        .iter()
        .map(|&p| store.patient_attributes(p).expect("patient exists"))
        .collect();
    println!("\nattribute associations with the clustering (Cramer's V):");
    for a in discover_correlations(&attrs, &labels) {
        println!("  {:<15} {:.3}", a.attribute, a.cramers_v);
    }
    println!("\n(tumor_site should rank near the top: the simulator correlates it with phenotype;");
    println!(" sex is uncorrelated by construction and should rank near the bottom)");
}
