//! No-op derive macros for the offline `serde` stand-in.
//!
//! The sibling `serde` crate blanket-implements its marker traits for
//! every type, so these derives only need to *exist* (and accept the
//! `#[serde(...)]` helper attribute); they expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
