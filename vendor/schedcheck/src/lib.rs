//! Deterministic schedule checker for small concurrent protocols.
//!
//! Offline stand-in for [`loom`](https://crates.io/crates/loom), shaped
//! for this workspace's needs: a model is a handful of threads, each a
//! straight-line (optionally branching) program over shared atomic
//! locations and thread-local registers. [`Model::check`] exhaustively
//! enumerates every interleaving of the threads' atomic operations *and*
//! every value each relaxed load is allowed to observe under a
//! C11-style release/acquire memory model, evaluating embedded
//! assertions in each execution.
//!
//! Unlike loom, no real threads run: the checker is a depth-first search
//! over explicit program states, so results are bit-for-bit
//! deterministic and exhaustive for the modelled schedules.
//!
//! # Memory model
//!
//! Each shared location carries its full *modification order* — the
//! sequence of stores executed against it, oldest first. Each thread
//! carries a *view*: for every location, the index of the latest store
//! in that location's modification order which the thread is aware of
//! (via program order or acquired synchronisation).
//!
//! * A **store** appends to the modification order. A `Release` store
//!   additionally attaches a snapshot of the storing thread's view.
//! * A **load** may observe *any* store at or after the loading
//!   thread's view of that location (coherence: it can never read a
//!   store it already knows to be overwritten). An `Acquire` load that
//!   observes a `Release` store joins the attached view into its own —
//!   this is the happens-before edge.
//! * A **read-modify-write** (`fetch_add`) always observes the *latest*
//!   store (C11 atomicity), and continues a release sequence: if the
//!   store it replaces carried a release view, the new store carries it
//!   too (joined with the RMW thread's own view when the RMW is itself
//!   `Release`).
//!
//! This is a sound under-approximation of C11 for the patterns the
//! workspace uses (message passing, version counters, counter flushes):
//! every interleaving explored corresponds to a real execution, and the
//! classic stale-read bugs (publish with `Relaxed`, consume without
//! `Acquire`) are all representable and caught.
//!
//! # Example: the message-passing litmus test
//!
//! ```
//! use schedcheck::{Model, Ordering, Thread};
//!
//! let mut m = Model::new();
//! let data = m.loc("DATA");
//! let flag = m.loc("FLAG");
//!
//! let mut writer = Thread::new("writer");
//! writer.store(data, Ordering::Relaxed, |_| 1);
//! writer.store(flag, Ordering::Release, |_| 1);
//! m.add(writer);
//!
//! let mut reader = Thread::new("reader");
//! reader.load(flag, Ordering::Acquire, 0);
//! reader.load(data, Ordering::Relaxed, 1);
//! reader.assert_that("flag=1 implies data=1", |r| r[0] == 0 || r[1] == 1);
//! m.add(reader);
//!
//! let report = m.check();
//! assert!(report.violation.is_none());
//! assert!(report.executions > 1);
//! ```
//!
//! Demote the `Release`/`Acquire` pair to `Relaxed` and the same model
//! reports a violation with the offending schedule.

/// Memory orderings understood by the checker.
///
/// `SeqCst` is intentionally absent: the workspace's protocols are
/// specified in terms of release/acquire pairs, and modelling them at
/// that strength keeps the checker honest about what the code relies on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ordering {
    /// No synchronisation; only coherence is guaranteed.
    Relaxed,
    /// Load half of a synchronises-with edge.
    Acquire,
    /// Store half of a synchronises-with edge.
    Release,
    /// Both halves, for read-modify-write operations.
    AcqRel,
}

impl Ordering {
    fn acquires(self) -> bool {
        matches!(self, Ordering::Acquire | Ordering::AcqRel)
    }
    fn releases(self) -> bool {
        matches!(self, Ordering::Release | Ordering::AcqRel)
    }
}

/// Number of thread-local registers available to each thread.
pub const REGS: usize = 8;

/// Values stored in locations and registers.
pub type Val = u64;

/// Register file of one modelled thread.
pub type Regs = [Val; REGS];

/// A shared atomic location, created by [`Model::loc`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Loc(usize);

type Expr = Box<dyn Fn(&Regs) -> Val>;
type Pred = Box<dyn Fn(&Regs) -> bool>;

enum Step {
    Load {
        loc: Loc,
        ord: Ordering,
        dst: usize,
    },
    Store {
        loc: Loc,
        ord: Ordering,
        val: Expr,
    },
    FetchAdd {
        loc: Loc,
        ord: Ordering,
        add: Expr,
        dst: usize,
    },
    Local(Box<dyn Fn(&mut Regs)>),
    Assert {
        name: String,
        pred: Pred,
    },
    IfElse {
        pred: Pred,
        then_branch: Vec<Step>,
        else_branch: Vec<Step>,
    },
}

/// A straight-line (optionally branching) program over shared locations
/// and [`REGS`] thread-local registers, all initially zero.
pub struct Thread {
    name: String,
    steps: Vec<Step>,
}

impl Thread {
    /// Creates an empty thread program named `name` (used in traces).
    pub fn new(name: &str) -> Self {
        Thread {
            name: name.to_string(),
            steps: Vec::new(),
        }
    }

    /// Atomic load of `loc` into register `dst`.
    pub fn load(&mut self, loc: Loc, ord: Ordering, dst: usize) -> &mut Self {
        self.steps.push(Step::Load { loc, ord, dst });
        self
    }

    /// Atomic store to `loc` of the value computed from the registers.
    pub fn store(
        &mut self,
        loc: Loc,
        ord: Ordering,
        val: impl Fn(&Regs) -> Val + 'static,
    ) -> &mut Self {
        self.steps.push(Step::Store {
            loc,
            ord,
            val: Box::new(val),
        });
        self
    }

    /// Atomic `fetch_add`; the *previous* value lands in register `dst`.
    pub fn fetch_add(
        &mut self,
        loc: Loc,
        ord: Ordering,
        dst: usize,
        add: impl Fn(&Regs) -> Val + 'static,
    ) -> &mut Self {
        self.steps.push(Step::FetchAdd {
            loc,
            ord,
            add: Box::new(add),
            dst,
        });
        self
    }

    /// Arbitrary register-only computation; never a scheduling point.
    pub fn local(&mut self, f: impl Fn(&mut Regs) + 'static) -> &mut Self {
        self.steps.push(Step::Local(Box::new(f)));
        self
    }

    /// Asserts `pred` over the registers; a `false` result in any
    /// execution is reported as a [`Violation`].
    pub fn assert_that(&mut self, name: &str, pred: impl Fn(&Regs) -> bool + 'static) -> &mut Self {
        self.steps.push(Step::Assert {
            name: name.to_string(),
            pred: Box::new(pred),
        });
        self
    }

    /// Branches on a register predicate. Build the two arms with the
    /// provided closures; either may be left empty.
    pub fn if_else(
        &mut self,
        pred: impl Fn(&Regs) -> bool + 'static,
        then_build: impl FnOnce(&mut Thread),
        else_build: impl FnOnce(&mut Thread),
    ) -> &mut Self {
        let mut then_t = Thread::new("");
        then_build(&mut then_t);
        let mut else_t = Thread::new("");
        else_build(&mut else_t);
        self.steps.push(Step::IfElse {
            pred: Box::new(pred),
            then_branch: then_t.steps,
            else_branch: else_t.steps,
        });
        self
    }
}

/// One store in a location's modification order.
#[derive(Clone)]
struct StoreEvt {
    value: Val,
    /// View attached by a releasing store (or inherited along a release
    /// sequence); acquired by acquire loads that observe this store.
    rel: Option<Vec<usize>>,
}

#[derive(Clone)]
struct ThreadState {
    regs: Regs,
    view: Vec<usize>,
    /// Stack of executing step slices as (base pointer, len, pc):
    /// the thread's top-level program plus any entered branch arms.
    /// Raw pointers keep the state cheaply `Clone`; they are stable
    /// because `Model::check` borrows the step storage immutably for
    /// its whole run.
    frames: Vec<(*const Step, usize, usize)>,
}

/// A failed assertion, with the interleaving that produced it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Name of the failed assertion.
    pub assertion: String,
    /// Human-readable schedule: one line per atomic operation, in
    /// execution order.
    pub trace: Vec<String>,
}

/// Result of [`Model::check`].
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Number of complete executions explored.
    pub executions: u64,
    /// First assertion failure found, if any.
    pub violation: Option<Violation>,
    /// True if the search stopped early at [`Model::max_executions`];
    /// a passing report with `capped == true` is *not* exhaustive.
    pub capped: bool,
}

/// A checkable model: shared locations plus thread programs.
pub struct Model {
    loc_names: Vec<String>,
    threads: Vec<Thread>,
    max_executions: u64,
}

impl Default for Model {
    fn default() -> Self {
        Self::new()
    }
}

impl Model {
    /// Creates an empty model.
    pub fn new() -> Self {
        Model {
            loc_names: Vec::new(),
            threads: Vec::new(),
            max_executions: 5_000_000,
        }
    }

    /// Declares a shared atomic location, initial value `0`.
    pub fn loc(&mut self, name: &str) -> Loc {
        self.loc_names.push(name.to_string());
        Loc(self.loc_names.len() - 1)
    }

    /// Adds a thread program to the model.
    pub fn add(&mut self, thread: Thread) {
        self.threads.push(thread);
    }

    /// Caps the number of executions explored (default five million).
    pub fn max_executions(&mut self, cap: u64) -> &mut Self {
        self.max_executions = cap;
        self
    }

    /// Exhaustively explores every interleaving and every permitted
    /// relaxed-read, returning the first violation found (if any).
    pub fn check(&self) -> Report {
        let nlocs = self.loc_names.len();
        let mut state = State {
            threads: self
                .threads
                .iter()
                .map(|t| ThreadState {
                    regs: [0; REGS],
                    view: vec![0; nlocs],
                    frames: vec![(t.steps.as_ptr(), t.steps.len(), 0)],
                })
                .collect(),
            mem: vec![
                vec![StoreEvt {
                    value: 0,
                    rel: None
                }];
                nlocs
            ],
        };
        let mut report = Report::default();
        let mut trace = Vec::new();
        self.explore(&mut state, &mut trace, &mut report);
        report
    }

    fn explore(&self, state: &mut State, trace: &mut Vec<String>, report: &mut Report) {
        if report.violation.is_some() || report.capped {
            return;
        }
        // Run every thread's local/branch/assert steps to quiescence:
        // they touch only registers, so they commute with every other
        // thread and are not scheduling points.
        if let Err(v) = self.settle(state, trace) {
            report.violation = Some(v);
            return;
        }
        let runnable: Vec<usize> = (0..state.threads.len())
            .filter(|&t| next_step(&state.threads[t]).is_some())
            .collect();
        if runnable.is_empty() {
            report.executions += 1;
            if report.executions >= self.max_executions {
                report.capped = true;
            }
            return;
        }
        for t in runnable {
            // SAFETY of the raw pointer scheme: `self.threads` is
            // borrowed immutably for the whole `check` call, so the
            // step storage never moves.
            let step = next_step(&state.threads[t]).expect("runnable thread has a next step");
            match step {
                Step::Load { loc, ord, dst } => {
                    let lo = state.threads[t].view[loc.0];
                    let hi = state.mem[loc.0].len();
                    for i in lo..hi {
                        let mut s = state.clone();
                        let evt = s.mem[loc.0][i].clone();
                        let ts = &mut s.threads[t];
                        ts.regs[*dst] = evt.value;
                        ts.view[loc.0] = i;
                        if ord.acquires() {
                            if let Some(rel) = &evt.rel {
                                join(&mut ts.view, rel);
                            }
                        }
                        advance(ts);
                        trace.push(format!(
                            "{}: r{} = {}.load({:?}) -> {} [store #{i}]",
                            self.threads[t].name, dst, self.loc_names[loc.0], ord, evt.value
                        ));
                        self.explore(&mut s, trace, report);
                        trace.pop();
                        if report.violation.is_some() || report.capped {
                            return;
                        }
                    }
                }
                Step::Store { loc, ord, val } => {
                    let mut s = state.clone();
                    let v = val(&s.threads[t].regs);
                    let idx = s.mem[loc.0].len();
                    let ts = &mut s.threads[t];
                    ts.view[loc.0] = idx;
                    let rel = if ord.releases() {
                        Some(ts.view.clone())
                    } else {
                        None
                    };
                    s.mem[loc.0].push(StoreEvt { value: v, rel });
                    advance(&mut s.threads[t]);
                    trace.push(format!(
                        "{}: {}.store({v}, {:?})",
                        self.threads[t].name, self.loc_names[loc.0], ord
                    ));
                    self.explore(&mut s, trace, report);
                    trace.pop();
                    if report.violation.is_some() || report.capped {
                        return;
                    }
                }
                Step::FetchAdd { loc, ord, add, dst } => {
                    let mut s = state.clone();
                    let idx = s.mem[loc.0].len() - 1;
                    let evt = s.mem[loc.0][idx].clone();
                    let ts = &mut s.threads[t];
                    ts.regs[*dst] = evt.value;
                    ts.view[loc.0] = idx;
                    if ord.acquires() {
                        if let Some(rel) = &evt.rel {
                            join(&mut ts.view, rel);
                        }
                    }
                    let new_val = evt.value.wrapping_add(add(&ts.regs));
                    let new_idx = idx + 1;
                    ts.view[loc.0] = new_idx;
                    // Release sequence: an RMW inherits the release view
                    // of the store it replaces, and contributes its own
                    // view when it is itself releasing.
                    let rel = match (&evt.rel, ord.releases()) {
                        (Some(prev), true) => {
                            let mut merged = ts.view.clone();
                            join(&mut merged, prev);
                            Some(merged)
                        }
                        (Some(prev), false) => Some(prev.clone()),
                        (None, true) => Some(ts.view.clone()),
                        (None, false) => None,
                    };
                    s.mem[loc.0].push(StoreEvt {
                        value: new_val,
                        rel,
                    });
                    advance(&mut s.threads[t]);
                    trace.push(format!(
                        "{}: r{} = {}.fetch_add(.., {:?}) -> {} (now {})",
                        self.threads[t].name, dst, self.loc_names[loc.0], ord, evt.value, new_val
                    ));
                    self.explore(&mut s, trace, report);
                    trace.pop();
                    if report.violation.is_some() || report.capped {
                        return;
                    }
                }
                // `settle` consumed these already.
                Step::Local(_) | Step::Assert { .. } | Step::IfElse { .. } => {
                    unreachable!("non-atomic step survived settle")
                }
            }
        }
    }

    /// Executes every pending non-atomic step in every thread.
    fn settle(&self, state: &mut State, trace: &[String]) -> Result<(), Violation> {
        loop {
            let mut progressed = false;
            for t in 0..state.threads.len() {
                while let Some(step) = next_step(&state.threads[t]) {
                    match step {
                        Step::Local(f) => {
                            f(&mut state.threads[t].regs);
                            advance(&mut state.threads[t]);
                        }
                        Step::Assert { name, pred } => {
                            if !pred(&state.threads[t].regs) {
                                return Err(Violation {
                                    assertion: format!("{} [{}]", name, self.threads[t].name),
                                    trace: trace.to_vec(),
                                });
                            }
                            advance(&mut state.threads[t]);
                        }
                        Step::IfElse {
                            pred,
                            then_branch,
                            else_branch,
                        } => {
                            let arm = if pred(&state.threads[t].regs) {
                                then_branch
                            } else {
                                else_branch
                            };
                            let (ptr, len) = (arm.as_ptr(), arm.len());
                            advance(&mut state.threads[t]);
                            if len > 0 {
                                state.threads[t].frames.push((ptr, len, 0));
                            }
                        }
                        _ => break,
                    }
                    progressed = true;
                }
            }
            if !progressed {
                return Ok(());
            }
        }
    }
}

#[derive(Clone)]
struct State {
    threads: Vec<ThreadState>,
    mem: Vec<Vec<StoreEvt>>,
}

/// Returns the step the thread would execute next, popping exhausted
/// frames. `None` means the thread has finished.
fn next_step(ts: &ThreadState) -> Option<&'static Step> {
    for &(ptr, len, pc) in ts.frames.iter().rev() {
        if pc < len {
            // SAFETY: `ptr` points into the `Model`'s step storage,
            // immutably borrowed for the duration of `check`; the
            // 'static lifetime is a private fiction bounded by that
            // borrow (this function is not exported).
            return Some(unsafe { &*ptr.add(pc) });
        }
    }
    None
}

/// Advances the thread's program counter past the step just executed.
fn advance(ts: &mut ThreadState) {
    while let Some(&(_, len, pc)) = ts.frames.last() {
        if pc < len {
            let last = ts.frames.last_mut().expect("frame just observed");
            last.2 += 1;
            return;
        }
        ts.frames.pop();
    }
}

fn join(view: &mut [usize], other: &[usize]) {
    for (v, o) in view.iter_mut().zip(other) {
        if *o > *v {
            *v = *o;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Message passing with release/acquire: no stale read possible.
    #[test]
    fn mp_release_acquire_passes() {
        let mut m = Model::new();
        let data = m.loc("DATA");
        let flag = m.loc("FLAG");
        let mut w = Thread::new("writer");
        w.store(data, Ordering::Relaxed, |_| 1);
        w.store(flag, Ordering::Release, |_| 1);
        m.add(w);
        let mut r = Thread::new("reader");
        r.load(flag, Ordering::Acquire, 0);
        r.load(data, Ordering::Relaxed, 1);
        r.assert_that("flag=1 implies data=1", |r| r[0] == 0 || r[1] == 1);
        m.add(r);
        let rep = m.check();
        assert!(rep.violation.is_none(), "{:?}", rep.violation);
        assert!(!rep.capped);
        assert!(rep.executions >= 3);
    }

    /// The same test with a relaxed publish is caught.
    #[test]
    fn mp_relaxed_fails() {
        let mut m = Model::new();
        let data = m.loc("DATA");
        let flag = m.loc("FLAG");
        let mut w = Thread::new("writer");
        w.store(data, Ordering::Relaxed, |_| 1);
        w.store(flag, Ordering::Relaxed, |_| 1);
        m.add(w);
        let mut r = Thread::new("reader");
        r.load(flag, Ordering::Acquire, 0);
        r.load(data, Ordering::Relaxed, 1);
        r.assert_that("flag=1 implies data=1", |r| r[0] == 0 || r[1] == 1);
        m.add(r);
        let rep = m.check();
        let v = rep.violation.expect("relaxed MP must fail");
        assert!(v.assertion.contains("flag=1 implies data=1"));
        assert!(!v.trace.is_empty());
    }

    /// fetch_add observes the latest store and sums are exact.
    #[test]
    fn fetch_add_is_atomic() {
        let mut m = Model::new();
        let ctr = m.loc("CTR");
        for name in ["a", "b", "c"] {
            let mut t = Thread::new(name);
            t.fetch_add(ctr, Ordering::Relaxed, 0, |_| 1);
            m.add(t);
        }
        let mut obs = Thread::new("obs");
        obs.fetch_add(ctr, Ordering::Relaxed, 0, |_| 0);
        // After its own RMW the observer has seen the latest value,
        // which can be anywhere from 0 to 3 depending on schedule.
        obs.assert_that("count within bounds", |r| r[0] <= 3);
        m.add(obs);
        let rep = m.check();
        assert!(rep.violation.is_none(), "{:?}", rep.violation);
    }

    /// Release sequence: a relaxed RMW between the release store and the
    /// acquire load still transfers the release view.
    #[test]
    fn release_sequence_through_rmw() {
        let mut m = Model::new();
        let data = m.loc("DATA");
        let flag = m.loc("FLAG");
        let mut w = Thread::new("writer");
        w.store(data, Ordering::Relaxed, |_| 7);
        w.store(flag, Ordering::Release, |_| 1);
        m.add(w);
        let mut bump = Thread::new("bump");
        bump.fetch_add(flag, Ordering::Relaxed, 0, |_| 1);
        m.add(bump);
        // flag reaches 2 only when the RMW lands on top of the release
        // store, so reading 2 must transfer the writer's view; reading
        // 1 may be the pre-release RMW and promises nothing.
        let mut r = Thread::new("reader");
        r.load(flag, Ordering::Acquire, 0);
        r.load(data, Ordering::Relaxed, 1);
        r.assert_that("flag=2 implies data=7", |r| r[0] != 2 || r[1] == 7);
        m.add(r);
        let rep = m.check();
        assert!(rep.violation.is_none(), "{:?}", rep.violation);
    }

    /// Branching: only the taken arm executes.
    #[test]
    fn if_else_branches() {
        let mut m = Model::new();
        let x = m.loc("X");
        let mut t = Thread::new("t");
        t.load(x, Ordering::Relaxed, 0);
        t.if_else(
            |r| r[0] == 0,
            |then| {
                then.local(|r| r[1] = 10);
            },
            |els| {
                els.local(|r| r[1] = 20);
            },
        );
        t.assert_that("took then-arm", |r| r[1] == 10);
        m.add(t);
        let rep = m.check();
        assert!(rep.violation.is_none(), "{:?}", rep.violation);
        assert_eq!(rep.executions, 1);
    }

    /// The execution cap is honoured and reported.
    #[test]
    fn cap_is_reported() {
        let mut m = Model::new();
        let x = m.loc("X");
        for name in ["a", "b", "c"] {
            let mut t = Thread::new(name);
            t.store(x, Ordering::Relaxed, |_| 1);
            t.store(x, Ordering::Relaxed, |_| 2);
            m.add(t);
        }
        m.max_executions(2);
        let rep = m.check();
        assert!(rep.capped);
        assert!(rep.executions <= 2);
    }
}
