//! Offline stand-in for the parts of `rand` this workspace uses.
//!
//! Deterministic, seedable, statistically solid for simulation purposes:
//! [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64, the
//! textbook construction recommended by the xoshiro authors. The trait
//! split mirrors rand's: [`Rng`] is the minimal generator interface and
//! [`RngExt`] the blanket-implemented convenience layer (`random`,
//! `random_range`).
//!
//! Not a cryptographic RNG — this workspace only simulates cohorts and
//! drives property tests.

/// Minimal generator interface: a source of uniform `u64`s.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from a generator's raw bits (the standard
/// distribution of each type).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u16 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with the full 53 bits of mantissa precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable uniformly (argument of [`RngExt::random_range`]).
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift rejection-free mapping is fine here: the
                // modulo bias over a 64-bit draw is negligible for the
                // simulation spans this workspace uses.
                let draw = rng.next_u64() as u128 % span;
                (self.start as i128 + draw as i128) as $t
            }
        }

        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let draw = rng.next_u64() as u128 % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience layer over any [`Rng`], mirroring rand's extension trait.
pub trait RngExt: Rng {
    /// Draws a value of `T` from its standard distribution (`[0, 1)` for
    /// floats, full-width uniform for integers).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded through
    /// SplitMix64 (the construction the xoshiro authors recommend).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_are_uniformish() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_hit_their_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.random_range(-8.0..8.0);
            assert!((-8.0..8.0).contains(&x));
            let k = rng.random_range(3u32..6);
            assert!((3..6).contains(&k));
            let j = rng.random_range(0usize..=2);
            assert!(j <= 2);
        }
        // Every value of a tiny integer range appears.
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.random_range(0usize..3)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
