//! Offline stand-in for the parts of `crossbeam` this workspace uses:
//! scoped threads. Built directly on `std::thread::scope` (stable since
//! Rust 1.63), which provides the same borrow-the-stack guarantee.
//!
//! Behavioral difference from real crossbeam: if a spawned thread
//! panics and its handle is never joined, `std::thread::scope` panics
//! when the scope closes instead of returning `Err`. Every call site in
//! this workspace joins all handles, so the difference is unobservable
//! here.

/// Scoped threads (`crossbeam::thread`).
pub mod thread {
    use std::thread as std_thread;

    /// The result of joining a thread: `Err` holds the panic payload.
    pub type Result<T> = std_thread::Result<T>;

    /// A scope for spawning threads that borrow from the caller's stack.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    /// A handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result (`Err`
        /// carries the panic payload if it panicked).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }

        /// The underlying thread handle (e.g. for `unpark`), matching
        /// crossbeam's accessor.
        pub fn thread(&self) -> &std_thread::Thread {
            self.inner.thread()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the
        /// scope itself (for nested spawns), matching crossbeam's
        /// signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope whose threads may borrow non-`'static` data.
    /// Always returns `Ok` (see the module docs for the panic-handling
    /// difference from crossbeam).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1, 2, 3, 4];
        let total = crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<i32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn panics_surface_through_join() {
        let caught = crate::thread::scope(|scope| {
            let h = scope.spawn(|_| -> i32 { panic!("boom") });
            h.join()
        })
        .unwrap();
        assert!(caught.is_err());
    }
}
