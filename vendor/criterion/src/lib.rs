//! Offline stand-in for the parts of `criterion` this workspace uses.
//!
//! Methodology: each benchmark is calibrated with one timed run, then
//! executed for `sample_size` samples, each long enough to dampen timer
//! granularity (~5 ms wall-clock per sample). The reported figure is the
//! **median** ns/iteration across samples — robust against scheduler
//! noise, which matters more in a container than the confidence intervals
//! real criterion computes.
//!
//! Results print to stdout. When `CRITERION_SNAPSHOT` names a file, each
//! result is also appended to it as one JSON line
//! (`{"id":"group/bench","median_ns":1234.5}`) — the hook
//! `scripts/bench_snapshot.sh` uses to track perf across commits.

use std::fmt::Display;
use std::fs::OpenOptions;
use std::hint::black_box;
use std::io::Write;
use std::time::Instant;

/// Wall-clock time one sample should roughly cover.
const TARGET_SAMPLE_NANOS: f64 = 5.0e6;

/// The benchmark context: holds defaults and the snapshot sink.
pub struct Criterion {
    default_sample_size: usize,
    snapshot_path: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            snapshot_path: std::env::var("CRITERION_SNAPSHOT").ok(),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) {
        let sample_size = self.default_sample_size;
        self.run_one(id.to_string(), sample_size, f);
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, sample_size: usize, mut f: F) {
        let mut bencher = Bencher {
            sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        let median = bencher.median_ns();
        println!("{id:<60} median {median:>14.1} ns/iter ({sample_size} samples)");
        if let Some(path) = &self.snapshot_path {
            let line = format!("{{\"id\":\"{id}\",\"median_ns\":{median:.1}}}\n");
            let written = OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .and_then(|mut fh| fh.write_all(line.as_bytes()));
            if let Err(e) = written {
                eprintln!("criterion: cannot append snapshot to {path}: {e}");
            }
        }
    }
}

/// Units processed per iteration; recorded for display parity with real
/// criterion but not folded into the reported ns/iter.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A named group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Records the per-iteration throughput (display-only in this
    /// stand-in).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        let full = format!("{}/{}", self.name, id);
        let n = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion.run_one(full, n, f);
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (kept for API parity; nothing to flush here).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus a parameter label.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measures `f`: one calibration run sizes the per-sample iteration
    /// count, then `sample_size` samples are timed.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let calibration = Instant::now();
        black_box(f());
        let once_ns = (calibration.elapsed().as_nanos() as f64).max(1.0);
        let iters = (TARGET_SAMPLE_NANOS / once_ns).clamp(1.0, 1.0e9) as u64;
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples_ns.push(elapsed / iters as f64);
        }
    }

    fn median_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        let mut xs = self.samples_ns.clone();
        xs.sort_by(f64::total_cmp);
        let mid = xs.len() / 2;
        if xs.len() % 2 == 1 {
            xs[mid]
        } else {
            0.5 * (xs[mid - 1] + xs[mid])
        }
    }
}

/// Bundles benchmark functions into one group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// The benchmark binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags (`--bench`); this stand-in
            // runs everything unconditionally and ignores them.
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn medians_are_positive_and_stable() {
        let mut c = Criterion {
            default_sample_size: 5,
            snapshot_path: None,
        };
        let mut group = c.benchmark_group("unit");
        group.sample_size(5);
        group.bench_function("spin", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("spin", "200"), &200u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("scan", "24p").to_string(), "scan/24p");
    }
}
