//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the non-poisoning `lock()` / `read()` / `write()` API the
//! workspace uses. Poisoned std locks are recovered transparently (the
//! data is still consistent for this workspace's usage: a panicking
//! writer never leaves a store half-mutated across an await point —
//! mutations are plain memory writes completed before any panic site).

use std::sync::{self, TryLockError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's non-poisoning interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's non-poisoning interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
