//! Offline stand-in for the `serde` crate.
//!
//! This workspace builds in a hermetic container with no crates.io
//! access, and its persistence layer is a hand-rolled binary codec
//! (`tsm-db::persist`) — serde is only ever named in `#[derive(...)]`
//! attributes. This crate supplies just enough surface for those derives
//! to compile: the two marker traits and (behind the `derive` feature)
//! no-op derive macros.
//!
//! If the workspace ever needs real serialization, swap this for the
//! actual crates.io `serde` by editing `[workspace.dependencies]` — no
//! source change is required.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
