//! Offline stand-in for the parts of `proptest` this workspace uses.
//!
//! Deterministic case generation without shrinking: every `proptest!` test
//! derives a seed from its own module path and name, draws `cases` inputs
//! from its strategies, and runs the body on each. Failures panic with the
//! generated inputs and the per-case seed so a run is reproducible by
//! construction (same binary, same inputs, every time). Shrinking is not
//! implemented — the printed inputs are the un-shrunk failing case.
//!
//! Implemented surface (the subset the workspace's property tests use):
//!
//! * `proptest! { #![proptest_config(...)] #[test] fn f(x in strat, ...) {} }`
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`
//! * numeric range strategies (`0.0f64..1.0`, `0usize..4`, `2usize..=4`),
//!   tuples of strategies up to arity 12, `Just`,
//!   `proptest::collection::vec`, `proptest::bool::ANY`,
//!   `proptest::sample::Index`, `any::<T>()` for small ints and `Index`,
//!   string strategies from simple regex patterns (`"[a-z_]{1,12}"`),
//! * combinators `prop_map`, `prop_flat_map`, `prop_filter`.

use std::fmt;

pub use crate::arbitrary::{any, Arbitrary};
pub use crate::strategy::{Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError};

/// The strategy abstraction: a recipe for drawing values from an RNG.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::RngExt;
    use std::fmt;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of one type. `generate` returns `None`
    /// when the draw was rejected (a `prop_filter` predicate failed); the
    /// runner retries the whole case with the next seed.
    pub trait Strategy {
        /// The type of generated values.
        type Value: fmt::Debug;

        /// Draws one value, or `None` on rejection.
        fn generate(&self, rng: &mut StdRng) -> Option<Self::Value>;

        /// Transforms generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: fmt::Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy it selects.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Rejects generated values failing the predicate.
        fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                _reason: reason.into(),
                f,
            }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + fmt::Debug>(pub T);

    impl<T: Clone + fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: fmt::Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> Option<O> {
            self.inner.generate(rng).map(&self.f)
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> Option<S2::Value> {
            let first = self.inner.generate(rng)?;
            (self.f)(first).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        _reason: String,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            self.inner.generate(rng).filter(|v| (self.f)(v))
        }
    }

    /// See [`Strategy::boxed`].
    #[derive(Clone)]
    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn DynStrategy<T>>,
    }

    trait DynStrategy<T> {
        fn dyn_generate(&self, rng: &mut StdRng) -> Option<T>;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            self.generate(rng)
        }
    }

    impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> Option<T> {
            self.inner.dyn_generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> Option<$t> {
                    Some(rng.random_range(self.clone()))
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> Option<$t> {
                    Some(rng.random_range(self.clone()))
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> Option<f64> {
            Some(rng.random_range(self.clone()))
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Option<Self::Value> {
                    let ($($name,)+) = self;
                    Some(($($name.generate(rng)?,)+))
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
    tuple_strategy!(A, B, C, D, E, F, G, H, I);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

    /// String literals are mini-regex strategies: sequences of literal
    /// characters and character classes (`[a-z0-9_]`, ranges allowed) with
    /// quantifiers `{n}`, `{m,n}`, `*`, `+`, `?`. This covers the patterns
    /// the workspace's tests use; anything fancier panics loudly.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> Option<String> {
            Some(generate_from_pattern(self, rng))
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut StdRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // Atom: a character class or a single (possibly escaped) char.
            let choices: Vec<char> = if chars[i] == '[' {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let mut c = chars[i];
                    if c == '\\' {
                        i += 1;
                        c = chars[i];
                    }
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let hi = chars[i + 2];
                        assert!(c <= hi, "bad range in pattern {pattern:?}");
                        set.extend(c..=hi);
                        i += 3;
                    } else {
                        set.push(c);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in {pattern:?}");
                i += 1; // closing ']'
                set
            } else {
                let mut c = chars[i];
                if c == '\\' {
                    i += 1;
                    c = chars[i];
                }
                i += 1;
                vec![c]
            };
            // Quantifier.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated quantifier")
                    + i;
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("bad quantifier"),
                        n.trim().parse::<usize>().expect("bad quantifier"),
                    ),
                    None => {
                        let n = spec.trim().parse::<usize>().expect("bad quantifier");
                        (n, n)
                    }
                }
            } else if i < chars.len() && (chars[i] == '*' || chars[i] == '+' || chars[i] == '?') {
                let q = chars[i];
                i += 1;
                match q {
                    '*' => (0, 8),
                    '+' => (1, 8),
                    _ => (0, 1),
                }
            } else {
                (1, 1)
            };
            let n = rng.random_range(lo..=hi);
            for _ in 0..n {
                out.push(choices[rng.random_range(0..choices.len())]);
            }
        }
        out
    }

    /// Full-range draws for types with an `Arbitrary` impl.
    pub struct AnyStrategy<T> {
        pub(crate) _marker: PhantomData<T>,
    }
}

/// `any::<T>()` — the canonical strategy of a type.
pub mod arbitrary {
    use super::strategy::{AnyStrategy, Strategy};
    use rand::rngs::StdRng;
    use rand::{Rng, RngExt};
    use std::fmt;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized + fmt::Debug {
        /// Draws one full-range value.
        fn arbitrary_value(rng: &mut StdRng) -> Self;
    }

    /// The canonical strategy of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: PhantomData,
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> Option<T> {
            Some(T::arbitrary_value(rng))
        }
    }

    macro_rules! arbitrary_via_random {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut StdRng) -> $t {
                    rng.random()
                }
            }
        )*};
    }

    arbitrary_via_random!(u8, u16, u32, u64, usize, bool);

    impl Arbitrary for super::sample::Index {
        fn arbitrary_value(rng: &mut StdRng) -> Self {
            super::sample::Index::from_raw(rng.next_u64())
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// Element counts for [`vec()`]: an exact size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Vectors of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<Vec<S::Value>> {
            let n = rng.random_range(self.size.lo..=self.size.hi_inclusive);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Uniform coin flip.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The strategy drawing `true`/`false` uniformly.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> Option<bool> {
            Some(rng.random())
        }
    }
}

/// Sampling helpers.
pub mod sample {
    /// An abstract index into a collection of yet-unknown size: the test
    /// draws one up front and projects it onto a concrete `len` later.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        pub(crate) fn from_raw(raw: u64) -> Self {
            Index(raw)
        }

        /// Projects the abstract index onto `0..len`.
        ///
        /// # Panics
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

/// Test-runner plumbing used by the `proptest!` expansion.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// How a single case ended short of success.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case did not apply (`prop_assume!` failed); try another.
        Reject(String),
        /// An assertion failed; the test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// A failing case.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected (non-applicable) case.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Drives one `proptest!` test: seeds per-case RNGs, counts accepted
    /// and rejected cases, and panics with full context on failure.
    pub struct Runner {
        name: &'static str,
        cases: u32,
        accepted: u32,
        rejected: u32,
        max_rejected: u32,
        case_index: u64,
        base_seed: u64,
        current_seed: u64,
    }

    impl Runner {
        /// A runner for the named test.
        pub fn new(config: ProptestConfig, name: &'static str) -> Self {
            // FNV-1a over the test's full path: deterministic per test,
            // different across tests.
            let mut seed = 0xcbf29ce484222325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x100000001b3);
            }
            Runner {
                name,
                cases: config.cases,
                accepted: 0,
                rejected: 0,
                max_rejected: config.cases.saturating_mul(64).saturating_add(1024),
                case_index: 0,
                base_seed: seed,
                current_seed: seed,
            }
        }

        /// Whether more accepted cases are needed.
        pub fn more_cases(&self) -> bool {
            self.accepted < self.cases
        }

        /// The RNG for the next case.
        pub fn case_rng(&mut self) -> StdRng {
            self.current_seed = self
                .base_seed
                .wrapping_add(self.case_index.wrapping_mul(0x9e3779b97f4a7c15));
            self.case_index += 1;
            StdRng::seed_from_u64(self.current_seed)
        }

        /// Records a rejected draw (strategy-level filter failure).
        pub fn reject(&mut self) {
            self.rejected += 1;
            assert!(
                self.rejected <= self.max_rejected,
                "{}: too many rejected cases ({} rejected, {} accepted) — \
                 loosen the filters or assumptions",
                self.name,
                self.rejected,
                self.accepted
            );
        }

        /// Records the outcome of one executed case.
        pub fn finish_case(&mut self, result: Result<(), TestCaseError>, inputs: &str) {
            match result {
                Ok(()) => self.accepted += 1,
                Err(TestCaseError::Reject(_)) => self.reject(),
                Err(TestCaseError::Fail(msg)) => panic!(
                    "{} failed: {}\n  inputs: {}\n  case seed: {:#x}",
                    self.name, msg, inputs, self.current_seed
                ),
            }
        }
    }
}

/// Everything a property test needs.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

impl fmt::Display for test_runner::TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            test_runner::TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            test_runner::TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Declares property tests: each `fn` runs its body against `cases`
/// strategy-drawn inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ [$crate::test_runner::ProptestConfig::default()] $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __runner = $crate::test_runner::Runner::new(
                __config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            let __strats = ($($strat,)+);
            while __runner.more_cases() {
                let mut __rng = __runner.case_rng();
                let __values =
                    match $crate::strategy::Strategy::generate(&__strats, &mut __rng) {
                        ::std::option::Option::Some(v) => v,
                        ::std::option::Option::None => {
                            __runner.reject();
                            continue;
                        }
                    };
                let __inputs = format!("{:?}", __values);
                let ($($pat,)+) = __values;
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                __runner.finish_case(__result, &__inputs);
            }
        }
        $crate::__proptest_impl!{ [$cfg] $($rest)* }
    };
}

/// Asserts inside a property test; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `left == right`: {}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            __l,
            __r
        );
    }};
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `left != right`\n  both: {:?}",
            __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `left != right`: {}\n  both: {:?}",
            format!($($fmt)+),
            __l
        );
    }};
}

/// Skips cases where the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_and_vec_generate_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = (0.0f64..1.0, 3usize..6, 1u8..=4);
        for _ in 0..200 {
            let (f, n, b) = Strategy::generate(&s, &mut rng).unwrap();
            assert!((0.0..1.0).contains(&f));
            assert!((3..6).contains(&n));
            assert!((1..=4).contains(&b));
        }
        let v = crate::collection::vec(0usize..10, 2..5);
        for _ in 0..100 {
            let xs = Strategy::generate(&v, &mut rng).unwrap();
            assert!((2..5).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 10));
        }
        let exact = crate::collection::vec(0usize..10, 4);
        assert_eq!(Strategy::generate(&exact, &mut rng).unwrap().len(), 4);
    }

    #[test]
    fn string_patterns_match_their_classes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let s = Strategy::generate(&"[a-z_]{1,12}", &mut rng).unwrap();
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
            let t = Strategy::generate(&"[ -~]{0,20}", &mut rng).unwrap();
            assert!(t.len() <= 20);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = (1usize..5)
            .prop_flat_map(|n| crate::collection::vec(0usize..100, n))
            .prop_map(|v| v.len())
            .prop_filter("nonzero", |&n| n > 0);
        for _ in 0..50 {
            let n = Strategy::generate(&s, &mut rng).unwrap();
            assert!((1..5).contains(&n));
        }
        // A filter that always fails rejects every draw.
        let never = (0usize..4).prop_filter("never", |_| false);
        assert!(Strategy::generate(&never, &mut rng).is_none());
    }

    #[test]
    fn index_projects_into_len() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let ix = Strategy::generate(&any::<crate::sample::Index>(), &mut rng).unwrap();
            assert!(ix.index(7) < 7);
            assert_eq!(ix.index(1), 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: bindings, assume, asserts, early Ok returns.
        #[test]
        fn macro_machinery_works(x in 0usize..100, (a, b) in (0u8..10, 0u8..10)) {
            prop_assume!(x != 55);
            if x > 90 {
                return Ok(());
            }
            prop_assert!(x <= 90, "x was {}", x);
            prop_assert_eq!(a as u16 + b as u16, b as u16 + a as u16);
            prop_assert_ne!(x + 1, x);
        }
    }
}
