//! Host crate for the workspace-level integration tests (see `tests/`).
//!
//! The tests exercise full pipelines across `tsm-model`, `tsm-signal`,
//! `tsm-db`, `tsm-core`, `tsm-baselines` and the `tsm-bench` harness.
