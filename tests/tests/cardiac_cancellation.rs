//! The adaptive cardiac canceller (the paper's "better cardiac motion
//! modeling" future-work item) must measurably improve segmentation of
//! cardiac-contaminated signals.

use tsm_model::{segment_signal, BreathState, SegmenterConfig};
use tsm_signal::{BreathingParams, NoiseParams, SignalGenerator};

/// Shallow breathing with prominent cardiac interference — the hardest
/// case in the cohort (tumors near the heart).
fn hard_signal(seed: u64) -> Vec<tsm_model::Sample> {
    let params = BreathingParams {
        amplitude_mm: 6.0,
        period_s: 2.9,
        eoe_fraction: 0.20,
        ..Default::default()
    };
    SignalGenerator::new(params, seed)
        .with_noise(NoiseParams {
            cardiac_amplitude_mm: 1.3,
            cardiac_freq_hz: 1.35,
            ..NoiseParams::typical()
        })
        .generate(120.0)
}

fn irregular_fraction(vertices: &[tsm_model::Vertex]) -> f64 {
    if vertices.len() < 2 {
        return 1.0;
    }
    let irr = vertices[..vertices.len() - 1]
        .iter()
        .filter(|v| v.state == BreathState::Irregular)
        .count();
    irr as f64 / (vertices.len() - 1) as f64
}

#[test]
fn cancellation_reduces_spurious_irregularity_with_light_smoothing() {
    // With light smoothing (which preserves timing resolution), the raw
    // cardiac component causes spurious IRR segments; the canceller
    // should remove most of them.
    let light = SegmenterConfig {
        smoothing_width: 7,
        ..SegmenterConfig::default()
    };
    let with_cancel = SegmenterConfig {
        cardiac_cancel: true,
        ..light.clone()
    };
    let mut frac_without_sum = 0.0;
    let mut frac_with_sum = 0.0;
    for seed in [1u64, 2, 3] {
        let samples = hard_signal(seed);
        frac_without_sum += irregular_fraction(&segment_signal(&samples, light.clone()));
        frac_with_sum += irregular_fraction(&segment_signal(&samples, with_cancel.clone()));
    }
    let frac_without = frac_without_sum / 3.0;
    let frac_with = frac_with_sum / 3.0;
    assert!(
        frac_with < frac_without,
        "cancellation did not reduce IRR: {frac_with:.3} vs {frac_without:.3}"
    );
    assert!(
        frac_with < 0.25,
        "IRR fraction still high with cancellation: {frac_with:.3}"
    );
}

#[test]
fn cancellation_keeps_cycle_count_correct() {
    let samples = hard_signal(7);
    let config = SegmenterConfig {
        smoothing_width: 7,
        cardiac_cancel: true,
        ..SegmenterConfig::default()
    };
    let vertices = segment_signal(&samples, config);
    let plr = tsm_model::PlrTrajectory::from_vertices(vertices).unwrap();
    let cycles = tsm_model::CycleExtractor::new(0).cycles(&plr);
    // 120 s at ~2.9 s per cycle ≈ 41 cycles; allow generous margins for
    // the warmup and occasional merge.
    assert!(
        (28..=48).contains(&cycles.len()),
        "found {} cycles, expected ~41",
        cycles.len()
    );
    let mean_period = cycles.iter().map(|c| c.period()).sum::<f64>() / cycles.len() as f64;
    assert!(
        (mean_period - 2.9).abs() < 0.5,
        "mean period {mean_period:.2} s vs true 2.9 s"
    );
}

#[test]
fn cancellation_does_not_hurt_clean_signals() {
    let params = BreathingParams::default();
    let samples = SignalGenerator::new(params, 9).generate(90.0);
    let base = SegmenterConfig::default();
    let with_cancel = SegmenterConfig {
        cardiac_cancel: true,
        ..base.clone()
    };
    let f_base = irregular_fraction(&segment_signal(&samples, base));
    let f_cancel = irregular_fraction(&segment_signal(&samples, with_cancel));
    assert!(
        f_cancel <= f_base + 0.05,
        "canceller hurt a clean signal: {f_cancel:.3} vs {f_base:.3}"
    );
}
