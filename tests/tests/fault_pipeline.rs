//! An empty `FaultPlan` is an exact no-op end to end: running the full
//! pipeline — guarded segmentation, top-k matching, live prediction —
//! over the injected stream produces **bit-identical** results to the
//! clean stream. This is the property that lets `tsm replay --faults`
//! share one code path with the clean replay.

use tsm_core::matcher::{Matcher, QuerySubseq};
use tsm_core::pipeline::OnlinePredictor;
use tsm_core::Params;
use tsm_db::{PatientAttributes, PatientId, SharedStore, StreamStore, SubseqRef};
use tsm_model::{segment_signal, PlrTrajectory, Sample, SegmenterConfig, Vertex};
use tsm_signal::{BreathingParams, FaultInjector, FaultPlan, NoiseParams, SignalGenerator};

const DT: f64 = 0.3;
const EVERY: usize = 30;

fn passthrough(samples: &[Sample]) -> Vec<Sample> {
    FaultInjector::new(&FaultPlan::empty()).apply(samples)
}

fn assert_samples_bit_identical(a: &[Sample], b: &[Sample]) {
    assert_eq!(a.len(), b.len());
    for (sa, sb) in a.iter().zip(b) {
        assert_eq!(sa.time.to_bits(), sb.time.to_bits());
        for (ca, cb) in sa.position.coords().iter().zip(sb.position.coords()) {
            assert_eq!(ca.to_bits(), cb.to_bits());
        }
    }
}

fn assert_vertices_bit_identical(a: &[Vertex], b: &[Vertex]) {
    assert_eq!(a.len(), b.len());
    for (va, vb) in a.iter().zip(b) {
        assert_eq!(va.time.to_bits(), vb.time.to_bits());
        assert_eq!(va.state, vb.state);
        for (ca, cb) in va.position.coords().iter().zip(vb.position.coords()) {
            assert_eq!(ca.to_bits(), cb.to_bits());
        }
    }
}

/// Builds a store over `make(i)`-generated session signals.
fn store_from(make: impl Fn(u32) -> Vec<Sample>) -> (SharedStore, PatientId) {
    let store = StreamStore::new();
    let patient = store.add_patient(PatientAttributes::new());
    for session in 0..3u32 {
        let samples = make(session);
        let vertices = segment_signal(&samples, SegmenterConfig::clean());
        let plr = PlrTrajectory::from_vertices(vertices).unwrap();
        store.add_stream(patient, session, plr, samples.len());
    }
    (store.into_shared(), patient)
}

fn session_signal(session: u32) -> Vec<Sample> {
    SignalGenerator::new(BreathingParams::default(), 0xF4A1 + session as u64)
        .with_noise(NoiseParams::typical())
        .generate(80.0)
}

#[test]
fn empty_plan_yields_bit_identical_matches() {
    // Two stores: one built from clean signals, one from the same signals
    // routed through an empty-plan injector. Every top-k search must agree
    // exactly — ranks, scores, and referenced subsequences.
    let (clean_store, _) = store_from(session_signal);
    let (faulted_store, _) = store_from(|s| passthrough(&session_signal(s)));
    let params = Params::default();
    let clean_matcher = Matcher::new(clean_store.clone(), params.clone());
    let faulted_matcher = Matcher::new(faulted_store.clone(), params);

    let mut compared = 0usize;
    for (cs, fs) in clean_store
        .streams()
        .iter()
        .zip(faulted_store.streams().iter())
    {
        assert_eq!(cs.plr.num_segments(), fs.plr.num_segments());
        let nseg = cs.plr.num_segments();
        for start in [0usize, nseg / 3, nseg / 2] {
            let (Some(cv), Some(fv)) = (
                clean_store.resolve(SubseqRef::new(cs.meta.id, start, 9)),
                faulted_store.resolve(SubseqRef::new(fs.meta.id, start, 9)),
            ) else {
                continue;
            };
            let clean_matches = clean_matcher.find_matches(&QuerySubseq::from_view(&cv));
            let faulted_matches = faulted_matcher.find_matches(&QuerySubseq::from_view(&fv));
            assert_eq!(clean_matches, faulted_matches);
            compared += 1;
        }
    }
    assert!(compared >= 6, "only {compared} queries compared");
}

#[test]
fn empty_plan_yields_bit_identical_predictions() {
    let (store, patient) = store_from(session_signal);
    let live = SignalGenerator::new(BreathingParams::default(), 0xF4A1 + 99)
        .with_noise(NoiseParams::typical())
        .generate(60.0);
    let injected = passthrough(&live);
    assert_samples_bit_identical(&live, &injected);

    let params = Params {
        min_matches: 1,
        ..Params::default()
    };
    let run = |samples: &[Sample]| {
        let mut predictor = OnlinePredictor::new(
            store.clone(),
            params.clone(),
            SegmenterConfig::clean(),
            patient,
            9,
        )
        .unwrap();
        let mut outcomes = Vec::new();
        for (i, &s) in samples.iter().enumerate() {
            predictor.push(s).unwrap();
            if i % EVERY == 0 && i >= EVERY {
                if let Some(o) = predictor.predict(DT) {
                    outcomes.push(o);
                }
            }
        }
        (predictor.live_vertices().to_vec(), outcomes)
    };
    let (clean_vertices, clean_outcomes) = run(&live);
    let (faulted_vertices, faulted_outcomes) = run(&injected);

    assert_vertices_bit_identical(&clean_vertices, &faulted_vertices);
    assert!(
        !clean_outcomes.is_empty(),
        "the live session must serve predictions"
    );
    assert_eq!(clean_outcomes.len(), faulted_outcomes.len());
    for (a, b) in clean_outcomes.iter().zip(&faulted_outcomes) {
        for (ca, cb) in a.position.coords().iter().zip(b.position.coords()) {
            assert_eq!(ca.to_bits(), cb.to_bits());
        }
    }
}
