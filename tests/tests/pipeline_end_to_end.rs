//! End-to-end: simulate → segment → store → dynamic query → match →
//! predict, and verify the predictions beat the naive floors.

use tsm_baselines::{last_position_prediction, linear_extrapolation_prediction};
use tsm_bench::{build_bundle, evaluate_prediction, BundleConfig, PredictionEvalConfig};
use tsm_core::pipeline::OnlinePredictor;
use tsm_core::Params;
use tsm_model::{segment_signal, PlrTrajectory, SegmenterConfig};
use tsm_signal::{BreathingParams, CohortConfig, NoiseParams, SignalGenerator};

fn bundle() -> tsm_bench::StoreBundle {
    build_bundle(&BundleConfig {
        cohort: CohortConfig {
            n_patients: 8,
            sessions_per_patient: 2,
            streams_per_session: 2,
            stream_duration_s: 90.0,
            dim: 1,
            seed: 0xE2E,
        },
        segmenter: SegmenterConfig::default(),
    })
}

#[test]
fn matched_prediction_beats_last_position_at_clinical_latency() {
    let b = bundle();
    let params = Params::default();
    let dt = 0.3; // the paper's upper-bound latency
    let stats = evaluate_prediction(
        &b,
        &params,
        &SegmenterConfig::default(),
        &PredictionEvalConfig {
            dts: vec![dt],
            ..Default::default()
        },
    );
    assert!(
        stats.predictions > 50,
        "too few predictions: {}",
        stats.predictions
    );

    // The naive floor: |p(t) - p(t+dt)| over the same truth trajectories.
    let mut naive_sum = 0.0;
    let mut n = 0usize;
    for e in &b.eval {
        let mut t = e.truth.start_time() + 10.0;
        while t + dt < e.truth.end_time() {
            naive_sum += (e.truth.position_at(t + dt)[0] - e.truth.position_at(t)[0]).abs();
            n += 1;
            t += 1.0;
        }
    }
    let naive = naive_sum / n as f64;
    assert!(
        stats.overall_error < naive,
        "matching ({:.3} mm) must beat last-position ({naive:.3} mm)",
        stats.overall_error
    );
}

#[test]
fn online_predictor_session_full_lifecycle() {
    let b = bundle();
    let params = Params::default();
    let patient = b.patients[0];
    let mut predictor = OnlinePredictor::new(
        b.store.clone(),
        params,
        SegmenterConfig::default(),
        patient,
        9,
    )
    .unwrap();
    let mut generator =
        SignalGenerator::new(BreathingParams::default(), 777).with_noise(NoiseParams::typical());
    let samples = generator.generate(90.0);
    let truth =
        PlrTrajectory::from_vertices(segment_signal(&samples, SegmenterConfig::default())).unwrap();

    let mut errors = Vec::new();
    for (i, &s) in samples.iter().enumerate() {
        predictor.push(s).unwrap();
        if i % 60 == 0 && i > 900 {
            if let Some(outcome) = predictor.predict(0.2) {
                let t_last = predictor.live_vertices().last().unwrap().time;
                errors.push((outcome.position[0] - truth.position_at(t_last + 0.2)[0]).abs());
                assert!(outcome.query_len >= 9);
                assert!(outcome.num_matches >= 3);
            }
        }
    }
    assert!(errors.len() >= 10, "only {} live predictions", errors.len());
    let mean = errors.iter().sum::<f64>() / errors.len() as f64;
    assert!(mean < 3.0, "live prediction error {mean:.3} mm");

    // Session persists and is immediately searchable.
    let streams_before = b.store.num_streams();
    let id = predictor.finish_into_store().expect("persisted");
    assert_eq!(b.store.num_streams(), streams_before + 1);
    assert_eq!(b.store.stream(id).unwrap().meta.patient, patient);
}

#[test]
fn naive_baselines_are_well_defined_on_live_buffers() {
    let mut generator = SignalGenerator::new(BreathingParams::default(), 5);
    let samples = generator.generate(30.0);
    let vertices = segment_signal(&samples, SegmenterConfig::clean());
    assert!(last_position_prediction(&vertices, 0.3).is_some());
    assert!(linear_extrapolation_prediction(&vertices, 0.3).is_some());
}

#[test]
fn prediction_error_grows_with_horizon() {
    // Figure 6a's fundamental shape: longer horizons are harder.
    let b = bundle();
    let params = Params::default();
    let stats = evaluate_prediction(
        &b,
        &params,
        &SegmenterConfig::default(),
        &PredictionEvalConfig {
            dts: vec![0.03, 0.30],
            ..Default::default()
        },
    );
    let short = stats.by_dt[0].1;
    let long = stats.by_dt[1].1;
    assert!(
        short < long,
        "error at 30 ms ({short:.3}) should be below error at 300 ms ({long:.3})"
    );
}
