//! Offline analysis: clustering over Definition-4 patient distances must
//! rediscover the simulator's latent phenotypes, and correlation
//! discovery must surface the attribute the simulator correlated with
//! them.

use tsm_bench::{build_bundle, cluster_patients, BundleConfig};
use tsm_core::cluster::{adjusted_rand_index, agglomerative, silhouette};
use tsm_core::correlate::discover_correlations;
use tsm_core::stream_distance::StreamDistanceConfig;
use tsm_core::Params;
use tsm_model::SegmenterConfig;
use tsm_signal::CohortConfig;

fn bundle() -> tsm_bench::StoreBundle {
    build_bundle(&BundleConfig {
        cohort: CohortConfig {
            n_patients: 12,
            sessions_per_patient: 2,
            streams_per_session: 2,
            stream_duration_s: 100.0,
            dim: 1,
            seed: 0xC1u64,
        },
        segmenter: SegmenterConfig::default(),
    })
}

#[test]
fn k_medoids_recovers_phenotypes() {
    let b = bundle();
    let params = Params::default();
    let cfg = StreamDistanceConfig {
        len_segments: 9,
        stride: 3,
    };
    let (labels, dm) = cluster_patients(&b, &params, &cfg, 4, 4);
    let ari = adjusted_rand_index(&labels, &b.labels);
    assert!(
        ari > 0.5,
        "clustering failed to recover phenotypes: ARI {ari:.3}, labels {labels:?} vs truth {:?}",
        b.labels
    );
    assert!(silhouette(&dm, &labels) > 0.0);

    // Agglomerative clustering over the same matrix should do comparably.
    let agg = agglomerative(&dm, 4);
    let ari_agg = adjusted_rand_index(&agg, &b.labels);
    assert!(ari_agg > 0.4, "agglomerative ARI {ari_agg:.3}");
}

#[test]
fn correlation_discovery_ranks_the_built_in_correlate_high() {
    // At 12 patients the contingency tables are too small: a 2-category
    // attribute like `sex` beats the built-in 5-category `tumor_site`
    // correlate by chance (observed: sex V 0.87 vs tumor_site V 0.58).
    // Use a cohort large enough for the constructed correlation to
    // dominate sampling noise.
    let b = build_bundle(&BundleConfig {
        cohort: CohortConfig {
            n_patients: 24,
            sessions_per_patient: 2,
            streams_per_session: 2,
            stream_duration_s: 100.0,
            dim: 1,
            seed: 0xC1u64,
        },
        segmenter: SegmenterConfig::default(),
    });
    let params = Params::default();
    let cfg = StreamDistanceConfig {
        len_segments: 9,
        stride: 3,
    };
    let (labels, _) = cluster_patients(&b, &params, &cfg, 4, 4);
    let attrs: Vec<_> = b
        .patients
        .iter()
        .map(|&p| b.store.patient_attributes(p).unwrap())
        .collect();
    let assoc = discover_correlations(&attrs, &labels);
    let v = |key: &str| {
        assoc
            .iter()
            .find(|a| a.attribute == key)
            .map(|a| a.cramers_v)
            .unwrap_or(0.0)
    };
    // tumor_site is correlated with phenotype by construction; sex is not.
    assert!(
        v("tumor_site") > v("sex"),
        "tumor_site V {:.3} should exceed sex V {:.3} ({:?})",
        v("tumor_site"),
        v("sex"),
        assoc
            .iter()
            .map(|a| (&a.attribute, a.cramers_v))
            .collect::<Vec<_>>()
    );
}

#[test]
fn patient_distances_order_self_before_others() {
    let b = bundle();
    let params = Params::default();
    let cfg = StreamDistanceConfig {
        len_segments: 9,
        stride: 3,
    };
    // Figure 8c's shape on the first few patients.
    let mut checked = 0;
    for &p in b.patients.iter().take(4) {
        let self_d = tsm_core::patient_distance::patient_distance(&b.store, p, p, &params, &cfg);
        let Some(self_d) = self_d else { continue };
        let mut others = Vec::new();
        for &q in b.patients.iter() {
            if q == p {
                continue;
            }
            if let Some(d) =
                tsm_core::patient_distance::patient_distance(&b.store, p, q, &params, &cfg)
            {
                others.push(d);
            }
        }
        if others.is_empty() {
            continue;
        }
        let mean_other = others.iter().sum::<f64>() / others.len() as f64;
        assert!(
            self_d < mean_other,
            "patient {p}: self {self_d:.3} >= mean other {mean_other:.3}"
        );
        checked += 1;
    }
    assert!(
        checked >= 3,
        "only {checked} patients had defined distances"
    );
}
