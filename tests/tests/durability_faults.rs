//! Cross-crate durability suite: the seeded storage fault matrix (every
//! plan a different disk failure mid-workload, power loss, restart) and
//! the equivalence check that a recovered store is bit-identical to the
//! uncrashed run's acknowledged prefix.

use std::sync::Arc;
use tsm_db::{
    recover, save_store, DurableBackend, MemBackend, PatientAttributes, PatientId, StreamStore,
    WalConfig,
};
use tsm_model::{segment_signal, PlrTrajectory, SegmenterConfig, Vertex};
use tsm_signal::{
    BreathingParams, FaultedBackend, SignalGenerator, StorageFaultKind, StorageFaultPlan,
};

/// A realistic vertex workload: one synthetic session, segmented, split
/// into commit-sized batches.
fn batches(seed: u64) -> Vec<Vec<Vertex>> {
    let samples = SignalGenerator::new(BreathingParams::default(), seed).generate(90.0);
    segment_signal(&samples, SegmenterConfig::clean())
        .chunks(5)
        .map(<[Vertex]>::to_vec)
        .collect()
}

#[test]
fn storage_fault_matrix_recovers_every_acknowledged_append() {
    let all = batches(0xFA17);
    for seed in 0..48u64 {
        let plan = StorageFaultPlan::random(seed, 40);
        // SilentSync deliberately breaks the fsync contract (the device
        // lies), so acked-implies-recovered cannot hold under it; the
        // weaker prefix property below still must.
        let lying_disk = plan
            .events
            .iter()
            .any(|e| e.kind == StorageFaultKind::SilentSync);
        let mem = Arc::new(MemBackend::new());
        let faulted: Arc<dyn DurableBackend> =
            Arc::new(FaultedBackend::with_mem(mem.clone(), &plan));
        let Ok(rec) = recover(faulted, WalConfig::default()) else {
            // The fault hit the opening recovery itself; nothing was
            // ever acknowledged, so there is nothing to check.
            continue;
        };
        let writer = rec.writer;
        let mut acked = 0usize;
        let mut samples = 0u64;
        for batch in &all {
            samples += batch.len() as u64;
            match writer.append_batch(1, 4, 0, samples, batch) {
                Ok(receipt) => {
                    assert!(receipt.fsynced, "seed {seed}");
                    acked += 1;
                }
                // Any append-path fault permanently poisons the writer.
                Err(_) => break,
            }
        }

        // Power loss, then restart on healthy hardware.
        mem.crash();
        let dyn_mem: Arc<dyn DurableBackend> = mem;
        let rec = recover(dyn_mem, WalConfig::default())
            .unwrap_or_else(|e| panic!("seed {seed}: post-crash recovery hard-errored: {e}"));
        let k = rec.report.replayed_records as usize;
        assert!(k <= all.len(), "seed {seed}: invented records");
        if !lying_disk {
            assert!(
                k >= acked,
                "seed {seed}: acked {acked} batches but recovered {k} ({})",
                rec.report
            );
        }
        // Whatever came back is an exact prefix of the appended batches.
        if k == 0 {
            assert_eq!(rec.store.num_streams(), 0, "seed {seed}");
        } else {
            let plr = PlrTrajectory::from_vertices(all[..k].concat()).unwrap();
            assert_eq!(rec.store.num_streams(), 1, "seed {seed}");
            assert_eq!(rec.store.streams()[0].plr, plr, "seed {seed}");
        }
    }
}

#[test]
fn recovered_store_is_bit_identical_to_the_acknowledged_prefix() {
    let all = batches(0xB17);
    let mem = Arc::new(MemBackend::new());
    let dyn_mem: Arc<dyn DurableBackend> = mem.clone();
    let writer = recover(dyn_mem.clone(), WalConfig::default())
        .unwrap()
        .writer;
    let mut samples = 0u64;
    for batch in &all {
        samples += batch.len() as u64;
        writer.append_batch(2, 9, 0, samples, batch).unwrap();
    }
    writer.append_end(2, 9, samples, true).unwrap();

    // Everything above was acknowledged after an fsync, so power loss
    // right here must lose nothing at all.
    mem.crash();
    let rec = recover(dyn_mem, WalConfig::default()).unwrap();
    assert_eq!(rec.report.sessions_recovered, 1, "{}", rec.report);
    assert_eq!(rec.report.sessions_partial, 0, "{}", rec.report);

    // The store an uncrashed run would have produced.
    let reference = StreamStore::new();
    for _ in 0..3 {
        reference.add_patient(PatientAttributes::new());
    }
    let plr = PlrTrajectory::from_vertices(all.concat()).unwrap();
    reference.add_stream(PatientId(2), 9, plr, samples as usize);

    let (mut recovered_image, mut reference_image) = (Vec::new(), Vec::new());
    save_store(&rec.store, &mut recovered_image).unwrap();
    save_store(&reference, &mut reference_image).unwrap();
    assert_eq!(
        recovered_image, reference_image,
        "recovered store image differs from the uncrashed reference"
    );
}

#[test]
fn snapshots_survive_power_loss_and_ordering_is_sync_rename_syncroot() {
    let all = batches(0x5A9);
    let mem = Arc::new(MemBackend::new());
    let dyn_mem: Arc<dyn DurableBackend> = mem.clone();
    let writer = recover(dyn_mem.clone(), WalConfig::default())
        .unwrap()
        .writer;
    let mut samples = 0u64;
    for batch in &all {
        samples += batch.len() as u64;
        writer.append_batch(0, 1, 0, samples, batch).unwrap();
    }
    writer.append_end(0, 1, samples, true).unwrap();
    let store = recover(dyn_mem.clone(), WalConfig::default())
        .unwrap()
        .store;
    writer
        .checkpoint(&store)
        .unwrap()
        .expect("first checkpoint publishes");

    // Regression (the save_store_to_path fix): a tmp-file rename is only
    // durable once the directory itself is synced, so the publish path
    // must order data-sync before rename before root-sync.
    let ops = mem.ops();
    let tmp_sync = ops
        .iter()
        .position(|op| op.starts_with("sync(snap-") && op.contains(".tmp"))
        .expect("snapshot tmp file synced");
    let rename = ops
        .iter()
        .position(|op| op.starts_with("rename(snap-"))
        .expect("snapshot renamed into place");
    let root_sync = ops
        .iter()
        .rposition(|op| op == "sync_root")
        .expect("root synced");
    assert!(
        tmp_sync < rename && rename < root_sync,
        "publish ordering broken: {ops:?}"
    );

    // And the proof: power loss after the checkpoint returns loses
    // neither the snapshot nor any covered record.
    mem.crash();
    let rec = recover(dyn_mem, WalConfig::default()).unwrap();
    assert!(rec.report.snapshot_seq.is_some(), "{}", rec.report);
    assert_eq!(rec.store.num_streams(), 1);
    assert_eq!(
        rec.store.streams()[0].plr,
        PlrTrajectory::from_vertices(all.concat()).unwrap()
    );
}
