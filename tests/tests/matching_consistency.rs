//! Cross-crate matching consistency: index vs scan on realistic data,
//! provenance weighting end-to-end, and the Euclidean baseline's blind
//! spot.

use tsm_baselines::matcher::{EuclideanMatcher, EuclideanMatcherConfig};
use tsm_bench::{build_bundle, BundleConfig};
use tsm_core::matcher::{Matcher, QuerySubseq, SearchOptions};
use tsm_core::Params;
use tsm_db::{SourceRelation, StateOrderIndex, SubseqRef};
use tsm_model::SegmenterConfig;
use tsm_signal::CohortConfig;

fn bundle() -> tsm_bench::StoreBundle {
    build_bundle(&BundleConfig {
        cohort: CohortConfig {
            n_patients: 6,
            sessions_per_patient: 2,
            streams_per_session: 2,
            stream_duration_s: 90.0,
            dim: 1,
            seed: 0xABC,
        },
        segmenter: SegmenterConfig::default(),
    })
}

#[test]
fn index_and_scan_agree_on_simulated_data() {
    let b = bundle();
    let params = Params::default();
    let matcher = Matcher::new(b.store.clone(), params);
    let index = StateOrderIndex::build(&b.store, 9);
    assert!(!index.is_empty());
    let mut compared = 0;
    for stream in b.store.streams().iter().take(4) {
        let nseg = stream.plr.num_segments();
        for start in [0usize, nseg / 2] {
            let Some(view) = b.store.resolve(SubseqRef::new(stream.meta.id, start, 9)) else {
                continue;
            };
            let q = QuerySubseq::from_view(&view);
            let scan = matcher.find_matches(&q);
            let indexed = matcher.find_matches_indexed(&q, &index, &SearchOptions::default());
            assert_eq!(scan, indexed);
            compared += 1;
        }
    }
    assert!(compared >= 6);
}

#[test]
fn provenance_tiers_rank_matches_end_to_end() {
    let b = bundle();
    let params = Params::default();
    let matcher = Matcher::new(b.store.clone(), params);
    // Query from a stored stream; its stream-mates should surface high.
    let stream = &b.store.streams()[0];
    let view = b
        .store
        .resolve(SubseqRef::new(stream.meta.id, 3, 9))
        .expect("long enough");
    let q = QuerySubseq::from_view(&view);
    let matches = matcher.find_matches(&q);
    assert!(!matches.is_empty());
    // Same-session matches (when they exist) must carry the largest ws.
    for m in &matches {
        match m.relation {
            SourceRelation::SameSession => assert_eq!(m.ws, 1.0),
            SourceRelation::SamePatient => assert_eq!(m.ws, 0.9),
            SourceRelation::OtherPatient => assert_eq!(m.ws, 0.3),
        }
    }
    // The single best match should not come from another patient: the
    // query's own patient breathes most like the query.
    assert_ne!(matches[0].relation, SourceRelation::OtherPatient);
}

#[test]
fn plr_matcher_enforces_state_order_euclidean_does_not() {
    let b = bundle();
    let params = Params::default();
    let matcher = Matcher::new(b.store.clone(), params.clone());
    let stream = &b.store.streams()[0];
    let view = b
        .store
        .resolve(SubseqRef::new(stream.meta.id, 3, 9))
        .expect("long enough");
    let q = QuerySubseq::from_view(&view);

    let plr_matches = matcher.find_matches(&q);
    let q_states: Vec<_> = q.states();
    for m in &plr_matches {
        let v = b.store.resolve(m.subseq).unwrap();
        let c_states: Vec<_> = v.states().collect();
        assert_eq!(q_states, c_states, "state-order gate violated");
    }

    let euclid = EuclideanMatcher::new(
        b.store.clone(),
        params,
        EuclideanMatcherConfig {
            delta: 50.0,
            ..Default::default()
        },
    );
    let e_matches = euclid.find_matches(&q);
    let out_of_phase = e_matches.iter().any(|m| {
        let v = b.store.resolve(m.subseq).unwrap();
        let c_states: Vec<_> = v.states().collect();
        c_states != q_states
    });
    assert!(
        out_of_phase,
        "Euclidean baseline should admit out-of-phase matches at a loose threshold"
    );
}

#[test]
fn store_statistics_are_consistent() {
    let b = bundle();
    // 6 patients * (2*2 - 1 held out) = 18 streams.
    assert_eq!(b.store.num_streams(), 18);
    let total: usize = b.store.streams().iter().map(|s| s.plr.num_vertices()).sum();
    assert_eq!(total, b.store.total_vertices());
    // PLR compression is substantial (30 Hz raw vs ~3 vertices/cycle).
    for s in b.store.streams() {
        assert!(
            s.compression_ratio() > 10.0,
            "stream {} compresses only {:.1}x",
            s.meta.id,
            s.compression_ratio()
        );
    }
}
