//! Equivalence: one `SessionRuntime` fanning a shared prediction tick out
//! to prediction, gating and tracking consumers produces **bit-identical**
//! results to the legacy architecture — three disconnected single-purpose
//! loops, each re-segmenting the live signal and re-matching against the
//! store through its own predictor.

use tsm_core::gating::{GatingAccumulator, GatingWindow};
use tsm_core::pipeline::OnlinePredictor;
use tsm_core::session::{
    GatingController, PredictionLog, SessionConfig, SessionRuntime, TrackingController,
};
use tsm_core::tracking::TrackingStats;
use tsm_core::Params;
use tsm_db::{PatientAttributes, PatientId, SharedStore, StreamStore};
use tsm_model::{segment_signal, PlrTrajectory, Position, Sample, SegmenterConfig};
use tsm_signal::{BreathingParams, NoiseParams, SignalGenerator};

const DT: f64 = 0.3;
const EVERY: usize = 30;
const AXIS: usize = 0;

fn seeded_store(seed: u64) -> (SharedStore, PatientId) {
    let store = StreamStore::new();
    let patient = store.add_patient(PatientAttributes::new());
    for session in 0..2u32 {
        let samples = SignalGenerator::new(BreathingParams::default(), seed + session as u64)
            .with_noise(NoiseParams::typical())
            .generate(100.0);
        let vertices = segment_signal(&samples, SegmenterConfig::clean());
        let plr = PlrTrajectory::from_vertices(vertices).unwrap();
        store.add_stream(patient, session, plr, samples.len());
    }
    let other = store.add_patient(PatientAttributes::new());
    let samples = SignalGenerator::new(
        BreathingParams {
            amplitude_mm: 9.0,
            period_s: 3.6,
            ..Default::default()
        },
        seed + 77,
    )
    .generate(100.0);
    let vertices = segment_signal(&samples, SegmenterConfig::clean());
    if let Ok(plr) = PlrTrajectory::from_vertices(vertices) {
        store.add_stream(other, 0, plr, samples.len());
    }
    (store.into_shared(), patient)
}

fn live_session(seed: u64) -> (Vec<Sample>, PlrTrajectory) {
    let samples = SignalGenerator::new(BreathingParams::default(), seed)
        .with_noise(NoiseParams::typical())
        .generate(60.0);
    let truth =
        PlrTrajectory::from_vertices(segment_signal(&samples, SegmenterConfig::clean())).unwrap();
    (samples, truth)
}

fn params() -> Params {
    Params {
        min_matches: 1,
        ..Params::default()
    }
}

fn legacy_predictor(store: &SharedStore, patient: PatientId) -> OnlinePredictor {
    OnlinePredictor::new(
        store.clone(),
        params(),
        SegmenterConfig::clean(),
        patient,
        9,
    )
    .unwrap()
}

#[test]
fn session_runtime_is_bit_identical_to_three_legacy_loops() {
    for seed in [41u64, 42, 43] {
        let (store, patient) = seeded_store(seed);
        let (samples, truth) = live_session(seed + 1000);
        let window = GatingWindow::at_exhale_end(&truth, AXIS, 3.0);

        // ---- Legacy loop 1: prediction only. ---------------------------
        let mut predictor = legacy_predictor(&store, patient);
        let mut legacy_outcomes = Vec::new();
        for (i, &s) in samples.iter().enumerate() {
            predictor.push(s).unwrap();
            if i % EVERY == 0 && i >= EVERY {
                if let Some(o) = predictor.predict(DT) {
                    legacy_outcomes.push(o);
                }
            }
        }

        // ---- Legacy loop 2: gating only (full re-replay). --------------
        let mut predictor = legacy_predictor(&store, patient);
        let mut legacy_acc = GatingAccumulator::new();
        let mut legacy_decisions = Vec::new();
        for (i, &s) in samples.iter().enumerate() {
            predictor.push(s).unwrap();
            if i % EVERY == 0 && i >= EVERY {
                let Some(last) = predictor.live_vertices().last() else {
                    continue;
                };
                let target = last.time + DT;
                let beam = predictor
                    .predict(DT)
                    .is_some_and(|o| window.contains(o.position[AXIS]));
                let truth_in = window.contains(truth.position_at(target)[AXIS]);
                legacy_acc.record(beam, truth_in);
                legacy_decisions.push(beam);
            }
        }

        // ---- Legacy loop 3: tracking only (another full re-replay). ----
        let mut predictor = legacy_predictor(&store, patient);
        let mut last_aim: Option<Position> = None;
        let mut legacy_errors = Vec::new();
        for (i, &s) in samples.iter().enumerate() {
            predictor.push(s).unwrap();
            if i % EVERY == 0 && i >= EVERY {
                if let Some(o) = predictor.predict(DT) {
                    last_aim = Some(o.position);
                }
                let Some(last) = predictor.live_vertices().last() else {
                    continue;
                };
                if let Some(aim) = last_aim {
                    legacy_errors.push((aim[AXIS] - truth.position_at(last.time + DT)[AXIS]).abs());
                }
            }
        }

        // ---- The session runtime: one loop, one prediction per tick. ---
        let config = SessionConfig::new(patient, 9)
            .with_segmenter(SegmenterConfig::clean())
            .with_horizon(DT)
            .with_cadence(EVERY);
        let mut runtime = SessionRuntime::new(store.clone(), params(), config)
            .unwrap()
            .with_consumer(Box::new(PredictionLog::new()))
            .with_consumer(Box::new(GatingController::new(window, AXIS, truth.clone())))
            .with_consumer(Box::new(TrackingController::new(truth.clone(), AXIS)));
        for &s in &samples {
            runtime.push(s).unwrap();
        }

        let log = runtime.consumer::<PredictionLog>().unwrap();
        assert_eq!(
            log.outcomes(),
            legacy_outcomes,
            "prediction outcomes diverged (seed {seed})"
        );
        assert!(!legacy_outcomes.is_empty(), "no predictions (seed {seed})");

        let gating = runtime.consumer::<GatingController>().unwrap();
        assert_eq!(
            gating.decisions(),
            legacy_decisions.as_slice(),
            "gating decisions diverged (seed {seed})"
        );
        assert_eq!(
            gating.stats(),
            legacy_acc.stats(),
            "gating stats diverged (seed {seed})"
        );
        assert!(gating.stats().ticks > 10);

        let tracking = runtime.consumer::<TrackingController>().unwrap();
        assert_eq!(
            tracking.errors(),
            legacy_errors.as_slice(),
            "tracking errors diverged (seed {seed})"
        );
        assert_eq!(
            tracking.stats(),
            TrackingStats::from_errors(legacy_errors),
            "tracking stats diverged (seed {seed})"
        );
        assert!(tracking.stats().ticks > 10);
    }
}

#[test]
fn consumers_see_every_live_vertex_exactly_once() {
    struct VertexCounter {
        seen: Vec<f64>,
    }
    impl tsm_core::session::SessionConsumer for VertexCounter {
        fn on_vertices(&mut self, _s: &SessionRuntime, new: &[tsm_model::Vertex]) {
            self.seen.extend(new.iter().map(|v| v.time));
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    let (store, patient) = seeded_store(55);
    let (samples, _) = live_session(56);
    let config = SessionConfig::new(patient, 9).with_segmenter(SegmenterConfig::clean());
    let mut runtime = SessionRuntime::new(store, params(), config)
        .unwrap()
        .with_consumer(Box::new(VertexCounter { seen: Vec::new() }));
    for &s in &samples {
        runtime.push(s).unwrap();
    }
    runtime.finish();
    let counter = runtime.consumer::<VertexCounter>().unwrap();
    let live: Vec<f64> = runtime.live_vertices().iter().map(|v| v.time).collect();
    assert_eq!(
        counter.seen, live,
        "event stream missed or duplicated vertices"
    );
    assert!(live.len() > 20);
}
