//! Persistence in the full pipeline: a cohort store saved and reloaded
//! must behave identically for matching, prediction and clustering.

use tsm_bench::{build_bundle, BundleConfig};
use tsm_core::matcher::{Matcher, QuerySubseq};
use tsm_core::Params;
use tsm_db::{load_store, save_store, SubseqRef};
use tsm_model::SegmenterConfig;
use tsm_signal::CohortConfig;

#[test]
fn matching_is_identical_after_save_load() {
    let bundle = build_bundle(&BundleConfig {
        cohort: CohortConfig {
            n_patients: 6,
            sessions_per_patient: 2,
            streams_per_session: 2,
            stream_duration_s: 60.0,
            dim: 1,
            seed: 0x5A5E,
        },
        segmenter: SegmenterConfig::default(),
    });
    let mut buf = Vec::new();
    save_store(&bundle.store, &mut buf).expect("save");
    let reloaded = load_store(buf.as_slice()).expect("load");

    let params = Params::default();
    let matcher_orig = Matcher::new(bundle.store.clone(), params.clone());
    let matcher_new = Matcher::new(reloaded.clone(), params);

    let mut compared = 0usize;
    for stream in bundle.store.streams().iter().take(4) {
        let nseg = stream.plr.num_segments();
        if nseg < 12 {
            continue;
        }
        for start in [0usize, nseg / 3, nseg / 2] {
            let Some(view) = bundle
                .store
                .resolve(SubseqRef::new(stream.meta.id, start, 9))
            else {
                continue;
            };
            let q = QuerySubseq::from_view(&view);
            let a = matcher_orig.find_matches(&q);
            let b = matcher_new.find_matches(&q);
            assert_eq!(a, b, "matching diverged after reload");
            compared += 1;
        }
    }
    assert!(compared >= 8, "only {compared} queries compared");
}

#[test]
fn multidimensional_store_roundtrips() {
    let bundle = build_bundle(&BundleConfig {
        cohort: CohortConfig {
            n_patients: 3,
            sessions_per_patient: 2,
            streams_per_session: 1,
            stream_duration_s: 60.0,
            dim: 3,
            seed: 0x3D,
        },
        segmenter: SegmenterConfig::default(),
    });
    let mut buf = Vec::new();
    save_store(&bundle.store, &mut buf).expect("save");
    let reloaded = load_store(buf.as_slice()).expect("load");
    for (a, b) in bundle.store.streams().iter().zip(reloaded.streams().iter()) {
        assert_eq!(a.plr.dim(), 3);
        assert_eq!(a.plr, b.plr);
    }
}
