//! The full pipeline on 3-D motion streams: segmentation classifies on
//! the superior-inferior axis but every vertex carries the full spatial
//! position; matching can use either the axis or the spatial amplitude
//! metric; predictions come back as 3-D points.

use tsm_bench::{build_bundle, evaluate_prediction, BundleConfig, PredictionEvalConfig};
use tsm_core::matcher::{Matcher, QuerySubseq};
use tsm_core::params::AmplitudeMetric;
use tsm_core::predict::{predict_position, AlignMode};
use tsm_core::Params;
use tsm_db::SubseqRef;
use tsm_model::SegmenterConfig;
use tsm_signal::CohortConfig;

fn bundle() -> tsm_bench::StoreBundle {
    build_bundle(&BundleConfig {
        cohort: CohortConfig {
            n_patients: 4,
            sessions_per_patient: 2,
            streams_per_session: 2,
            stream_duration_s: 90.0,
            dim: 3,
            seed: 0x3D3D,
        },
        segmenter: SegmenterConfig::default(),
    })
}

#[test]
fn three_dimensional_streams_flow_through_the_pipeline() {
    let b = bundle();
    assert!(b.store.num_streams() > 0);
    for s in b.store.streams() {
        assert_eq!(s.plr.dim(), 3, "stream lost its dimensionality");
    }

    // Matching with the spatial metric retrieves candidates and the
    // predictions are 3-D.
    let params = Params {
        amplitude_metric: AmplitudeMetric::Spatial,
        min_matches: 1,
        ..Params::default()
    };
    let matcher = Matcher::new(b.store.clone(), params.clone());
    let stream = &b.store.streams()[0];
    let nseg = stream.plr.num_segments();
    assert!(nseg > 15);
    let view = b
        .store
        .resolve(SubseqRef::new(stream.meta.id, nseg / 2, 9))
        .unwrap();
    let query = QuerySubseq::from_view(&view);
    let matches = matcher.find_matches(&query);
    assert!(!matches.is_empty(), "no 3-D matches found");
    let p = predict_position(
        &b.store,
        &query,
        &matches,
        0.3,
        &params,
        AlignMode::default(),
    )
    .expect("prediction");
    assert_eq!(p.dim(), 3);
    assert!(p.is_finite());
}

#[test]
fn spatial_and_axis_metrics_agree_on_sign_but_differ_in_value() {
    let b = bundle();
    let axis_params = Params::default();
    let spatial_params = Params {
        amplitude_metric: AmplitudeMetric::Spatial,
        ..Params::default()
    };
    let matcher_axis = Matcher::new(b.store.clone(), axis_params);
    let matcher_spatial = Matcher::new(b.store.clone(), spatial_params);
    let stream = &b.store.streams()[0];
    let view = b
        .store
        .resolve(SubseqRef::new(stream.meta.id, 3, 9))
        .unwrap();
    let query = QuerySubseq::from_view(&view);
    let ma = matcher_axis.find_matches(&query);
    let ms = matcher_spatial.find_matches(&query);
    assert!(!ma.is_empty() && !ms.is_empty());
    // Spatial distances dominate axis distances for the same pairs (they
    // add off-axis deviation), so the spatial match set is a subset at
    // equal delta.
    assert!(ms.len() <= ma.len());
}

#[test]
fn prediction_error_is_finite_on_3d_replay() {
    let b = bundle();
    let params = Params::default();
    let stats = evaluate_prediction(
        &b,
        &params,
        &SegmenterConfig::default(),
        &PredictionEvalConfig {
            dts: vec![0.2],
            ..Default::default()
        },
    );
    assert!(stats.predictions > 20, "{} predictions", stats.predictions);
    assert!(
        stats.overall_error.is_finite() && stats.overall_error < 3.0,
        "3-D replay error {}",
        stats.overall_error
    );
}
