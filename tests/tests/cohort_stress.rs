//! Concurrent-session stress: many live sessions replaying against one
//! shared store must produce exactly the outcomes of a serial replay —
//! the store is read-only during replay and the engine's index cache is
//! safely shared, so scheduling cannot change results.
//!
//! The heavy test is release-only (`cargo test --release`); the tier-1
//! debug run skips it.

use std::sync::Arc;
use tsm_core::session::{CohortRuntime, SessionSpec};
use tsm_core::{CachedMatcher, Matcher, Params};
use tsm_db::{PatientAttributes, PatientId, SharedStore, StreamStore};
use tsm_model::{segment_signal, PlrTrajectory, SegmenterConfig};
use tsm_signal::{BreathingParams, NoiseParams, SignalGenerator};

fn seeded_store(seed: u64, patients: usize) -> (SharedStore, Vec<PatientId>) {
    let store = StreamStore::new();
    let mut ids = Vec::new();
    for p in 0..patients {
        let patient = store.add_patient(PatientAttributes::new());
        ids.push(patient);
        let samples = SignalGenerator::new(BreathingParams::default(), seed + p as u64)
            .with_noise(NoiseParams::typical())
            .generate(90.0);
        let vertices = segment_signal(&samples, SegmenterConfig::clean());
        let plr = PlrTrajectory::from_vertices(vertices).unwrap();
        store.add_stream(patient, 0, plr, samples.len());
    }
    (store.into_shared(), ids)
}

fn specs(patients: &[PatientId], sessions: usize, seed: u64, duration: f64) -> Vec<SessionSpec> {
    (0..sessions)
        .map(|i| SessionSpec {
            patient: patients[i % patients.len()],
            session: 1 + (i / patients.len()) as u32,
            samples: SignalGenerator::new(BreathingParams::default(), seed + i as u64)
                .with_noise(NoiseParams::typical())
                .generate(duration),
        })
        .collect()
}

fn params() -> Params {
    Params {
        min_matches: 1,
        ..Params::default()
    }
}

/// 8 concurrent sessions against one shared store, on a shared engine:
/// no outcome divergence vs serial replay, and the store is untouched.
#[test]
#[cfg_attr(debug_assertions, ignore = "heavy; run under cargo test --release")]
fn eight_concurrent_sessions_match_serial_replay() {
    let (store, patients) = seeded_store(0xACE, 2);
    let specs = specs(&patients, 8, 0xBEE, 45.0);
    let engine = Arc::new(CachedMatcher::new(Matcher::new(store.clone(), params())));

    let v0 = store.version();
    let serial = CohortRuntime::with_engine(engine.clone())
        .with_segmenter(SegmenterConfig::clean())
        .with_threads(1)
        .replay(&specs);
    let parallel = CohortRuntime::with_engine(engine)
        .with_segmenter(SegmenterConfig::clean())
        .with_threads(8)
        .replay(&specs);
    assert_eq!(store.version(), v0, "replay must never mutate the store");

    assert_eq!(serial.sessions.len(), 8);
    assert_eq!(
        serial.sessions, parallel.sessions,
        "parallel replay diverged from serial"
    );
    for r in &serial.sessions {
        assert!(r.complete);
        // Ticks fire on a deterministic cadence; predictions may abstain
        // on any given tick, so only the aggregate has a floor.
        assert!(
            r.ticks.len() > 10,
            "session {} saw only {} ticks",
            r.session,
            r.ticks.len()
        );
    }
    assert!(
        serial.total_predictions() > 40,
        "cohort made only {} predictions",
        serial.total_predictions()
    );
}

/// The shared engine builds each per-length index once for the whole
/// cohort; per-session engines re-build the same indexes per session.
#[test]
fn shared_engine_reuses_index_builds_across_sessions() {
    let (store, patients) = seeded_store(0xDAD, 2);
    let specs = specs(&patients, 4, 0xF00, 25.0);

    let shared_engine = Arc::new(CachedMatcher::new(Matcher::new(store.clone(), params())));
    let shared_report = CohortRuntime::with_engine(shared_engine.clone())
        .with_segmenter(SegmenterConfig::clean())
        .replay(&specs);
    let shared_rebuilds = shared_engine.cache().rebuild_count();

    let mut solo_rebuilds = 0;
    let mut solo_predictions = 0;
    for spec in &specs {
        let engine = Arc::new(CachedMatcher::new(Matcher::new(store.clone(), params())));
        let report = CohortRuntime::with_engine(engine.clone())
            .with_segmenter(SegmenterConfig::clean())
            .replay(std::slice::from_ref(spec));
        solo_rebuilds += engine.cache().rebuild_count();
        solo_predictions += report.total_predictions();
    }

    // Identical predictions either way...
    assert_eq!(shared_report.total_predictions(), solo_predictions);
    assert!(shared_report.total_predictions() > 0);
    // ...but the shared engine built each needed index once, not once per
    // session.
    assert!(
        shared_rebuilds < solo_rebuilds,
        "shared engine rebuilt {shared_rebuilds} indexes vs {solo_rebuilds} for per-session engines"
    );
}

/// Two runtimes over one shared handle observe the same version counter,
/// before and after a mutation through a third handle.
#[test]
fn runtimes_share_one_version_counter() {
    let (store, patients) = seeded_store(0xCAB, 1);
    let a = CohortRuntime::new(store.clone(), params()).unwrap();
    let b = CohortRuntime::new(store.clone(), params()).unwrap();
    assert_eq!(a.store().version(), b.store().version());

    // Mutate through the original handle: both runtimes see the bump.
    let samples = SignalGenerator::new(BreathingParams::default(), 9).generate(60.0);
    let vertices = segment_signal(&samples, SegmenterConfig::clean());
    let plr = PlrTrajectory::from_vertices(vertices).unwrap();
    let v_before = a.store().version();
    store.add_stream(patients[0], 5, plr, samples.len());
    assert!(a.store().version() > v_before);
    assert_eq!(a.store().version(), b.store().version());
    assert_eq!(a.store().version(), store.version());
}
